//! Series–parallel availability block diagrams.
//!
//! The paper models a system strictly as a *serial* chain of clusters
//! (Fig. 1); its future work (§V) points at richer topologies — e.g. an
//! application served from two independent sites, each a serial chain.
//! This module generalizes availability evaluation to arbitrary
//! series/parallel compositions of clusters.
//!
//! Failover downtime (Eq. 3) is a serial-chain concept — a blip in any
//! serial element blacks out the system, whereas a parallel sibling masks
//! it. Composition therefore evaluates **breakdown availability** only
//! (the Eq. 2 part); [`Block::failover_aware_availability`] additionally
//! charges failover blips for blocks with no parallel masking, matching
//! [`crate::SystemSpec::uptime`] exactly on pure-series diagrams.

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;
use crate::error::ModelError;
use crate::system::SystemSpec;
use crate::units::Probability;

/// A node in an availability block diagram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Block {
    /// A leaf: one k-redundant cluster.
    Cluster(ClusterSpec),
    /// All children must be up (serial chain).
    Series(Vec<Block>),
    /// At least one child must be up (site-level redundancy).
    Parallel(Vec<Block>),
}

impl Block {
    /// Builds a series block from clusters (the paper's Fig. 1 shape).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptySystem`] for an empty list.
    pub fn series_of(clusters: Vec<ClusterSpec>) -> Result<Self, ModelError> {
        if clusters.is_empty() {
            return Err(ModelError::EmptySystem);
        }
        Ok(Block::Series(
            clusters.into_iter().map(Block::Cluster).collect(),
        ))
    }

    /// Validates the diagram: no empty `Series`/`Parallel` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptySystem`] on an empty composite node.
    pub fn validate(&self) -> Result<(), ModelError> {
        match self {
            Block::Cluster(_) => Ok(()),
            Block::Series(children) | Block::Parallel(children) => {
                if children.is_empty() {
                    return Err(ModelError::EmptySystem);
                }
                children.iter().try_for_each(Block::validate)
            }
        }
    }

    /// Breakdown availability of the diagram (Eq. 2 generalized):
    /// series multiplies availabilities, parallel multiplies
    /// *unavailabilities*.
    ///
    /// # Examples
    ///
    /// Two identical serial sites in parallel square the downtime:
    ///
    /// ```
    /// use uptime_core::composition::Block;
    /// use uptime_core::{ClusterSpec, Probability};
    ///
    /// # fn main() -> Result<(), uptime_core::ModelError> {
    /// let site = Block::series_of(vec![
    ///     ClusterSpec::singleton("web", Probability::new(0.02)?, 1.0)?,
    ///     ClusterSpec::singleton("db", Probability::new(0.05)?, 1.0)?,
    /// ])?;
    /// let two_sites = Block::Parallel(vec![site.clone(), site]);
    /// let single = 0.98f64 * 0.95;
    /// let expected = 1.0 - (1.0 - single) * (1.0 - single);
    /// assert!((two_sites.availability().value() - expected).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn availability(&self) -> Probability {
        match self {
            Block::Cluster(spec) => spec.availability(),
            Block::Series(children) => {
                Probability::saturating(children.iter().map(|b| b.availability().value()).product())
            }
            Block::Parallel(children) => Probability::saturating(
                1.0 - children
                    .iter()
                    .map(|b| 1.0 - b.availability().value())
                    .product::<f64>(),
            ),
        }
    }

    /// Availability including failover blips for every cluster that has no
    /// parallel masking above it (i.e. clusters on the unguarded serial
    /// spine). Parallel sub-trees contribute their breakdown availability
    /// only, because a sibling branch absorbs their blips.
    ///
    /// On a pure-series diagram this equals
    /// [`SystemSpec::uptime`]'s availability.
    #[must_use]
    pub fn failover_aware_availability(&self) -> Probability {
        // Collect the serial spine of clusters (recursively through Series
        // only); parallel sub-trees are opaque availability factors.
        let mut spine: Vec<&ClusterSpec> = Vec::new();
        let mut parallel_factor = 1.0;
        self.collect_spine(&mut spine, &mut parallel_factor);

        if spine.is_empty() {
            return self.availability();
        }
        let spine_system =
            SystemSpec::new(spine.into_iter().cloned().collect()).expect("non-empty spine");
        let spine_uptime = spine_system.uptime().availability().value();
        Probability::saturating(spine_uptime * parallel_factor)
    }

    fn collect_spine<'a>(&'a self, spine: &mut Vec<&'a ClusterSpec>, parallel_factor: &mut f64) {
        match self {
            Block::Cluster(spec) => spine.push(spec),
            Block::Series(children) => {
                for child in children {
                    child.collect_spine(spine, parallel_factor);
                }
            }
            Block::Parallel(_) => {
                *parallel_factor *= self.availability().value();
            }
        }
    }

    /// Total number of cluster leaves.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        match self {
            Block::Cluster(_) => 1,
            Block::Series(children) | Block::Parallel(children) => {
                children.iter().map(Block::cluster_count).sum()
            }
        }
    }

    /// Depth of the diagram (a lone cluster has depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            Block::Cluster(_) => 1,
            Block::Series(children) | Block::Parallel(children) => {
                1 + children.iter().map(Block::depth).max().unwrap_or(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::FailuresPerYear;
    use crate::Minutes;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn singleton(name: &str, down: f64) -> ClusterSpec {
        ClusterSpec::singleton(name, p(down), 1.0).unwrap()
    }

    #[test]
    fn single_cluster_block() {
        let b = Block::Cluster(singleton("web", 0.02));
        assert!((b.availability().value() - 0.98).abs() < 1e-12);
        assert_eq!(b.cluster_count(), 1);
        assert_eq!(b.depth(), 1);
        b.validate().unwrap();
    }

    #[test]
    fn series_matches_system_spec() {
        let clusters = vec![
            singleton("a", 0.01),
            singleton("b", 0.05),
            singleton("c", 0.02),
        ];
        let block = Block::series_of(clusters.clone()).unwrap();
        let system = SystemSpec::new(clusters).unwrap();
        assert!(
            (block.availability().value() - system.uptime_ignoring_failover().value()).abs()
                < 1e-12
        );
        assert_eq!(block.cluster_count(), 3);
    }

    #[test]
    fn failover_aware_matches_system_on_pure_series() {
        let clusters = vec![
            ClusterSpec::builder("compute")
                .total_nodes(4)
                .standby_budget(1)
                .node_down_probability(p(0.01))
                .failures_per_year(FailuresPerYear::new(1.0).unwrap())
                .failover_time(Minutes::new(6.0).unwrap())
                .build()
                .unwrap(),
            singleton("storage", 0.05),
        ];
        let block = Block::series_of(clusters.clone()).unwrap();
        let system = SystemSpec::new(clusters).unwrap();
        assert!(
            (block.failover_aware_availability().value() - system.uptime().availability().value())
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn parallel_redundancy_multiplies_downtimes() {
        let a = Block::Cluster(singleton("site-a", 0.1));
        let b = Block::Cluster(singleton("site-b", 0.2));
        let both = Block::Parallel(vec![a, b]);
        assert!((both.availability().value() - (1.0 - 0.1 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn dual_site_beats_single_site() {
        let site = Block::series_of(vec![singleton("web", 0.02), singleton("db", 0.05)]).unwrap();
        let dual = Block::Parallel(vec![site.clone(), site.clone()]);
        assert!(dual.availability() > site.availability());
        assert_eq!(dual.cluster_count(), 4);
        assert_eq!(dual.depth(), 3);
    }

    #[test]
    fn nested_series_parallel() {
        // (gateway) — series — parallel(site-a, site-b)
        let site = |name: &str| {
            Block::series_of(vec![
                singleton(&format!("{name}-web"), 0.02),
                singleton(&format!("{name}-db"), 0.05),
            ])
            .unwrap()
        };
        let diagram = Block::Series(vec![
            Block::Cluster(singleton("gateway", 0.01)),
            Block::Parallel(vec![site("a"), site("b")]),
        ]);
        diagram.validate().unwrap();
        let site_avail = 0.98 * 0.95;
        let expected = 0.99 * (1.0 - (1.0 - site_avail) * (1.0 - site_avail));
        assert!((diagram.availability().value() - expected).abs() < 1e-12);
    }

    #[test]
    fn failover_aware_charges_only_the_spine() {
        // Gateway with a failover term on the spine; sites in parallel.
        let gateway = ClusterSpec::builder("gateway")
            .total_nodes(2)
            .standby_budget(1)
            .node_down_probability(p(0.02))
            .failures_per_year(FailuresPerYear::new(1.0).unwrap())
            .failover_time(Minutes::new(1.0).unwrap())
            .build()
            .unwrap();
        let site = Block::series_of(vec![singleton("web", 0.02)]).unwrap();
        let diagram = Block::Series(vec![
            Block::Cluster(gateway.clone()),
            Block::Parallel(vec![site.clone(), site]),
        ]);
        let value = diagram.failover_aware_availability().value();
        // Spine = gateway alone; sites are a parallel factor.
        let spine = SystemSpec::new(vec![gateway]).unwrap();
        let expected = spine.uptime().availability().value() * (1.0 - 0.02 * 0.02);
        assert!((value - expected).abs() < 1e-12);
    }

    #[test]
    fn pure_parallel_root_falls_back_to_breakdown_availability() {
        let diagram = Block::Parallel(vec![
            Block::Cluster(singleton("a", 0.1)),
            Block::Cluster(singleton("b", 0.1)),
        ]);
        assert_eq!(
            diagram.failover_aware_availability(),
            diagram.availability()
        );
    }

    #[test]
    fn validation_rejects_empty_composites() {
        assert!(Block::Series(vec![]).validate().is_err());
        assert!(Block::Parallel(vec![]).validate().is_err());
        assert!(Block::series_of(vec![]).is_err());
        let nested = Block::Series(vec![Block::Parallel(vec![])]);
        assert!(nested.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let diagram = Block::Series(vec![
            Block::Cluster(singleton("a", 0.01)),
            Block::Parallel(vec![
                Block::Cluster(singleton("b", 0.02)),
                Block::Cluster(singleton("c", 0.03)),
            ]),
        ]);
        let json = serde_json::to_string(&diagram).unwrap();
        let back: Block = serde_json::from_str(&json).unwrap();
        assert_eq!(back, diagram);
    }
}
