//! Serial system composition and the paper's Eqs. 1–4.

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;
use crate::error::ModelError;
use crate::units::{Minutes, Probability, HOURS_PER_MONTH, MINUTES_PER_YEAR};

/// A cloud-hosted system `S`: a *serial* combination of `n` clusters
/// (Fig. 1 of the paper). The system is up only when every cluster is up
/// and no cluster is mid-failover.
///
/// # Examples
///
/// Paper solution option #5 (Fig. 8) — RAID-1 storage and dual network
/// gateways reach 98.71 % uptime:
///
/// ```
/// use uptime_core::{ClusterSpec, FailuresPerYear, Minutes, Probability, SystemSpec};
///
/// # fn main() -> Result<(), uptime_core::ModelError> {
/// let system = SystemSpec::builder()
///     .cluster(ClusterSpec::singleton("compute", Probability::new(0.01)?, 1.0)?)
///     .cluster(
///         ClusterSpec::builder("storage")
///             .total_nodes(2)
///             .standby_budget(1)
///             .node_down_probability(Probability::new(0.05)?)
///             .failures_per_year(FailuresPerYear::new(2.0)?)
///             .failover_time(Minutes::from_seconds(30.0)?)
///             .build()?,
///     )
///     .cluster(
///         ClusterSpec::builder("network")
///             .total_nodes(2)
///             .standby_budget(1)
///             .node_down_probability(Probability::new(0.02)?)
///             .failures_per_year(FailuresPerYear::new(1.0)?)
///             .failover_time(Minutes::new(1.0)?)
///             .build()?,
///     )
///     .build()?;
/// let uptime = system.uptime();
/// assert!((uptime.availability().as_percent() - 98.71).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    clusters: Vec<ClusterSpec>,
}

impl SystemSpec {
    /// Starts building a system.
    #[must_use]
    pub fn builder() -> SystemSpecBuilder {
        SystemSpecBuilder::default()
    }

    /// Creates a system directly from clusters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptySystem`] if `clusters` is empty.
    pub fn new(clusters: Vec<ClusterSpec>) -> Result<Self, ModelError> {
        if clusters.is_empty() {
            return Err(ModelError::EmptySystem);
        }
        Ok(SystemSpec { clusters })
    }

    /// The clusters in serial order.
    #[must_use]
    pub fn clusters(&self) -> &[ClusterSpec] {
        &self.clusters
    }

    /// Number of clusters `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Always `false`: construction forbids empty systems.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Breakdown downtime probability `B_s` (paper Eq. 2): probability that
    /// at least one cluster has more failed nodes than its standby budget.
    #[must_use]
    pub fn breakdown_probability(&self) -> Probability {
        let all_up: f64 = self
            .clusters
            .iter()
            .map(|c| c.availability().value())
            .product();
        Probability::saturating(1.0 - all_up)
    }

    /// Failover downtime probability `F_s` (paper Eq. 3): expected fraction
    /// of time lost to failover transitions of one cluster while all other
    /// clusters' active nodes are healthy.
    #[must_use]
    pub fn failover_probability(&self) -> Probability {
        let mut total = 0.0_f64;
        for (i, c) in self.clusters.iter().enumerate() {
            let own = c.failover_year_fraction();
            if own == 0.0 {
                continue;
            }
            let others_up: f64 = self
                .clusters
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, other)| other.all_active_up_probability().value())
                .product();
            total += own * others_up;
        }
        Probability::saturating(total)
    }

    /// Full uptime breakdown: `B_s`, `F_s`, `D_s = B_s + F_s`,
    /// `U_s = 1 − D_s` (paper Eqs. 1 & 4).
    #[must_use]
    pub fn uptime(&self) -> UptimeBreakdown {
        let breakdown = self.breakdown_probability();
        let failover = self.failover_probability();
        UptimeBreakdown {
            breakdown,
            failover,
        }
    }

    /// Uptime ignoring the failover term (`F_s = 0`), the ablation
    /// discussed in DESIGN.md: quantifies how much Eq. 3 matters.
    #[must_use]
    pub fn uptime_ignoring_failover(&self) -> Probability {
        self.breakdown_probability().complement()
    }
}

/// Builder for [`SystemSpec`].
#[derive(Debug, Clone, Default)]
pub struct SystemSpecBuilder {
    clusters: Vec<ClusterSpec>,
}

impl SystemSpecBuilder {
    /// Appends a cluster to the serial chain.
    #[must_use]
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.clusters.push(cluster);
        self
    }

    /// Appends many clusters.
    #[must_use]
    pub fn clusters(mut self, clusters: impl IntoIterator<Item = ClusterSpec>) -> Self {
        self.clusters.extend(clusters);
        self
    }

    /// Validates and builds the [`SystemSpec`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptySystem`] if no cluster was added.
    pub fn build(self) -> Result<SystemSpec, ModelError> {
        SystemSpec::new(self.clusters)
    }
}

impl Extend<ClusterSpec> for SystemSpecBuilder {
    fn extend<T: IntoIterator<Item = ClusterSpec>>(&mut self, iter: T) {
        self.clusters.extend(iter);
    }
}

impl FromIterator<ClusterSpec> for SystemSpecBuilder {
    fn from_iter<T: IntoIterator<Item = ClusterSpec>>(iter: T) -> Self {
        SystemSpecBuilder {
            clusters: iter.into_iter().collect(),
        }
    }
}

/// The components of a system's downtime, paper Eqs. 1–4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UptimeBreakdown {
    breakdown: Probability,
    failover: Probability,
}

impl UptimeBreakdown {
    /// Assembles a breakdown directly from its two downtime components.
    ///
    /// [`SystemSpec::uptime`] derives both terms from cluster specs; this
    /// constructor exists for evaluators that compute the same `B_s` and
    /// `F_s` from cached per-cluster factors (Eqs. 2–3 factor per cluster,
    /// so a search can combine precomputed terms instead of rebuilding the
    /// system — see `uptime-optimizer`'s `fast` module).
    #[must_use]
    pub fn from_components(breakdown: Probability, failover: Probability) -> Self {
        UptimeBreakdown {
            breakdown,
            failover,
        }
    }

    /// Breakdown downtime probability `B_s` (Eq. 2).
    #[must_use]
    pub fn breakdown_probability(&self) -> Probability {
        self.breakdown
    }

    /// Failover downtime probability `F_s` (Eq. 3).
    #[must_use]
    pub fn failover_probability(&self) -> Probability {
        self.failover
    }

    /// Total downtime probability `D_s = B_s + F_s` (Eq. 1).
    #[must_use]
    pub fn downtime_probability(&self) -> Probability {
        Probability::saturating(self.breakdown.value() + self.failover.value())
    }

    /// Uptime `U_s = 1 − D_s` (Eq. 4).
    #[must_use]
    pub fn availability(&self) -> Probability {
        self.downtime_probability().complement()
    }

    /// Expected downtime per year.
    #[must_use]
    pub fn downtime_minutes_per_year(&self) -> Minutes {
        Minutes::new(self.downtime_probability().value() * MINUTES_PER_YEAR)
            .expect("probability times a positive constant is valid")
    }

    /// Expected downtime per contractual month (730 hours).
    #[must_use]
    pub fn downtime_hours_per_month(&self) -> f64 {
        self.downtime_probability().value() * HOURS_PER_MONTH
    }
}

impl std::fmt::Display for UptimeBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "U_s = {:.4}% (breakdown {:.4}%, failover {:.6}%)",
            self.availability().as_percent(),
            self.breakdown.as_percent(),
            self.failover.as_percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::FailuresPerYear;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn singleton(name: &str, down: f64, f: f64) -> ClusterSpec {
        ClusterSpec::singleton(name, p(down), f).unwrap()
    }

    fn dual(name: &str, down: f64, f: f64, t_min: f64) -> ClusterSpec {
        ClusterSpec::builder(name)
            .total_nodes(2)
            .standby_budget(1)
            .node_down_probability(p(down))
            .failures_per_year(FailuresPerYear::new(f).unwrap())
            .failover_time(Minutes::new(t_min).unwrap())
            .build()
            .unwrap()
    }

    fn vmware(name: &str, down: f64, f: f64) -> ClusterSpec {
        ClusterSpec::builder(name)
            .total_nodes(4)
            .standby_budget(1)
            .node_down_probability(p(down))
            .failures_per_year(FailuresPerYear::new(f).unwrap())
            .failover_time(Minutes::new(6.0).unwrap())
            .build()
            .unwrap()
    }

    /// The paper's base architecture: compute P=1% f=1, storage P=5% f=2,
    /// network P=2% f=1.
    fn option1() -> SystemSpec {
        SystemSpec::builder()
            .cluster(singleton("compute", 0.01, 1.0))
            .cluster(singleton("storage", 0.05, 2.0))
            .cluster(singleton("network", 0.02, 1.0))
            .build()
            .unwrap()
    }

    #[test]
    fn empty_system_is_rejected() {
        assert!(matches!(
            SystemSpec::builder().build().unwrap_err(),
            ModelError::EmptySystem
        ));
        assert!(SystemSpec::new(Vec::new()).is_err());
    }

    #[test]
    fn option1_no_ha_uptime_is_92_17_percent() {
        let u = option1().uptime();
        assert!((u.availability().value() - 0.99 * 0.95 * 0.98).abs() < 1e-12);
        assert!((u.availability().as_percent() - 92.17).abs() < 0.005);
        // No HA anywhere: failover term must be exactly zero.
        assert_eq!(u.failover_probability().value(), 0.0);
    }

    #[test]
    fn option2_network_only_uptime_is_94_01_percent() {
        let system = SystemSpec::builder()
            .cluster(singleton("compute", 0.01, 1.0))
            .cluster(singleton("storage", 0.05, 2.0))
            .cluster(dual("network", 0.02, 1.0, 1.0))
            .build()
            .unwrap();
        let u = system.uptime();
        assert!((u.availability().as_percent() - 94.01).abs() < 0.005);
    }

    #[test]
    fn option3_storage_only_uptime_is_96_78_percent() {
        let system = SystemSpec::builder()
            .cluster(singleton("compute", 0.01, 1.0))
            .cluster(dual("storage", 0.05, 2.0, 0.5))
            .cluster(singleton("network", 0.02, 1.0))
            .build()
            .unwrap();
        let u = system.uptime();
        assert!((u.availability().as_percent() - 96.78).abs() < 0.005);
    }

    #[test]
    fn option4_compute_only_uptime_is_93_04_percent() {
        let system = SystemSpec::builder()
            .cluster(vmware("compute", 0.01, 1.0))
            .cluster(singleton("storage", 0.05, 2.0))
            .cluster(singleton("network", 0.02, 1.0))
            .build()
            .unwrap();
        let u = system.uptime();
        assert!((u.availability().as_percent() - 93.04).abs() < 0.005);
        // Failover term is present: 18 min/yr × P(others all-active-up).
        let expected_fs = (18.0 / MINUTES_PER_YEAR) * 0.95 * 0.98;
        assert!((u.failover_probability().value() - expected_fs).abs() < 1e-12);
    }

    #[test]
    fn option5_storage_network_uptime_is_98_71_percent() {
        let system = SystemSpec::builder()
            .cluster(singleton("compute", 0.01, 1.0))
            .cluster(dual("storage", 0.05, 2.0, 0.5))
            .cluster(dual("network", 0.02, 1.0, 1.0))
            .build()
            .unwrap();
        let u = system.uptime();
        assert!((u.availability().as_percent() - 98.71).abs() < 0.005);
    }

    #[test]
    fn option6_compute_network_uptime_is_about_94_9_percent() {
        let system = SystemSpec::builder()
            .cluster(vmware("compute", 0.01, 1.0))
            .cluster(singleton("storage", 0.05, 2.0))
            .cluster(dual("network", 0.02, 1.0, 1.0))
            .build()
            .unwrap();
        let u = system.uptime();
        // Paper prints 94.91; exact evaluation gives 94.90.
        assert!((u.availability().as_percent() - 94.91).abs() < 0.02);
    }

    #[test]
    fn downtime_components_sum() {
        let system = SystemSpec::builder()
            .cluster(vmware("compute", 0.01, 1.0))
            .cluster(dual("storage", 0.05, 2.0, 0.5))
            .build()
            .unwrap();
        let u = system.uptime();
        let sum = u.breakdown_probability().value() + u.failover_probability().value();
        assert!((u.downtime_probability().value() - sum).abs() < 1e-15);
        assert!((u.availability().value() + u.downtime_probability().value() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn ignoring_failover_never_lowers_uptime() {
        let system = SystemSpec::builder()
            .cluster(vmware("compute", 0.01, 1.0))
            .cluster(dual("storage", 0.05, 2.0, 0.5))
            .cluster(dual("network", 0.02, 1.0, 1.0))
            .build()
            .unwrap();
        assert!(
            system.uptime_ignoring_failover().value() >= system.uptime().availability().value()
        );
    }

    #[test]
    fn serial_composition_multiplies_availabilities() {
        // With zero failover terms, uptime is the product of cluster
        // availabilities.
        let sys = option1();
        let product: f64 = sys
            .clusters()
            .iter()
            .map(|c| c.availability().value())
            .product();
        assert!((sys.uptime().availability().value() - product).abs() < 1e-15);
    }

    #[test]
    fn adding_a_cluster_never_raises_uptime() {
        let base = option1();
        let extended = SystemSpec::builder()
            .clusters(base.clusters().to_vec())
            .cluster(singleton("cache", 0.03, 1.0))
            .build()
            .unwrap();
        assert!(
            extended.uptime().availability().value()
                <= base.uptime().availability().value() + 1e-15
        );
    }

    #[test]
    fn downtime_unit_conversions() {
        let u = option1().uptime();
        let d = u.downtime_probability().value();
        assert!((u.downtime_minutes_per_year().value() - d * MINUTES_PER_YEAR).abs() < 1e-9);
        assert!((u.downtime_hours_per_month() - d * HOURS_PER_MONTH).abs() < 1e-12);
        // Paper: ~43 hours slippage for option #1 against a 98% SLA; total
        // monthly downtime is (1-0.9217)*730 ≈ 57 h.
        assert!((u.downtime_hours_per_month() - 57.17).abs() < 0.05);
    }

    #[test]
    fn builder_collects_from_iterator() {
        let clusters = vec![singleton("a", 0.01, 1.0), singleton("b", 0.02, 1.0)];
        let builder: SystemSpecBuilder = clusters.clone().into_iter().collect();
        let sys = builder.build().unwrap();
        assert_eq!(sys.len(), 2);
        assert!(!sys.is_empty());

        let mut b2 = SystemSpec::builder();
        b2.extend(clusters);
        assert_eq!(b2.build().unwrap().len(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let sys = option1();
        let json = serde_json::to_string(&sys).unwrap();
        let back: SystemSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sys);
    }

    #[test]
    fn from_components_matches_derived_breakdown() {
        let derived = option1().uptime();
        let rebuilt = UptimeBreakdown::from_components(
            derived.breakdown_probability(),
            derived.failover_probability(),
        );
        assert_eq!(rebuilt, derived);
        assert_eq!(rebuilt.availability(), derived.availability());
    }

    #[test]
    fn uptime_breakdown_display() {
        let text = option1().uptime().to_string();
        assert!(text.contains("U_s = 92.1690%"), "{text}");
        assert!(text.contains("breakdown"), "{text}");
        assert!(text.contains("failover"), "{text}");
    }
}
