//! Error types for model construction and evaluation.

use std::fmt;

/// Errors produced while building or evaluating the availability model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A probability was outside the closed interval `[0, 1]` or not finite.
    InvalidProbability {
        /// The offending raw value.
        value: f64,
    },
    /// A cluster was declared with zero total nodes.
    EmptyCluster {
        /// Name of the offending cluster.
        name: String,
    },
    /// A cluster's standby budget left no active nodes (`K̂ ≥ K`).
    NoActiveNodes {
        /// Name of the offending cluster.
        name: String,
        /// Total node count `K`.
        total_nodes: u32,
        /// Standby budget `K̂`.
        standby_budget: u32,
    },
    /// A duration, rate, or cost was negative or not finite.
    InvalidQuantity {
        /// Human-readable name of the quantity.
        what: &'static str,
        /// The offending raw value.
        value: f64,
    },
    /// A system was declared with no clusters.
    EmptySystem,
    /// An SLA target was outside `(0, 100]` percent.
    InvalidSlaTarget {
        /// The offending percentage.
        percent: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidProbability { value } => {
                write!(f, "probability {value} is not within [0, 1]")
            }
            ModelError::EmptyCluster { name } => {
                write!(f, "cluster `{name}` has zero nodes")
            }
            ModelError::NoActiveNodes {
                name,
                total_nodes,
                standby_budget,
            } => write!(
                f,
                "cluster `{name}` has no active nodes: {total_nodes} total, \
                 {standby_budget} standby budget"
            ),
            ModelError::InvalidQuantity { what, value } => {
                write!(f, "{what} must be finite and non-negative, got {value}")
            }
            ModelError::EmptySystem => write!(f, "system must contain at least one cluster"),
            ModelError::InvalidSlaTarget { percent } => {
                write!(f, "SLA target {percent}% is not within (0, 100]")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(ModelError, &str)> = vec![
            (
                ModelError::InvalidProbability { value: 1.5 },
                "probability 1.5 is not within [0, 1]",
            ),
            (
                ModelError::EmptyCluster { name: "web".into() },
                "cluster `web` has zero nodes",
            ),
            (
                ModelError::EmptySystem,
                "system must contain at least one cluster",
            ),
            (
                ModelError::InvalidSlaTarget { percent: 120.0 },
                "SLA target 120% is not within (0, 100]",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn no_active_nodes_message_mentions_both_counts() {
        let err = ModelError::NoActiveNodes {
            name: "db".into(),
            total_nodes: 2,
            standby_budget: 2,
        };
        let msg = err.to_string();
        assert!(msg.contains("db"));
        assert!(msg.contains("2 total"));
        assert!(msg.contains("2 standby"));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<ModelError>();
    }
}
