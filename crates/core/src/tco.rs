//! Total cost of ownership — the paper's Eq. 5.

use serde::{Deserialize, Serialize};

use crate::sla::{PenaltyClause, RoundingPolicy, SlaTarget};
use crate::units::{MoneyPerMonth, Probability};

/// Evaluates the monthly TCO of an HA-enabled deployment (paper Eq. 5):
///
/// ```text
/// TCO = C_HA + max(0, U_SLA/100 − U_s) · δ/(12·60) · SP
/// ```
///
/// i.e. the cost to implement/sustain the HA plus the expected slippage
/// penalty for projected downtime beyond the contractual SLA.
///
/// # Examples
///
/// Paper Fig. 4 (option #1): no HA, 92.17 % uptime against a 98 % SLA at
/// $100/h gives a $4300 monthly TCO.
///
/// ```
/// use uptime_core::{MoneyPerMonth, PenaltyClause, Probability, SlaTarget, TcoModel};
///
/// # fn main() -> Result<(), uptime_core::ModelError> {
/// let model = TcoModel::new(
///     SlaTarget::from_percent(98.0)?,
///     PenaltyClause::per_hour(100.0)?,
/// );
/// let tco = model.evaluate(MoneyPerMonth::ZERO, Probability::new(0.9217)?);
/// assert_eq!(tco.total().value(), 4300.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcoModel {
    sla: SlaTarget,
    penalty: PenaltyClause,
    rounding: RoundingPolicy,
}

impl TcoModel {
    /// Creates a TCO model with the default (paper-matching) rounding
    /// policy, [`RoundingPolicy::CeilHour`].
    #[must_use]
    pub fn new(sla: SlaTarget, penalty: PenaltyClause) -> Self {
        TcoModel {
            sla,
            penalty,
            rounding: RoundingPolicy::default(),
        }
    }

    /// Creates a TCO model with an explicit rounding policy.
    #[must_use]
    pub fn with_rounding(sla: SlaTarget, penalty: PenaltyClause, rounding: RoundingPolicy) -> Self {
        TcoModel {
            sla,
            penalty,
            rounding,
        }
    }

    /// The SLA target.
    #[must_use]
    pub fn sla(&self) -> SlaTarget {
        self.sla
    }

    /// The penalty clause.
    #[must_use]
    pub fn penalty(&self) -> &PenaltyClause {
        &self.penalty
    }

    /// The rounding policy for slippage hours.
    #[must_use]
    pub fn rounding(&self) -> RoundingPolicy {
        self.rounding
    }

    /// Evaluates Eq. 5 for a deployment with monthly HA cost `ha_cost` and
    /// modeled uptime `uptime`.
    #[must_use]
    pub fn evaluate(&self, ha_cost: MoneyPerMonth, uptime: Probability) -> TcoBreakdown {
        let raw_hours = self.sla.slippage_hours_per_month(uptime);
        let billed_hours = self.rounding.apply(raw_hours);
        let penalty = self.penalty.charge(billed_hours);
        TcoBreakdown {
            ha_cost,
            uptime,
            raw_slippage_hours: raw_hours,
            billed_slippage_hours: billed_hours,
            penalty,
        }
    }
}

/// Itemized result of a TCO evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoBreakdown {
    ha_cost: MoneyPerMonth,
    uptime: Probability,
    raw_slippage_hours: f64,
    billed_slippage_hours: f64,
    penalty: MoneyPerMonth,
}

impl TcoBreakdown {
    /// Monthly cost of the HA infrastructure and labor, `C_HA`.
    #[must_use]
    pub fn ha_cost(&self) -> MoneyPerMonth {
        self.ha_cost
    }

    /// The modeled uptime this evaluation used.
    #[must_use]
    pub fn uptime(&self) -> Probability {
        self.uptime
    }

    /// Unrounded expected slippage hours per month.
    #[must_use]
    pub fn raw_slippage_hours(&self) -> f64 {
        self.raw_slippage_hours
    }

    /// Billable slippage hours after rounding.
    #[must_use]
    pub fn billed_slippage_hours(&self) -> f64 {
        self.billed_slippage_hours
    }

    /// Expected monthly penalty payout.
    #[must_use]
    pub fn penalty(&self) -> MoneyPerMonth {
        self.penalty
    }

    /// Whether any slippage penalty is expected.
    #[must_use]
    pub fn expects_penalty(&self) -> bool {
        self.penalty.value() > 0.0
    }

    /// Total monthly TCO: HA cost plus expected penalty.
    #[must_use]
    pub fn total(&self) -> MoneyPerMonth {
        self.ha_cost + self.penalty
    }
}

impl std::fmt::Display for TcoBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "${:.0} (HA) + ${:.0} (penalty for {:.0} h slippage) = ${:.0}/mo",
            self.ha_cost.value(),
            self.penalty.value(),
            self.billed_slippage_hours,
            self.total().value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ModelError;

    fn model() -> TcoModel {
        TcoModel::new(
            SlaTarget::from_percent(98.0).unwrap(),
            PenaltyClause::per_hour(100.0).unwrap(),
        )
    }

    fn money(v: f64) -> MoneyPerMonth {
        MoneyPerMonth::new(v).unwrap()
    }

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn paper_option1_tco_4300() {
        // U_s = 92.17 %: 42.56 h → 43 h billed → $4300, no HA cost.
        let tco = model().evaluate(MoneyPerMonth::ZERO, p(0.9217));
        assert_eq!(tco.billed_slippage_hours(), 43.0);
        assert_eq!(tco.total(), money(4300.0));
        assert!(tco.expects_penalty());
    }

    #[test]
    fn paper_option3_tco_1250() {
        // Storage-only HA: U_s = 96.78 %, C_HA = $350.
        let u = p(0.967774); // exact model value
        let tco = model().evaluate(money(350.0), u);
        assert_eq!(tco.billed_slippage_hours(), 9.0);
        assert_eq!(tco.penalty(), money(900.0));
        assert_eq!(tco.total(), money(1250.0));
    }

    #[test]
    fn paper_option5_tco_1350_no_penalty() {
        // U_s = 98.71 % ≥ 98 %: penalty is zero, TCO = C_HA.
        let tco = model().evaluate(money(1350.0), p(0.9871));
        assert_eq!(tco.raw_slippage_hours(), 0.0);
        assert_eq!(tco.penalty(), MoneyPerMonth::ZERO);
        assert!(!tco.expects_penalty());
        assert_eq!(tco.total(), money(1350.0));
    }

    #[test]
    fn paper_option7_ceiling_yields_2850() {
        // Compute+storage HA: U_s ≈ 97.70 %, C_HA = $2550;
        // 2.2 h → ceil → 3 h → $300 → $2850 (matches Fig. 10).
        let u = p(0.976991);
        let tco = model().evaluate(money(2550.0), u);
        assert_eq!(tco.billed_slippage_hours(), 3.0);
        assert_eq!(tco.total(), money(2850.0));
    }

    #[test]
    fn exact_rounding_bills_fractional_hours() {
        let m = TcoModel::with_rounding(
            SlaTarget::from_percent(98.0).unwrap(),
            PenaltyClause::per_hour(100.0).unwrap(),
            RoundingPolicy::Exact,
        );
        let tco = m.evaluate(MoneyPerMonth::ZERO, p(0.9217));
        assert!((tco.billed_slippage_hours() - 42.559).abs() < 0.01);
        assert!((tco.total().value() - 4255.9).abs() < 1.0);
    }

    #[test]
    fn tco_is_at_least_ha_cost() {
        let m = model();
        for u in [0.0, 0.5, 0.9217, 0.98, 1.0] {
            let tco = m.evaluate(money(500.0), p(u));
            assert!(tco.total() >= money(500.0), "u={u}");
        }
    }

    #[test]
    fn tco_monotone_decreasing_in_uptime() {
        let m = model();
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let u = p(f64::from(i) / 100.0);
            let t = m.evaluate(money(100.0), u).total().value();
            assert!(t <= prev + 1e-9, "not monotone at {i}");
            prev = t;
        }
    }

    #[test]
    fn accessors_expose_inputs() {
        let m = model();
        assert_eq!(m.sla().as_percent(), 98.0);
        assert!(matches!(m.penalty(), PenaltyClause::PerHour { rate } if *rate == 100.0));
        assert_eq!(m.rounding(), RoundingPolicy::CeilHour);
        let tco = m.evaluate(money(42.0), p(0.99));
        assert_eq!(tco.ha_cost(), money(42.0));
        assert_eq!(tco.uptime(), p(0.99));
    }

    #[test]
    fn perfect_uptime_never_penalized() {
        let m = TcoModel::new(
            SlaTarget::from_percent(100.0).unwrap(),
            PenaltyClause::per_hour(1_000_000.0).unwrap(),
        );
        let tco = m.evaluate(MoneyPerMonth::ZERO, Probability::ONE);
        assert_eq!(tco.total(), MoneyPerMonth::ZERO);
    }

    #[test]
    fn serde_roundtrip() {
        let m = model();
        let json = serde_json::to_string(&m).unwrap();
        let back: TcoModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn breakdown_display_matches_paper_shape() {
        let tco = model().evaluate(money(350.0), p(0.967774));
        assert_eq!(
            tco.to_string(),
            "$350 (HA) + $900 (penalty for 9 h slippage) = $1250/mo"
        );
    }

    #[test]
    fn tiered_penalty_integrates_with_tco() -> Result<(), ModelError> {
        use crate::sla::PenaltyTier;
        let m = TcoModel::new(
            SlaTarget::from_percent(98.0)?,
            PenaltyClause::tiered(vec![
                PenaltyTier {
                    up_to_hours: 10.0,
                    rate: 100.0,
                },
                PenaltyTier {
                    up_to_hours: 100.0,
                    rate: 300.0,
                },
            ])?,
        );
        let tco = m.evaluate(MoneyPerMonth::ZERO, p(0.9217));
        // 43 billed hours: 10 × 100 + 33 × 300 = 10900.
        assert_eq!(tco.total().value(), 10_900.0);
        Ok(())
    }
}
