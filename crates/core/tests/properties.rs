//! Property-based tests for the core model's invariants.

use proptest::prelude::*;
use uptime_core::{
    binomial, ClusterSpec, FailureDynamics, FailuresPerYear, Minutes, MoneyPerMonth, Nines,
    PenaltyClause, Probability, SlaTarget, SystemSpec, TcoModel,
};

fn prob() -> impl Strategy<Value = Probability> {
    (0.0f64..=1.0).prop_map(|v| Probability::new(v).unwrap())
}

fn small_prob() -> impl Strategy<Value = Probability> {
    (0.0f64..0.5).prop_map(|v| Probability::new(v).unwrap())
}

fn cluster() -> impl Strategy<Value = ClusterSpec> {
    (
        1u32..=8,     // total nodes
        0u32..=7,     // standby budget (clamped below)
        0.0f64..0.4,  // node down probability
        0.0f64..12.0, // failures per year
        0.0f64..30.0, // failover minutes
    )
        .prop_map(|(total, standby, p, f, t)| {
            let standby = standby.min(total - 1);
            ClusterSpec::builder("c")
                .total_nodes(total)
                .standby_budget(standby)
                .node_down_probability(Probability::new(p).unwrap())
                .failures_per_year(FailuresPerYear::new(f).unwrap())
                .failover_time(Minutes::new(t).unwrap())
                .build()
                .unwrap()
        })
}

fn system() -> impl Strategy<Value = SystemSpec> {
    prop::collection::vec(cluster(), 1..=5).prop_map(|cs| SystemSpec::new(cs).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // --- binomial ---

    #[test]
    fn binomial_pmf_is_distribution(n in 0u32..40, p in prob()) {
        let total: f64 = (0..=n).map(|j| binomial::pmf(n, j, p)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_survival_complements_cdf(n in 1u32..30, m in 0u32..30, p in prob()) {
        let m = m.min(n);
        let survival = binomial::survival_at_least(n, m, p).value();
        let below: f64 = (0..m).map(|j| binomial::pmf(n, j, p)).sum();
        prop_assert!((survival + below - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_log_space_matches_direct(n in 1u32..60, m in 0u32..60, p in prob()) {
        let m = m.min(n);
        let a = binomial::survival_at_least(n, m, p).value();
        let b = binomial::survival_at_least_log(n, m, p).value();
        prop_assert!((a - b).abs() < 1e-8, "direct {a} vs log {b}");
    }

    #[test]
    fn binomial_coefficient_symmetry(n in 0u32..40, k in 0u32..40) {
        let k = k.min(n);
        prop_assert_eq!(binomial::coefficient(n, k), binomial::coefficient(n, n - k));
    }

    // --- probability algebra ---

    #[test]
    fn complement_involution(p in prob()) {
        prop_assert!((p.complement().complement().value() - p.value()).abs() < 1e-15);
    }

    #[test]
    fn and_bounded_by_operands(p in prob(), q in prob()) {
        let r = p.and(q);
        prop_assert!(r <= p && r <= q);
    }

    #[test]
    fn or_independent_bounds(p in prob(), q in prob()) {
        let r = p.or_independent(q);
        prop_assert!(r.value() >= p.value().max(q.value()) - 1e-15);
        prop_assert!(r.value() <= p.value() + q.value() + 1e-15);
    }

    // --- cluster ---

    #[test]
    fn cluster_availability_in_unit_interval(c in cluster()) {
        let a = c.availability().value();
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!((a + c.breakdown_probability().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extra_standby_never_hurts(total in 2u32..8, p in small_prob()) {
        for standby in 0..total - 2 {
            let less = ClusterSpec::builder("a")
                .total_nodes(total)
                .standby_budget(standby)
                .node_down_probability(p)
                .build()
                .unwrap();
            let more = ClusterSpec::builder("b")
                .total_nodes(total)
                .standby_budget(standby + 1)
                .node_down_probability(p)
                .build()
                .unwrap();
            prop_assert!(more.availability() >= less.availability());
        }
    }

    #[test]
    fn higher_down_probability_lowers_availability(c in cluster(), bump in 0.01f64..0.3) {
        let p = c.node_down_probability().value();
        let worse = c.with_node_down_probability(
            Probability::new((p + bump).min(1.0)).unwrap(),
        );
        prop_assert!(worse.availability() <= c.availability());
    }

    // --- system ---

    #[test]
    fn system_uptime_valid_and_consistent(s in system()) {
        let u = s.uptime();
        let availability = u.availability().value();
        prop_assert!((0.0..=1.0).contains(&availability));
        let parts = u.breakdown_probability().value() + u.failover_probability().value();
        prop_assert!((u.downtime_probability().value() - parts.min(1.0)).abs() < 1e-12);
    }

    #[test]
    fn system_uptime_bounded_by_weakest_cluster(s in system()) {
        let weakest = s
            .clusters()
            .iter()
            .map(|c| c.availability().value())
            .fold(1.0, f64::min);
        prop_assert!(s.uptime_ignoring_failover().value() <= weakest + 1e-12);
    }

    #[test]
    fn failover_term_never_negative(s in system()) {
        prop_assert!(s.uptime_ignoring_failover() >= s.uptime().availability());
    }

    // --- TCO ---

    #[test]
    fn tco_at_least_ha_cost(u in prob(), sla in 1.0f64..100.0, rate in 0.0f64..1000.0, cost in 0.0f64..10_000.0) {
        let model = TcoModel::new(
            SlaTarget::from_percent(sla).unwrap(),
            PenaltyClause::per_hour(rate).unwrap(),
        );
        let tco = model.evaluate(MoneyPerMonth::new(cost).unwrap(), u);
        prop_assert!(tco.total() >= tco.ha_cost());
        prop_assert!(tco.penalty().value() >= 0.0);
    }

    #[test]
    fn tco_monotone_in_uptime(sla in 1.0f64..100.0, rate in 0.0f64..1000.0, a in prob(), b in prob()) {
        let model = TcoModel::new(
            SlaTarget::from_percent(sla).unwrap(),
            PenaltyClause::per_hour(rate).unwrap(),
        );
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t_lo = model.evaluate(MoneyPerMonth::ZERO, lo).total();
        let t_hi = model.evaluate(MoneyPerMonth::ZERO, hi).total();
        prop_assert!(t_hi <= t_lo);
    }

    #[test]
    fn meeting_sla_means_zero_penalty(sla in 1.0f64..100.0, rate in 0.0f64..1000.0, u in prob()) {
        let target = SlaTarget::from_percent(sla).unwrap();
        let model = TcoModel::new(target, PenaltyClause::per_hour(rate).unwrap());
        let tco = model.evaluate(MoneyPerMonth::ZERO, u);
        if target.is_met_by(u) {
            prop_assert_eq!(tco.penalty(), MoneyPerMonth::ZERO);
        }
    }

    // --- MTBF/MTTR <-> (P, f) ---

    #[test]
    fn dynamics_roundtrip(p in 0.0001f64..0.9, f in 0.01f64..50.0) {
        let d = FailureDynamics::from_paper_params(
            Probability::new(p).unwrap(),
            FailuresPerYear::new(f).unwrap(),
        )
        .unwrap();
        prop_assert!((d.down_probability().value() - p).abs() < 1e-9);
        prop_assert!((d.failures_per_year().value() - f).abs() < 1e-6);
    }

    // --- nines ---

    #[test]
    fn nines_roundtrip(u in 0.0f64..0.999_999) {
        let p = Probability::new(u).unwrap();
        let back = Nines::from_uptime(p).to_uptime();
        prop_assert!((back.value() - u).abs() < 1e-9);
    }

    #[test]
    fn more_nines_less_downtime(a in 0.5f64..6.0, b in 0.5f64..6.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            Nines::from_count(hi).downtime_minutes_per_year()
                <= Nines::from_count(lo).downtime_minutes_per_year()
        );
    }
}
