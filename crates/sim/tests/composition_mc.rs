//! Monte-Carlo cross-validation of the composition analytics (ISSUE PR 7).
//!
//! Simulates two- and three-site parallel stacks — including a correlated
//! shared-failure-domain variant — and checks that the observed
//! availability agrees with the analytic
//! [`Block::failover_aware_availability`] within 3 standard errors of the
//! trial mean. All clusters are singletons (`φ = 0`), so the analytic
//! prediction is *exact* (renewal-reward, no failover approximation) and
//! the 3σ gate is honestly calibrated rather than padded.
//!
//! Seeds are fixed, so these are deterministic regression tests: a change
//! that skews either the simulator or the analytics beyond noise fails
//! the gate.

use uptime_core::composition::Block;
use uptime_core::{ClusterSpec, Probability};
use uptime_sim::{composition, SharedDomain};

fn singleton(name: &str, down: f64, failures_per_year: f64) -> ClusterSpec {
    ClusterSpec::singleton(name, Probability::new(down).unwrap(), failures_per_year).unwrap()
}

/// A web → db site chain, singleton clusters.
fn site(tag: &str) -> Block {
    Block::Series(vec![
        Block::Cluster(singleton(&format!("{tag}-web"), 0.02, 6.0)),
        Block::Cluster(singleton(&format!("{tag}-db"), 0.03, 4.0)),
    ])
}

fn check(label: &str, block: &Block, domains: &[SharedDomain], analytic: Probability, seed: u64) {
    let estimate = composition::monte_carlo(block, domains, 60.0, 24, seed).unwrap();
    assert!(
        estimate.agrees_with(analytic, 3.0),
        "{label}: observed {} ± {} (3σ) vs analytic {}",
        estimate.mean(),
        3.0 * estimate.std_error(),
        analytic
    );
    assert_eq!(estimate.trials(), 24);
    assert!(
        estimate.std_error() > 0.0,
        "{label}: trials must show sampling noise"
    );
}

#[test]
fn two_site_parallel_stack_matches_analytics() {
    let block = Block::Series(vec![
        Block::Cluster(singleton("gw", 0.01, 8.0)),
        Block::Parallel(vec![site("a"), site("b")]),
    ]);
    check(
        "two-site",
        &block,
        &[],
        block.failover_aware_availability(),
        11,
    );
}

#[test]
fn three_site_parallel_stack_matches_analytics() {
    let block = Block::Series(vec![
        Block::Cluster(singleton("gw", 0.01, 8.0)),
        Block::Parallel(vec![site("a"), site("b"), site("c")]),
    ]);
    check(
        "three-site",
        &block,
        &[],
        block.failover_aware_availability(),
        12,
    );
}

#[test]
fn correlated_domain_striking_both_sites_matches_analytics() {
    // A shared failure domain covering every parallel branch is a fatal
    // cut set: the analytic availability factorizes into
    // domain × diagram because strikes are independent of node renewals.
    let block = Block::Parallel(vec![site("a"), site("b")]);
    let domain = SharedDomain {
        name: "regional-power".to_owned(),
        rate_per_year: 4.0,
        mttr_minutes: 360.0,
        members: vec![
            "a-web".to_owned(),
            "a-db".to_owned(),
            "b-web".to_owned(),
            "b-db".to_owned(),
        ],
    };
    let analytic = Probability::saturating(
        domain.availability().value() * block.failover_aware_availability().value(),
    );
    check("correlated", &block, &[domain], analytic, 13);
}

#[test]
fn partial_domain_hurts_less_than_fatal_domain() {
    // Sanity on the correlation model itself: a domain striking only one
    // site must leave the system strictly more available than one
    // striking both. (Both runs share seeds, so the comparison is paired.)
    let block = Block::Parallel(vec![site("a"), site("b")]);
    let strike = |members: Vec<&str>| SharedDomain {
        name: "power".to_owned(),
        rate_per_year: 6.0,
        mttr_minutes: 480.0,
        members: members.into_iter().map(str::to_owned).collect(),
    };
    let partial =
        composition::monte_carlo(&block, &[strike(vec!["a-web", "a-db"])], 60.0, 24, 14).unwrap();
    let fatal = composition::monte_carlo(
        &block,
        &[strike(vec!["a-web", "a-db", "b-web", "b-db"])],
        60.0,
        24,
        14,
    )
    .unwrap();
    assert!(
        partial.mean() > fatal.mean(),
        "partial {} should beat fatal {}",
        partial.mean(),
        fatal.mean()
    );
    // The partial strike must also stay within 3σ of its own analytics:
    // only one branch is degraded, and independently of the other.
    let one_site = site("x").failover_aware_availability().value();
    let struck_site = one_site * strike(vec![]).availability().value();
    let analytic = Probability::saturating(1.0 - (1.0 - struck_site) * (1.0 - one_site));
    assert!(
        partial.agrees_with(analytic, 3.0),
        "partial-domain observed {} ± {} (3σ) vs analytic {}",
        partial.mean(),
        3.0 * partial.std_error(),
        analytic
    );
}
