//! Property-based tests for the simulator's bookkeeping invariants.

use proptest::prelude::*;
use uptime_core::{ClusterSpec, Probability, SystemSpec};
use uptime_sim::{DowntimeAccountant, FailureScript, SimConfig, SimDuration, SimTime, Simulation};

// ---------- accountant vs brute-force reference ----------

/// A random, well-formed transition schedule for `n` clusters.
fn transitions(n: usize) -> impl Strategy<Value = Vec<(usize, bool, u64)>> {
    // (cluster, down?, at-millis) — we post-process to alternate states.
    prop::collection::vec((0..n, any::<bool>(), 0u64..100_000), 0..200)
}

/// Brute-force reference: per-millisecond union of cluster down states.
fn reference_downtime(events: &[(usize, bool, u64)], n: usize, horizon: u64) -> (u64, Vec<u64>) {
    let mut per_cluster_down = vec![false; n];
    let mut per_cluster_total = vec![0u64; n];
    let mut system_total = 0u64;
    let mut sorted: Vec<_> = events.to_vec();
    sorted.sort_by_key(|&(_, _, at)| at);
    let mut idx = 0;
    for t in 0..horizon {
        while idx < sorted.len() && sorted[idx].2 == t {
            let (c, down, _) = sorted[idx];
            per_cluster_down[c] = down;
            idx += 1;
        }
        if per_cluster_down.iter().any(|&d| d) {
            system_total += 1;
        }
        for (c, &down) in per_cluster_down.iter().enumerate() {
            if down {
                per_cluster_total[c] += 1;
            }
        }
    }
    (system_total, per_cluster_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The accountant's interval arithmetic matches a per-millisecond
    /// brute-force reference on arbitrary transition schedules.
    #[test]
    fn accountant_matches_bruteforce(raw in transitions(3)) {
        let n = 3;
        let horizon = 100_000u64;
        // Deduplicate into a *consistent* schedule: sort by time and keep
        // only transitions that actually change the cluster's state.
        let mut sorted = raw.clone();
        sorted.sort_by_key(|&(_, _, at)| at);
        let mut state = vec![false; n];
        let mut schedule: Vec<(usize, bool, u64)> = Vec::new();
        for (c, down, at) in sorted {
            if state[c] != down {
                state[c] = down;
                schedule.push((c, down, at));
            }
        }

        let mut accountant = DowntimeAccountant::new(n);
        for &(c, down, at) in &schedule {
            accountant.set_cluster_state(c, down, SimTime::from_millis(at));
        }
        accountant.finalize(SimTime::from_millis(horizon));

        let (ref_system, ref_clusters) = reference_downtime(&schedule, n, horizon);
        prop_assert_eq!(accountant.system_downtime().as_millis(), ref_system);
        for (c, &expected) in ref_clusters.iter().enumerate() {
            prop_assert_eq!(accountant.cluster_downtime(c).as_millis(), expected, "cluster {}", c);
        }
    }
}

// ---------- failure injection vs interval arithmetic ----------

/// Disjoint outages for a single singleton node.
fn disjoint_outages() -> impl Strategy<Value = Vec<(u64, u64)>> {
    // (gap-before, length) pairs, accumulated into disjoint intervals.
    prop::collection::vec((1u64..5_000, 1u64..5_000), 0..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For a singleton cluster, scripted downtime equals the clipped union
    /// of the scripted intervals exactly.
    #[test]
    fn scripted_singleton_downtime_exact(pairs in disjoint_outages()) {
        let system = SystemSpec::builder()
            .cluster(ClusterSpec::singleton("only", Probability::ZERO, 0.0).unwrap())
            .build()
            .unwrap();
        let horizon_ms = 80_000u64;
        let mut script = FailureScript::new();
        let mut cursor = 0u64;
        let mut expected = 0u64;
        for (gap, len) in pairs {
            let start = cursor + gap;
            script = script.outage(
                0,
                0,
                SimTime::from_millis(start),
                SimDuration::from_millis(len),
            );
            if start < horizon_ms {
                expected += len.min(horizon_ms - start);
            }
            cursor = start + len;
        }
        let report = script
            .run(&system, SimDuration::from_millis(horizon_ms))
            .unwrap();
        prop_assert_eq!(report.system_downtime().as_millis(), expected);
        prop_assert_eq!(report.clusters()[0].downtime.as_millis(), expected);
    }

    /// Outage logs agree with the report totals for random stochastic runs.
    #[test]
    fn outage_log_consistent_with_report(
        p in 0.005f64..0.2,
        f in 0.5f64..8.0,
        seed in 0u64..1000,
    ) {
        let system = SystemSpec::builder()
            .cluster(ClusterSpec::singleton("a", Probability::new(p).unwrap(), f).unwrap())
            .cluster(ClusterSpec::singleton("b", Probability::new(p / 2.0).unwrap(), f).unwrap())
            .build()
            .unwrap();
        let (report, _, outages) = Simulation::new(
            &system,
            SimConfig::years(5.0).with_seed(seed).with_outage_log(),
        )
        .unwrap()
        .run_full();
        let outages = outages.unwrap();
        prop_assert_eq!(outages.total_downtime(), report.system_downtime());
        prop_assert_eq!(outages.len() as u64, report.system_outages());
        // Intervals are ordered, disjoint, and within the horizon.
        for w in outages.intervals().windows(2) {
            prop_assert!(w[0].1 <= w[1].0);
        }
        if let Some(&(_, end)) = outages.intervals().last() {
            prop_assert!(end.as_millis() <= report.horizon().as_millis());
        }
    }

    /// Simulated availability of a serial pair is never better than either
    /// cluster alone (same seed scheme, statistical sanity at 5 years).
    #[test]
    fn serial_never_beats_components(seed in 0u64..200) {
        let a = ClusterSpec::singleton("a", Probability::new(0.05).unwrap(), 4.0).unwrap();
        let b = ClusterSpec::singleton("b", Probability::new(0.03).unwrap(), 3.0).unwrap();
        let pair = SystemSpec::new(vec![a.clone(), b.clone()]).unwrap();
        let report = Simulation::new(&pair, SimConfig::years(5.0).with_seed(seed))
            .unwrap()
            .run();
        // The union of outages is at least each component's share.
        prop_assert!(report.system_downtime() >= report.clusters()[0].downtime);
        prop_assert!(report.system_downtime() >= report.clusters()[1].downtime);
        let sum = report.clusters()[0].downtime + report.clusters()[1].downtime;
        prop_assert!(report.system_downtime() <= sum);
    }
}
