//! The top-level simulation: event loop over a serial system.

use uptime_core::{FailureDynamics, SystemSpec};

use crate::accountant::DowntimeAccountant;
use crate::cluster::{ClusterSim, FailureOutcome};
use crate::error::SimError;
use crate::events::{EventKind, EventQueue};
use crate::report::{ClusterReport, SimReport};
use crate::rng::ExpSampler;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEventKind};

/// Configuration for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    horizon: SimDuration,
    seed: u64,
    capture_trace: bool,
    log_outages: bool,
}

impl SimConfig {
    /// Simulates for the given number of years.
    #[must_use]
    pub fn years(years: f64) -> Self {
        SimConfig {
            horizon: SimTime::from_years(years).since(SimTime::ZERO),
            seed: 0,
            capture_trace: false,
            log_outages: false,
        }
    }

    /// Simulates for an explicit duration.
    #[must_use]
    pub fn horizon(horizon: SimDuration) -> Self {
        SimConfig {
            horizon,
            seed: 0,
            capture_trace: false,
            log_outages: false,
        }
    }

    /// Sets the RNG seed (default 0).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables trace capture (off by default; traces can be large).
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.capture_trace = true;
        self
    }

    /// Additionally records every system outage interval, for workload
    /// riders (see [`crate::workload`]).
    #[must_use]
    pub fn with_outage_log(mut self) -> Self {
        self.log_outages = true;
        self
    }
}

struct NodeDynamics {
    mtbf_ms: f64,
    mttr_ms: f64,
}

/// A ready-to-run simulation of one [`SystemSpec`].
pub struct Simulation {
    clusters: Vec<ClusterSim>,
    dynamics: Vec<NodeDynamics>, // per cluster (shared by its nodes)
    config: SimConfig,
}

impl Simulation {
    /// Prepares a simulation of the system.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyHorizon`] for a zero-length horizon.
    /// * [`SimError::InvalidDynamics`] when a cluster's `(P, f)` cannot be
    ///   converted to MTBF/MTTR (see
    ///   [`FailureDynamics::from_paper_params`]).
    pub fn new(system: &SystemSpec, config: SimConfig) -> Result<Self, SimError> {
        if config.horizon == SimDuration::ZERO {
            return Err(SimError::EmptyHorizon);
        }
        let mut clusters = Vec::with_capacity(system.len());
        let mut dynamics = Vec::with_capacity(system.len());
        for spec in system.clusters() {
            let dyn_ = FailureDynamics::from_paper_params(
                spec.node_down_probability(),
                spec.failures_per_year(),
            )
            .map_err(|source| SimError::InvalidDynamics {
                cluster: spec.name().to_owned(),
                source,
            })?;
            clusters.push(ClusterSim::new(
                spec.name(),
                spec.total_nodes(),
                spec.active_nodes(),
                SimDuration::from_model(spec.failover_time()),
            ));
            dynamics.push(NodeDynamics {
                mtbf_ms: dyn_.mtbf().as_minutes().value() * 60_000.0,
                mttr_ms: dyn_.mttr().as_minutes().value() * 60_000.0,
            });
        }
        Ok(Simulation {
            clusters,
            dynamics,
            config,
        })
    }

    /// Runs the event loop to the horizon and returns the report.
    #[must_use]
    pub fn run(self) -> SimReport {
        self.run_traced().0
    }

    /// [`run`](Self::run) with observability: the identical event loop
    /// wrapped in a `sim.trial` span, flushing `sim.events` (events
    /// processed) and `sim.outages` once at the end.
    #[must_use]
    pub fn run_recorded(self, rec: &dyn uptime_obs::Recorder) -> SimReport {
        let _span = uptime_obs::span!(rec, "sim.trial");
        let (report, _, _, events) = self.run_counted();
        rec.counter_add("sim.events", events);
        rec.counter_add("sim.outages", report.system_outages());
        report
    }

    /// Runs and additionally returns the captured trace (empty unless
    /// [`SimConfig::with_trace`] was set).
    #[must_use]
    pub fn run_traced(self) -> (SimReport, Trace) {
        let (report, trace, _) = self.run_full();
        (report, trace)
    }

    /// Runs and returns the report, the trace (empty unless
    /// [`SimConfig::with_trace`]) and the outage log (present only with
    /// [`SimConfig::with_outage_log`]).
    #[must_use]
    pub fn run_full(self) -> (SimReport, Trace, Option<crate::workload::OutageLog>) {
        let (report, trace, outages, _) = self.run_counted();
        (report, trace, outages)
    }

    /// The event loop itself; also counts events popped off the queue so
    /// recorded runs can report throughput without touching the loop body.
    fn run_counted(mut self) -> (SimReport, Trace, Option<crate::workload::OutageLog>, u64) {
        let horizon_time = SimTime::ZERO + self.config.horizon;
        let mut queue = EventQueue::new();
        let mut sampler = ExpSampler::seed_from_u64(self.config.seed);
        let mut accountant = DowntimeAccountant::new(self.clusters.len());
        if self.config.log_outages {
            accountant = accountant.with_outage_log();
        }
        let mut trace = Trace::new();

        queue.schedule(horizon_time, EventKind::HorizonReached);
        for (ci, cluster) in self.clusters.iter().enumerate() {
            for node in 0..cluster.total_nodes() as usize {
                let ttf = sampler.sample_exponential_ms(self.dynamics[ci].mtbf_ms);
                queue.schedule(
                    SimTime::ZERO + ttf,
                    EventKind::NodeFailed { cluster: ci, node },
                );
            }
        }

        let mut events_processed: u64 = 0;
        while let Some(event) = queue.pop() {
            let now = event.at;
            events_processed += 1;
            match event.kind {
                EventKind::HorizonReached => break,
                EventKind::NodeFailed { cluster: ci, node } => {
                    let was_down = self.clusters[ci].is_down();
                    let outcome = self.clusters[ci].node_failed(node, now);
                    if self.config.capture_trace {
                        trace.record(now, ci, TraceEventKind::NodeDown { node });
                        if matches!(outcome, FailureOutcome::FailoverStarted { .. }) && !was_down {
                            trace.record(now, ci, TraceEventKind::FailoverStart);
                        }
                    }
                    if let FailureOutcome::FailoverStarted { until, token } = outcome {
                        queue.schedule(until, EventKind::FailoverEnded { cluster: ci, token });
                    }
                    let ttr = sampler.sample_exponential_ms(self.dynamics[ci].mttr_ms.max(1.0));
                    queue.schedule(now + ttr, EventKind::NodeRepaired { cluster: ci, node });
                    accountant.set_cluster_state(ci, self.clusters[ci].is_down(), now);
                }
                EventKind::NodeRepaired { cluster: ci, node } => {
                    self.clusters[ci].node_repaired(node, now);
                    if self.config.capture_trace {
                        trace.record(now, ci, TraceEventKind::NodeUp { node });
                    }
                    let ttf = sampler.sample_exponential_ms(self.dynamics[ci].mtbf_ms);
                    queue.schedule(now + ttf, EventKind::NodeFailed { cluster: ci, node });
                    accountant.set_cluster_state(ci, self.clusters[ci].is_down(), now);
                }
                EventKind::FailoverEnded { cluster: ci, token } => {
                    let was_down = self.clusters[ci].is_down();
                    self.clusters[ci].failover_ended(token, now);
                    let is_down = self.clusters[ci].is_down();
                    if self.config.capture_trace && was_down && !is_down {
                        trace.record(now, ci, TraceEventKind::FailoverEnd);
                    }
                    accountant.set_cluster_state(ci, is_down, now);
                }
            }
        }

        accountant.finalize(horizon_time);
        let clusters = self
            .clusters
            .iter()
            .enumerate()
            .map(|(i, c)| ClusterReport {
                name: c.name().to_owned(),
                downtime: accountant.cluster_downtime(i),
                failover_windows: c.failover_windows(),
                breakdowns: c.breakdowns(),
            })
            .collect();
        let outages = accountant.take_outage_log();
        (
            SimReport::new(
                self.config.horizon,
                accountant.system_downtime(),
                accountant.system_outages(),
                clusters,
            ),
            trace,
            outages,
            events_processed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_core::{ClusterSpec, FailuresPerYear, Minutes, Probability};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn singleton_system(down: f64, f: f64) -> SystemSpec {
        SystemSpec::builder()
            .cluster(ClusterSpec::singleton("only", p(down), f).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn zero_horizon_rejected() {
        let sys = singleton_system(0.02, 2.0);
        assert!(matches!(
            Simulation::new(&sys, SimConfig::horizon(SimDuration::ZERO)),
            Err(SimError::EmptyHorizon)
        ));
    }

    #[test]
    fn contradictory_dynamics_rejected() {
        let sys = singleton_system(0.5, 0.0);
        assert!(matches!(
            Simulation::new(&sys, SimConfig::years(1.0)),
            Err(SimError::InvalidDynamics { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let sys = singleton_system(0.05, 3.0);
        let a = Simulation::new(&sys, SimConfig::years(10.0).with_seed(9))
            .unwrap()
            .run();
        let b = Simulation::new(&sys, SimConfig::years(10.0).with_seed(9))
            .unwrap()
            .run();
        assert_eq!(a, b);
    }

    #[test]
    fn singleton_availability_converges_to_one_minus_p() {
        let sys = singleton_system(0.05, 4.0);
        let report = Simulation::new(&sys, SimConfig::years(400.0).with_seed(1))
            .unwrap()
            .run();
        let availability = report.availability().value();
        assert!(
            (availability - 0.95).abs() < 0.01,
            "got {availability}, want ≈0.95"
        );
    }

    #[test]
    fn never_failing_system_stays_up() {
        let sys = singleton_system(0.0, 0.0);
        let report = Simulation::new(&sys, SimConfig::years(5.0)).unwrap().run();
        assert_eq!(report.availability().value(), 1.0);
        assert_eq!(report.system_outages(), 0);
    }

    #[test]
    fn serial_system_downtime_is_union() {
        let sys = SystemSpec::builder()
            .cluster(ClusterSpec::singleton("a", p(0.03), 2.0).unwrap())
            .cluster(ClusterSpec::singleton("b", p(0.03), 2.0).unwrap())
            .build()
            .unwrap();
        let report = Simulation::new(&sys, SimConfig::years(300.0).with_seed(2))
            .unwrap()
            .run();
        // Analytic: 1 − 0.97² ≈ 5.91 % downtime.
        let observed = 1.0 - report.availability().value();
        assert!((observed - 0.0591).abs() < 0.01, "got {observed}");
        // Union is at most the sum of the parts.
        let sum = report.clusters()[0].downtime + report.clusters()[1].downtime;
        assert!(report.system_downtime() <= sum);
        assert!(report.system_downtime().as_millis() > 0);
    }

    #[test]
    fn redundant_cluster_beats_singleton() {
        let raid = SystemSpec::builder()
            .cluster(
                ClusterSpec::builder("raid")
                    .total_nodes(2)
                    .standby_budget(1)
                    .node_down_probability(p(0.05))
                    .failures_per_year(FailuresPerYear::new(2.0).unwrap())
                    .failover_time(Minutes::from_seconds(30.0).unwrap())
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        let single = singleton_system(0.05, 2.0);
        let raid_report = Simulation::new(&raid, SimConfig::years(300.0).with_seed(3))
            .unwrap()
            .run();
        let single_report = Simulation::new(&single, SimConfig::years(300.0).with_seed(3))
            .unwrap()
            .run();
        assert!(raid_report.availability() > single_report.availability());
        // RAID-1 analytic availability 99.75 % minus a sliver of failover.
        assert!(
            (raid_report.availability().value() - 0.9975).abs() < 0.002,
            "got {}",
            raid_report.availability()
        );
        assert!(raid_report.clusters()[0].failover_windows > 0);
    }

    #[test]
    fn vmware_cluster_failover_rate_matches_model() {
        // f·(K−K̂) ≈ 3 failovers per year when repairs are fast.
        let sys = SystemSpec::builder()
            .cluster(
                ClusterSpec::builder("compute")
                    .total_nodes(4)
                    .standby_budget(1)
                    .node_down_probability(p(0.01))
                    .failures_per_year(FailuresPerYear::new(1.0).unwrap())
                    .failover_time(Minutes::new(6.0).unwrap())
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        let years = 500.0;
        let report = Simulation::new(&sys, SimConfig::years(years).with_seed(4))
            .unwrap()
            .run();
        let rate = report.clusters()[0].failover_windows as f64 / years;
        // Actives fail at ~3/yr; nearly all failures find the standby up.
        assert!((rate - 3.0).abs() < 0.25, "got {rate} failovers/yr");
    }

    #[test]
    fn trace_capture_records_node_events() {
        let sys = singleton_system(0.1, 6.0);
        let (report, trace) =
            Simulation::new(&sys, SimConfig::years(5.0).with_seed(5).with_trace())
                .unwrap()
                .run_traced();
        assert!(report.system_outages() > 0);
        let downs = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::NodeDown { .. }))
            .count();
        let ups = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::NodeUp { .. }))
            .count();
        assert!(downs > 0);
        // Every down is eventually followed by an up or the horizon.
        assert!(ups == downs || ups + 1 == downs);
    }

    #[test]
    fn outage_log_capture_and_workload_rider() {
        use crate::workload::RequestWorkload;
        let sys = singleton_system(0.05, 4.0);
        let (report, _, outages) =
            Simulation::new(&sys, SimConfig::years(50.0).with_seed(8).with_outage_log())
                .unwrap()
                .run_full();
        let outages = outages.expect("log requested");
        // The log's total downtime must equal the report's.
        assert_eq!(outages.total_downtime(), report.system_downtime());
        assert_eq!(outages.len() as u64, report.system_outages());

        // A uniform request stream sees roughly the time availability.
        let workload = RequestWorkload::new(2.0, 99);
        let assessed = workload.assess(&outages, report.horizon());
        let request_availability = assessed.request_availability().value();
        assert!(
            (request_availability - report.availability().value()).abs() < 0.01,
            "request {} vs time {}",
            request_availability,
            report.availability()
        );
    }

    #[test]
    fn without_outage_flag_log_is_absent() {
        let sys = singleton_system(0.05, 4.0);
        let (_, _, outages) = Simulation::new(&sys, SimConfig::years(1.0).with_seed(8))
            .unwrap()
            .run_full();
        assert!(outages.is_none());
    }

    #[test]
    fn recorded_run_matches_and_counts_events() {
        let sys = singleton_system(0.05, 3.0);
        let registry = uptime_obs::MetricsRegistry::new();
        let plain = Simulation::new(&sys, SimConfig::years(10.0).with_seed(9))
            .unwrap()
            .run();
        let recorded = Simulation::new(&sys, SimConfig::years(10.0).with_seed(9))
            .unwrap()
            .run_recorded(&registry);
        assert_eq!(plain, recorded, "instrumentation must not change results");
        let snap = registry.snapshot();
        assert!(snap.counter("sim.events").unwrap() > 0);
        assert_eq!(snap.counter("sim.outages"), Some(recorded.system_outages()));
        assert_eq!(snap.counter("sim.trial.calls"), Some(1));
    }

    #[test]
    fn without_trace_flag_trace_is_empty() {
        let sys = singleton_system(0.1, 6.0);
        let (_, trace) = Simulation::new(&sys, SimConfig::years(2.0).with_seed(6))
            .unwrap()
            .run_traced();
        assert!(trace.is_empty());
    }
}
