//! Repair-crew-constrained simulation.
//!
//! The paper's `C_HA` includes a *labor* component (FTE fractions at an
//! hourly rate), but the model assumes every failed node is repaired
//! immediately and independently — as if the provider had unlimited
//! staff. This simulator caps concurrent repairs per cluster at a crew
//! count: excess failures queue FIFO until a crew frees up. With crews
//! under-provisioned, effective MTTR inflates and availability falls below
//! Eq. 2's prediction — the staffing ablation (experiment L1) connecting
//! the FTE line item back to uptime.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use uptime_core::{FailureDynamics, SystemSpec};

use crate::accountant::DowntimeAccountant;
use crate::cluster::{ClusterSim, FailureOutcome};
use crate::error::SimError;
use crate::report::{ClusterReport, SimReport};
use crate::rng::ExpSampler;
use crate::time::{SimDuration, SimTime};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    NodeFailed { cluster: usize, node: usize },
    RepairDone { cluster: usize, node: usize },
    FailoverEnded { cluster: usize, token: u64 },
    Horizon,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: Kind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A simulation where each cluster has a fixed number of repair crews;
/// a node's repair *starts* only when a crew is free.
///
/// # Examples
///
/// ```
/// use uptime_core::{ClusterSpec, Probability, SystemSpec};
/// use uptime_sim::crews::CrewSimulation;
/// use uptime_sim::SimDuration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = SystemSpec::builder()
///     .cluster(ClusterSpec::singleton("web", Probability::new(0.05)?, 4.0)?)
///     .build()?;
/// let horizon = SimDuration::from_minutes(50.0 * 525_600.0);
/// let report = CrewSimulation::new(&system, vec![1], horizon, 3)?.run();
/// // One node, one crew: same as the unconstrained model.
/// assert!((report.availability().value() - 0.95).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CrewSimulation {
    clusters: Vec<ClusterSim>,
    node_dynamics: Vec<(f64, f64)>, // (mtbf_ms, mttr_ms) per cluster
    crews: Vec<u32>,
    horizon: SimDuration,
    seed: u64,
}

impl CrewSimulation {
    /// Prepares a crew-constrained simulation; `crews` has one entry per
    /// cluster (0 is clamped to 1 — some repair capacity must exist).
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyHorizon`] for a zero horizon.
    /// * [`SimError::InvalidDynamics`] for unusable `(P, f)` pairs or a
    ///   crew-arity mismatch.
    pub fn new(
        system: &SystemSpec,
        crews: Vec<u32>,
        horizon: SimDuration,
        seed: u64,
    ) -> Result<Self, SimError> {
        if horizon == SimDuration::ZERO {
            return Err(SimError::EmptyHorizon);
        }
        if crews.len() != system.len() {
            return Err(SimError::InvalidDynamics {
                cluster: format!(
                    "crew arity {} != cluster count {}",
                    crews.len(),
                    system.len()
                ),
                source: uptime_core::ModelError::EmptySystem,
            });
        }
        let mut clusters = Vec::with_capacity(system.len());
        let mut node_dynamics = Vec::with_capacity(system.len());
        for spec in system.clusters() {
            let dyn_ = FailureDynamics::from_paper_params(
                spec.node_down_probability(),
                spec.failures_per_year(),
            )
            .map_err(|source| SimError::InvalidDynamics {
                cluster: spec.name().to_owned(),
                source,
            })?;
            clusters.push(ClusterSim::new(
                spec.name(),
                spec.total_nodes(),
                spec.active_nodes(),
                SimDuration::from_model(spec.failover_time()),
            ));
            node_dynamics.push((
                dyn_.mtbf().as_minutes().value() * 60_000.0,
                dyn_.mttr().as_minutes().value() * 60_000.0,
            ));
        }
        Ok(CrewSimulation {
            clusters,
            node_dynamics,
            crews: crews.into_iter().map(|c| c.max(1)).collect(),
            horizon,
            seed,
        })
    }

    /// Runs the event loop to the horizon.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        let horizon_time = SimTime::ZERO + self.horizon;
        let mut sampler = ExpSampler::seed_from_u64(self.seed);
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut schedule = |heap: &mut BinaryHeap<Event>, at: SimTime, kind: Kind| {
            heap.push(Event { at, seq, kind });
            seq += 1;
        };

        let mut busy: Vec<u32> = vec![0; self.clusters.len()];
        let mut waiting: Vec<VecDeque<usize>> = vec![VecDeque::new(); self.clusters.len()];

        schedule(&mut heap, horizon_time, Kind::Horizon);
        for (ci, cluster) in self.clusters.iter().enumerate() {
            for node in 0..cluster.total_nodes() as usize {
                let ttf = sampler.sample_exponential_ms(self.node_dynamics[ci].0);
                schedule(
                    &mut heap,
                    SimTime::ZERO + ttf,
                    Kind::NodeFailed { cluster: ci, node },
                );
            }
        }

        let mut accountant = DowntimeAccountant::new(self.clusters.len());
        while let Some(event) = heap.pop() {
            let now = event.at;
            match event.kind {
                Kind::Horizon => break,
                Kind::NodeFailed { cluster: ci, node } => {
                    let outcome = self.clusters[ci].node_failed(node, now);
                    if let FailureOutcome::FailoverStarted { until, token } = outcome {
                        schedule(&mut heap, until, Kind::FailoverEnded { cluster: ci, token });
                    }
                    if busy[ci] < self.crews[ci] {
                        busy[ci] += 1;
                        let ttr = sampler.sample_exponential_ms(self.node_dynamics[ci].1.max(1.0));
                        schedule(&mut heap, now + ttr, Kind::RepairDone { cluster: ci, node });
                    } else {
                        waiting[ci].push_back(node);
                    }
                    accountant.set_cluster_state(ci, self.clusters[ci].is_down(), now);
                }
                Kind::RepairDone { cluster: ci, node } => {
                    self.clusters[ci].node_repaired(node, now);
                    let ttf = sampler.sample_exponential_ms(self.node_dynamics[ci].0);
                    schedule(&mut heap, now + ttf, Kind::NodeFailed { cluster: ci, node });
                    // Hand the crew to the next queued casualty, if any.
                    if let Some(next) = waiting[ci].pop_front() {
                        let ttr = sampler.sample_exponential_ms(self.node_dynamics[ci].1.max(1.0));
                        schedule(
                            &mut heap,
                            now + ttr,
                            Kind::RepairDone {
                                cluster: ci,
                                node: next,
                            },
                        );
                    } else {
                        busy[ci] -= 1;
                    }
                    accountant.set_cluster_state(ci, self.clusters[ci].is_down(), now);
                }
                Kind::FailoverEnded { cluster: ci, token } => {
                    self.clusters[ci].failover_ended(token, now);
                    accountant.set_cluster_state(ci, self.clusters[ci].is_down(), now);
                }
            }
        }
        accountant.finalize(horizon_time);

        let clusters = self
            .clusters
            .iter()
            .enumerate()
            .map(|(i, c)| ClusterReport {
                name: c.name().to_owned(),
                downtime: accountant.cluster_downtime(i),
                failover_windows: c.failover_windows(),
                breakdowns: c.breakdowns(),
            })
            .collect();
        SimReport::new(
            self.horizon,
            accountant.system_downtime(),
            accountant.system_outages(),
            clusters,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_core::{ClusterSpec, FailuresPerYear, Minutes, Probability};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn years(y: f64) -> SimDuration {
        SimDuration::from_minutes(y * 525_600.0)
    }

    /// A big, failure-heavy farm where repair contention matters:
    /// 8 nodes needing 5 active, each failing 12×/year, P = 10 %.
    fn stressed_farm() -> SystemSpec {
        SystemSpec::builder()
            .cluster(
                ClusterSpec::builder("farm")
                    .total_nodes(8)
                    .standby_budget(3)
                    .node_down_probability(p(0.10))
                    .failures_per_year(FailuresPerYear::new(12.0).unwrap())
                    .failover_time(Minutes::new(0.5).unwrap())
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn arity_and_horizon_validation() {
        let sys = stressed_farm();
        assert!(matches!(
            CrewSimulation::new(&sys, vec![], years(1.0), 1),
            Err(SimError::InvalidDynamics { .. })
        ));
        assert!(matches!(
            CrewSimulation::new(&sys, vec![1], SimDuration::ZERO, 1),
            Err(SimError::EmptyHorizon)
        ));
    }

    #[test]
    fn ample_crews_match_unconstrained_model() {
        let sys = stressed_farm();
        // 8 crews = one per node: never a queue.
        let report = CrewSimulation::new(&sys, vec![8], years(150.0), 5)
            .unwrap()
            .run();
        let analytic = sys.uptime().availability().value();
        assert!(
            (report.availability().value() - analytic).abs() < 0.01,
            "observed {} vs analytic {analytic}",
            report.availability()
        );
    }

    #[test]
    fn single_crew_degrades_availability() {
        let sys = stressed_farm();
        let starved = CrewSimulation::new(&sys, vec![1], years(150.0), 5)
            .unwrap()
            .run();
        let staffed = CrewSimulation::new(&sys, vec![8], years(150.0), 5)
            .unwrap()
            .run();
        assert!(
            staffed.availability().value() - starved.availability().value() > 0.01,
            "1 crew {} vs 8 crews {}",
            starved.availability(),
            staffed.availability()
        );
    }

    #[test]
    fn more_crews_monotonically_help() {
        let sys = stressed_farm();
        let mut prev = 0.0;
        for crews in [1u32, 2, 4, 8] {
            let report = CrewSimulation::new(&sys, vec![crews], years(100.0), 9)
                .unwrap()
                .run();
            let availability = report.availability().value();
            assert!(
                availability >= prev - 0.005,
                "crews {crews}: {availability} < prev {prev}"
            );
            prev = availability;
        }
    }

    #[test]
    fn zero_crews_clamped_to_one() {
        let sys = stressed_farm();
        let report = CrewSimulation::new(&sys, vec![0], years(20.0), 2)
            .unwrap()
            .run();
        // Must terminate and produce sane numbers (0 crews would deadlock).
        assert!(report.availability().value() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let sys = stressed_farm();
        let a = CrewSimulation::new(&sys, vec![2], years(30.0), 11)
            .unwrap()
            .run();
        let b = CrewSimulation::new(&sys, vec![2], years(30.0), 11)
            .unwrap()
            .run();
        assert_eq!(a, b);
    }

    #[test]
    fn lightly_loaded_cluster_insensitive_to_crews() {
        // Paper-like failure rates (1-2/yr): repairs almost never overlap,
        // so even one crew matches the model.
        let sys = SystemSpec::builder()
            .cluster(ClusterSpec::singleton("web", p(0.01), 1.0).unwrap())
            .build()
            .unwrap();
        let report = CrewSimulation::new(&sys, vec![1], years(300.0), 3)
            .unwrap()
            .run();
        assert!((report.availability().value() - 0.99).abs() < 0.005);
    }
}
