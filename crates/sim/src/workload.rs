//! Request-level workload rider.
//!
//! Time-based availability (what the SLA measures) and *request-level*
//! availability (what users feel) differ when traffic is non-uniform or
//! outages cluster. This module rides a Poisson request stream over an
//! outage log and reports how many requests landed inside outages — the
//! user-visible counterpart of the paper's uptime number.

use serde::{Deserialize, Serialize};
use uptime_core::Probability;

use crate::rng::ExpSampler;
use crate::time::{SimDuration, SimTime};

/// An ordered, non-overlapping log of system outage intervals
/// (half-open: `[start, end)`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageLog {
    intervals: Vec<(SimTime, SimTime)>,
}

impl OutageLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        OutageLog::default()
    }

    /// Appends an outage; must start at or after the previous outage's end.
    ///
    /// # Panics
    ///
    /// Panics when intervals are appended out of order or overlapping —
    /// the accountant produces them ordered.
    pub fn push(&mut self, start: SimTime, end: SimTime) {
        assert!(start <= end, "outage must not end before it starts");
        if let Some(&(_, prev_end)) = self.intervals.last() {
            assert!(start >= prev_end, "outages must be ordered and disjoint");
        }
        self.intervals.push((start, end));
    }

    /// The intervals, ordered.
    #[must_use]
    pub fn intervals(&self) -> &[(SimTime, SimTime)] {
        &self.intervals
    }

    /// Number of outages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether there were no outages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total outage time.
    #[must_use]
    pub fn total_downtime(&self) -> SimDuration {
        self.intervals
            .iter()
            .map(|(s, e)| e.since(*s))
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }

    /// The given percentile (nearest-rank) of individual outage durations,
    /// or `None` when the log is empty. Useful for distinguishing many
    /// short blips from few long outages with equal total downtime.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not within `(0, 100]`.
    #[must_use]
    pub fn duration_percentile(&self, pct: f64) -> Option<SimDuration> {
        assert!(pct > 0.0 && pct <= 100.0, "percentile must be in (0, 100]");
        if self.intervals.is_empty() {
            return None;
        }
        let mut durations: Vec<SimDuration> =
            self.intervals.iter().map(|(s, e)| e.since(*s)).collect();
        durations.sort_unstable();
        let rank = ((pct / 100.0) * durations.len() as f64).ceil() as usize;
        Some(durations[rank.clamp(1, durations.len()) - 1])
    }

    /// Total outage time overlapping the half-open window `[start, end)`.
    #[must_use]
    pub fn downtime_within(&self, start: SimTime, end: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for &(s, e) in &self.intervals {
            if e <= start {
                continue;
            }
            if s >= end {
                break;
            }
            let clipped_start = s.max(start);
            let clipped_end = e.min(end);
            total += clipped_end.since(clipped_start);
        }
        total
    }

    /// Whether an instant falls inside an outage (binary search).
    #[must_use]
    pub fn contains(&self, at: SimTime) -> bool {
        match self.intervals.binary_search_by(|(s, _)| s.cmp(&at)) {
            Ok(_) => true, // exactly at a start
            Err(0) => false,
            Err(i) => at < self.intervals[i - 1].1,
        }
    }
}

/// A Poisson request stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestWorkload {
    rate_per_minute: f64,
    seed: u64,
}

impl RequestWorkload {
    /// Creates a workload with the given arrival rate (requests/minute).
    #[must_use]
    pub fn new(rate_per_minute: f64, seed: u64) -> Self {
        RequestWorkload {
            rate_per_minute: rate_per_minute.max(0.0),
            seed,
        }
    }

    /// Rides the stream over `[0, horizon)` against the outage log.
    #[must_use]
    pub fn assess(&self, outages: &OutageLog, horizon: SimDuration) -> WorkloadReport {
        if self.rate_per_minute == 0.0 {
            return WorkloadReport {
                total: 0,
                failed: 0,
            };
        }
        let mut sampler = ExpSampler::seed_from_u64(self.seed);
        let mean_gap_ms = 60_000.0 / self.rate_per_minute;
        let horizon_time = SimTime::ZERO + horizon;
        let mut now = SimTime::ZERO;
        let mut total = 0u64;
        let mut failed = 0u64;
        loop {
            now = now + sampler.sample_exponential_ms(mean_gap_ms);
            if now >= horizon_time {
                break;
            }
            total += 1;
            if outages.contains(now) {
                failed += 1;
            }
        }
        WorkloadReport { total, failed }
    }
}

/// Outcome of riding a workload over an outage log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Requests issued.
    pub total: u64,
    /// Requests that landed inside an outage.
    pub failed: u64,
}

impl WorkloadReport {
    /// Request-level availability: `1 − failed/total` (1.0 when no
    /// requests were issued).
    #[must_use]
    pub fn request_availability(&self) -> Probability {
        if self.total == 0 {
            Probability::ONE
        } else {
            Probability::saturating(1.0 - self.failed as f64 / self.total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(min: f64) -> SimTime {
        SimTime::from_minutes(min)
    }

    fn log(pairs: &[(f64, f64)]) -> OutageLog {
        let mut l = OutageLog::new();
        for (s, e) in pairs {
            l.push(t(*s), t(*e));
        }
        l
    }

    #[test]
    fn log_membership() {
        let l = log(&[(10.0, 20.0), (50.0, 55.0)]);
        assert!(!l.contains(t(5.0)));
        assert!(l.contains(t(10.0)));
        assert!(l.contains(t(15.0)));
        assert!(!l.contains(t(20.0)), "half-open interval");
        assert!(l.contains(t(52.0)));
        assert!(!l.contains(t(100.0)));
        assert_eq!(l.len(), 2);
        assert_eq!(l.total_downtime(), SimDuration::from_minutes(15.0));
    }

    #[test]
    fn duration_percentiles() {
        let l = log(&[(0.0, 1.0), (10.0, 15.0), (20.0, 30.0)]);
        // Durations sorted: 1, 5, 10 minutes.
        assert_eq!(
            l.duration_percentile(50.0).unwrap(),
            SimDuration::from_minutes(5.0)
        );
        assert_eq!(
            l.duration_percentile(100.0).unwrap(),
            SimDuration::from_minutes(10.0)
        );
        assert_eq!(
            l.duration_percentile(1.0).unwrap(),
            SimDuration::from_minutes(1.0)
        );
        assert!(OutageLog::new().duration_percentile(50.0).is_none());
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn bad_percentile_panics() {
        let _ = log(&[(0.0, 1.0)]).duration_percentile(0.0);
    }

    #[test]
    fn downtime_within_clips_correctly() {
        let l = log(&[(10.0, 20.0), (50.0, 60.0), (90.0, 110.0)]);
        // Full containment.
        assert_eq!(
            l.downtime_within(t(0.0), t(30.0)),
            SimDuration::from_minutes(10.0)
        );
        // Partial overlap on both ends.
        assert_eq!(
            l.downtime_within(t(15.0), t(55.0)),
            SimDuration::from_minutes(10.0)
        );
        // Window inside one outage.
        assert_eq!(
            l.downtime_within(t(92.0), t(95.0)),
            SimDuration::from_minutes(3.0)
        );
        // No overlap.
        assert_eq!(l.downtime_within(t(25.0), t(45.0)), SimDuration::ZERO);
        // Whole horizon.
        assert_eq!(l.downtime_within(t(0.0), t(200.0)), l.total_downtime());
    }

    #[test]
    #[should_panic(expected = "ordered and disjoint")]
    fn overlapping_push_panics() {
        let mut l = log(&[(10.0, 20.0)]);
        l.push(t(15.0), t(25.0));
    }

    #[test]
    fn empty_log_never_fails_requests() {
        let w = RequestWorkload::new(10.0, 1);
        let report = w.assess(&OutageLog::new(), SimDuration::from_minutes(1000.0));
        assert!(report.total > 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.request_availability(), Probability::ONE);
    }

    #[test]
    fn zero_rate_issues_nothing() {
        let w = RequestWorkload::new(0.0, 1);
        let report = w.assess(&log(&[(0.0, 10.0)]), SimDuration::from_minutes(100.0));
        assert_eq!(report.total, 0);
        assert_eq!(report.request_availability(), Probability::ONE);
    }

    #[test]
    fn arrival_rate_is_respected() {
        let w = RequestWorkload::new(5.0, 2);
        let report = w.assess(&OutageLog::new(), SimDuration::from_minutes(10_000.0));
        let rate = report.total as f64 / 10_000.0;
        assert!((rate - 5.0).abs() < 0.2, "got {rate}/min");
    }

    #[test]
    fn uniform_traffic_matches_time_availability() {
        // 20 % of the horizon is down: request availability ≈ 80 %.
        let l = log(&[(100.0, 300.0)]);
        let w = RequestWorkload::new(20.0, 3);
        let report = w.assess(&l, SimDuration::from_minutes(1000.0));
        let availability = report.request_availability().value();
        assert!((availability - 0.8).abs() < 0.02, "got {availability}");
    }

    #[test]
    fn deterministic_given_seed() {
        let l = log(&[(10.0, 40.0)]);
        let a = RequestWorkload::new(7.0, 9).assess(&l, SimDuration::from_minutes(500.0));
        let b = RequestWorkload::new(7.0, 9).assess(&l, SimDuration::from_minutes(500.0));
        assert_eq!(a, b);
    }

    #[test]
    fn serde_roundtrip() {
        let l = log(&[(1.0, 2.0)]);
        let json = serde_json::to_string(&l).unwrap();
        let back: OutageLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l);
    }
}
