//! Monte-Carlo estimation of system availability.
//!
//! Runs many independent simulation trials (distinct seeds) in parallel
//! and aggregates the observed availabilities into a mean with a
//! confidence interval — experiment V1's check that the analytic Eqs. 1–4
//! predict what the simulated infrastructure actually delivers.

use crossbeam::thread;
use serde::{Deserialize, Serialize};
use uptime_core::{Probability, SystemSpec};

use crate::error::SimError;
use crate::system::{SimConfig, Simulation};

/// Aggregated Monte-Carlo result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloEstimate {
    trials: u32,
    mean: f64,
    std_dev: f64,
}

impl MonteCarloEstimate {
    /// Aggregates raw per-trial availability samples into an estimate
    /// (sample mean, sample standard deviation). This is how every runner
    /// in the crate folds its trials — exposed so ad-hoc batches (e.g. the
    /// composition cross-validation suite) report through the same
    /// statistics as [`MonteCarloRunner`].
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return MonteCarloEstimate {
                trials: 0,
                mean: 0.0,
                std_dev: 0.0,
            };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let variance = if samples.len() > 1 {
            samples.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        MonteCarloEstimate {
            trials: u32::try_from(samples.len()).unwrap_or(u32::MAX),
            mean,
            std_dev: variance.sqrt(),
        }
    }

    /// Number of trials aggregated.
    #[must_use]
    pub fn trials(&self) -> u32 {
        self.trials
    }

    /// Mean observed availability.
    #[must_use]
    pub fn mean(&self) -> Probability {
        Probability::saturating(self.mean)
    }

    /// Sample standard deviation of per-trial availability.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.std_dev / f64::from(self.trials).sqrt()
        }
    }

    /// 95 % confidence interval for the mean (normal approximation).
    #[must_use]
    pub fn ci95(&self) -> (Probability, Probability) {
        let half = 1.96 * self.std_error();
        (
            Probability::saturating(self.mean - half),
            Probability::saturating(self.mean + half),
        )
    }

    /// Whether an analytic prediction lies within `sigmas` standard errors
    /// of the observed mean.
    #[must_use]
    pub fn agrees_with(&self, prediction: Probability, sigmas: f64) -> bool {
        let tolerance = sigmas * self.std_error();
        (self.mean - prediction.value()).abs() <= tolerance
    }
}

/// Configurable Monte-Carlo runner.
///
/// # Examples
///
/// ```
/// use uptime_core::{ClusterSpec, Probability, SystemSpec};
/// use uptime_sim::MonteCarloRunner;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = SystemSpec::builder()
///     .cluster(ClusterSpec::singleton("web", Probability::new(0.02)?, 2.0)?)
///     .build()?;
/// let estimate = MonteCarloRunner::new(system)
///     .years_per_trial(20.0)
///     .trials(16)
///     .run()?;
/// assert!(estimate.agrees_with(Probability::new(0.98)?, 4.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MonteCarloRunner {
    system: SystemSpec,
    years_per_trial: f64,
    trials: u32,
    base_seed: u64,
    threads: usize,
}

impl MonteCarloRunner {
    /// Creates a runner with defaults: 10 years/trial, 32 trials, seed 1,
    /// hardware parallelism.
    #[must_use]
    pub fn new(system: SystemSpec) -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        MonteCarloRunner {
            system,
            years_per_trial: 10.0,
            trials: 32,
            base_seed: 1,
            threads,
        }
    }

    /// Sets the simulated years per trial.
    #[must_use]
    pub fn years_per_trial(mut self, years: f64) -> Self {
        self.years_per_trial = years;
        self
    }

    /// Sets the number of independent trials.
    #[must_use]
    pub fn trials(mut self, trials: u32) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the base RNG seed. Trial `i` runs on
    /// [`crate::rng::stream_seed`]`(base_seed, i)` — a splitmix64-mixed
    /// derivation, so trials get statistically independent streams rather
    /// than the adjacent `StdRng` states `base_seed + i` would produce.
    #[must_use]
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Caps worker threads (default: hardware parallelism).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs all trials and aggregates.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoTrials`] when `trials == 0`.
    /// * Any configuration error from the underlying [`Simulation`].
    pub fn run(&self) -> Result<MonteCarloEstimate, SimError> {
        self.run_with(&uptime_obs::NOOP)
    }

    /// [`run`](Self::run) with observability: the whole batch wrapped in a
    /// `sim.monte_carlo` span, each trial's event count accumulated into
    /// `sim.events`, and `sim.monte_carlo.trials` flushed at the end.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_recorded(
        &self,
        rec: &dyn uptime_obs::Recorder,
    ) -> Result<MonteCarloEstimate, SimError> {
        let _span = uptime_obs::span!(rec, "sim.monte_carlo");
        let estimate = self.run_with(rec)?;
        rec.counter_add("sim.monte_carlo.trials", u64::from(self.trials));
        Ok(estimate)
    }

    fn run_with(&self, rec: &dyn uptime_obs::Recorder) -> Result<MonteCarloEstimate, SimError> {
        if self.trials == 0 {
            return Err(SimError::NoTrials);
        }
        // Validate configuration once, up front.
        let _probe = Simulation::new(&self.system, SimConfig::years(self.years_per_trial))?;

        let trial_ids: Vec<u32> = (0..self.trials).collect();
        let workers = self.threads.min(trial_ids.len()).max(1);
        let chunk = trial_ids.len().div_ceil(workers);

        let availabilities: Vec<f64> = thread::scope(|scope| {
            let handles: Vec<_> = trial_ids
                .chunks(chunk)
                .map(|ids| {
                    let system = &self.system;
                    let years = self.years_per_trial;
                    let base = self.base_seed;
                    scope.spawn(move |_| {
                        ids.iter()
                            .map(|&i| {
                                Simulation::new(
                                    system,
                                    SimConfig::years(years)
                                        .with_seed(crate::rng::stream_seed(base, u64::from(i))),
                                )
                                .expect("validated by probe")
                                .run_recorded(rec)
                                .availability()
                                .value()
                            })
                            .collect::<Vec<f64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("thread scope panicked");

        Ok(MonteCarloEstimate::from_samples(&availabilities))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_core::ClusterSpec;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn singleton_system(down: f64, f: f64) -> SystemSpec {
        SystemSpec::builder()
            .cluster(ClusterSpec::singleton("only", p(down), f).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn zero_trials_rejected() {
        let runner = MonteCarloRunner::new(singleton_system(0.02, 2.0)).trials(0);
        assert!(matches!(runner.run(), Err(SimError::NoTrials)));
    }

    #[test]
    fn invalid_system_surfaces_config_error() {
        let runner = MonteCarloRunner::new(singleton_system(0.5, 0.0)).trials(4);
        assert!(matches!(
            runner.run(),
            Err(SimError::InvalidDynamics { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let runner = MonteCarloRunner::new(singleton_system(0.05, 3.0))
            .years_per_trial(5.0)
            .trials(8)
            .base_seed(11);
        let a = runner.run().unwrap();
        let b = runner.run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let base = MonteCarloRunner::new(singleton_system(0.05, 3.0))
            .years_per_trial(5.0)
            .trials(10)
            .base_seed(11);
        let serial = base.clone().threads(1).run().unwrap();
        let parallel = base.threads(4).run().unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn estimate_brackets_analytic_value() {
        let system = singleton_system(0.04, 2.0);
        let estimate = MonteCarloRunner::new(system.clone())
            .years_per_trial(50.0)
            .trials(24)
            .base_seed(3)
            .run()
            .unwrap();
        let analytic = system.uptime().availability();
        assert!(
            estimate.agrees_with(analytic, 4.0),
            "mean {} vs analytic {} (se {})",
            estimate.mean(),
            analytic,
            estimate.std_error()
        );
        let (lo, hi) = estimate.ci95();
        assert!(lo <= estimate.mean() && estimate.mean() <= hi);
        assert!(estimate.std_dev() > 0.0);
        assert_eq!(estimate.trials(), 24);
    }

    #[test]
    fn single_trial_has_zero_stddev() {
        let estimate = MonteCarloRunner::new(singleton_system(0.05, 2.0))
            .years_per_trial(2.0)
            .trials(1)
            .run()
            .unwrap();
        assert_eq!(estimate.std_dev(), 0.0);
        assert_eq!(estimate.std_error(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let estimate = MonteCarloRunner::new(singleton_system(0.05, 2.0))
            .years_per_trial(2.0)
            .trials(2)
            .run()
            .unwrap();
        let json = serde_json::to_string(&estimate).unwrap();
        let back: MonteCarloEstimate = serde_json::from_str(&json).unwrap();
        assert_eq!(back, estimate);
    }
}
