//! Event traces: the raw telemetry a broker would harvest.
//!
//! The broker crate's estimators consume these to reconstruct `P̂_i`,
//! `f̂_i` and `t̂_i` from observed behaviour — the "broker database"
//! pipeline of the paper's Fig. 2.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// One observed infrastructure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// Which cluster.
    pub cluster: usize,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The kinds of observable events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A node went down.
    NodeDown {
        /// Node index within the cluster.
        node: usize,
    },
    /// A node came back up.
    NodeUp {
        /// Node index within the cluster.
        node: usize,
    },
    /// A failover window opened.
    FailoverStart,
    /// The cluster returned to service after failing over.
    FailoverEnd,
}

/// An append-only capture of trace events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn record(&mut self, at: SimTime, cluster: usize, kind: TraceEventKind) {
        self.events.push(TraceEvent { at, cluster, kind });
    }

    /// All events in capture order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of captured events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events concerning a single cluster, in capture order.
    pub fn for_cluster(&self, cluster: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.cluster == cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_filter() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        trace.record(
            SimTime::from_millis(1),
            0,
            TraceEventKind::NodeDown { node: 2 },
        );
        trace.record(SimTime::from_millis(2), 1, TraceEventKind::FailoverStart);
        trace.record(
            SimTime::from_millis(3),
            0,
            TraceEventKind::NodeUp { node: 2 },
        );
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.for_cluster(0).count(), 2);
        assert_eq!(trace.for_cluster(1).count(), 1);
        assert_eq!(trace.for_cluster(9).count(), 0);
    }

    #[test]
    fn events_keep_capture_order() {
        let mut trace = Trace::new();
        for i in 0..5 {
            trace.record(
                SimTime::from_millis(100 - i),
                0,
                TraceEventKind::FailoverEnd,
            );
        }
        let times: Vec<u64> = trace.events().iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(times, vec![100, 99, 98, 97, 96]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut trace = Trace::new();
        trace.record(
            SimTime::from_millis(7),
            2,
            TraceEventKind::NodeDown { node: 0 },
        );
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}
