//! Downtime bookkeeping for the serial system.
//!
//! The system is down whenever **any** cluster is down (serial
//! composition). The accountant receives per-cluster up/down transitions
//! with timestamps and accumulates per-cluster and system-level downtime
//! exactly (interval arithmetic, no sampling).

use crate::time::{SimDuration, SimTime};
use crate::workload::OutageLog;

/// Exact downtime accumulator.
#[derive(Debug, Clone)]
pub struct DowntimeAccountant {
    cluster_down: Vec<bool>,
    cluster_down_since: Vec<SimTime>,
    cluster_downtime: Vec<SimDuration>,
    down_clusters: usize,
    system_down_since: SimTime,
    system_downtime: SimDuration,
    system_outages: u64,
    outage_log: Option<OutageLog>,
}

impl DowntimeAccountant {
    /// Creates an accountant for `clusters` clusters, all initially up.
    #[must_use]
    pub fn new(clusters: usize) -> Self {
        DowntimeAccountant {
            cluster_down: vec![false; clusters],
            cluster_down_since: vec![SimTime::ZERO; clusters],
            cluster_downtime: vec![SimDuration::ZERO; clusters],
            down_clusters: 0,
            system_down_since: SimTime::ZERO,
            system_downtime: SimDuration::ZERO,
            system_outages: 0,
            outage_log: None,
        }
    }

    /// Additionally records every system outage interval (for workload
    /// riders); costs one `(start, end)` pair per outage.
    #[must_use]
    pub fn with_outage_log(mut self) -> Self {
        self.outage_log = Some(OutageLog::new());
        self
    }

    /// Records that a cluster's down-state is `down` as of `now`.
    /// Idempotent for repeated identical states.
    pub fn set_cluster_state(&mut self, cluster: usize, down: bool, now: SimTime) {
        if self.cluster_down[cluster] == down {
            return;
        }
        if down {
            self.cluster_down[cluster] = true;
            self.cluster_down_since[cluster] = now;
            if self.down_clusters == 0 {
                self.system_down_since = now;
                self.system_outages += 1;
            }
            self.down_clusters += 1;
        } else {
            self.cluster_down[cluster] = false;
            self.cluster_downtime[cluster] += now.since(self.cluster_down_since[cluster]);
            self.down_clusters -= 1;
            if self.down_clusters == 0 {
                self.system_downtime += now.since(self.system_down_since);
                if let Some(log) = &mut self.outage_log {
                    log.push(self.system_down_since, now);
                }
            }
        }
    }

    /// Closes any open intervals at the horizon, finalizing the books.
    pub fn finalize(&mut self, horizon: SimTime) {
        for i in 0..self.cluster_down.len() {
            if self.cluster_down[i] {
                self.cluster_downtime[i] += horizon.since(self.cluster_down_since[i]);
                self.cluster_down_since[i] = horizon;
            }
        }
        if self.down_clusters > 0 {
            self.system_downtime += horizon.since(self.system_down_since);
            if let Some(log) = &mut self.outage_log {
                log.push(self.system_down_since, horizon);
            }
            self.system_down_since = horizon;
        }
    }

    /// The captured outage log, when enabled via [`Self::with_outage_log`].
    #[must_use]
    pub fn outage_log(&self) -> Option<&OutageLog> {
        self.outage_log.as_ref()
    }

    /// Takes ownership of the captured outage log, if any.
    #[must_use]
    pub fn take_outage_log(&mut self) -> Option<OutageLog> {
        self.outage_log.take()
    }

    /// Accumulated downtime of one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn cluster_downtime(&self, cluster: usize) -> SimDuration {
        self.cluster_downtime[cluster]
    }

    /// Accumulated downtime of the serial system (union of cluster
    /// outages).
    #[must_use]
    pub fn system_downtime(&self) -> SimDuration {
        self.system_downtime
    }

    /// Number of distinct system-level outage episodes.
    #[must_use]
    pub fn system_outages(&self) -> u64 {
        self.system_outages
    }

    /// Whether the system is currently down.
    #[must_use]
    pub fn system_is_down(&self) -> bool {
        self.down_clusters > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn single_cluster_accounting() {
        let mut a = DowntimeAccountant::new(1);
        a.set_cluster_state(0, true, t(100));
        a.set_cluster_state(0, false, t(350));
        assert_eq!(a.cluster_downtime(0).as_millis(), 250);
        assert_eq!(a.system_downtime().as_millis(), 250);
        assert_eq!(a.system_outages(), 1);
        assert!(!a.system_is_down());
    }

    #[test]
    fn overlapping_outages_union() {
        let mut a = DowntimeAccountant::new(2);
        // Cluster 0 down [100, 500); cluster 1 down [300, 700).
        a.set_cluster_state(0, true, t(100));
        a.set_cluster_state(1, true, t(300));
        a.set_cluster_state(0, false, t(500));
        a.set_cluster_state(1, false, t(700));
        assert_eq!(a.cluster_downtime(0).as_millis(), 400);
        assert_eq!(a.cluster_downtime(1).as_millis(), 400);
        // Union is [100, 700) = 600, not 800.
        assert_eq!(a.system_downtime().as_millis(), 600);
        assert_eq!(a.system_outages(), 1);
    }

    #[test]
    fn disjoint_outages_sum() {
        let mut a = DowntimeAccountant::new(2);
        a.set_cluster_state(0, true, t(100));
        a.set_cluster_state(0, false, t(200));
        a.set_cluster_state(1, true, t(500));
        a.set_cluster_state(1, false, t(800));
        assert_eq!(a.system_downtime().as_millis(), 400);
        assert_eq!(a.system_outages(), 2);
    }

    #[test]
    fn idempotent_state_sets() {
        let mut a = DowntimeAccountant::new(1);
        a.set_cluster_state(0, true, t(100));
        a.set_cluster_state(0, true, t(150)); // no-op
        a.set_cluster_state(0, false, t(200));
        a.set_cluster_state(0, false, t(250)); // no-op
        assert_eq!(a.cluster_downtime(0).as_millis(), 100);
    }

    #[test]
    fn finalize_closes_open_intervals() {
        let mut a = DowntimeAccountant::new(2);
        a.set_cluster_state(0, true, t(100));
        a.finalize(t(1000));
        assert_eq!(a.cluster_downtime(0).as_millis(), 900);
        assert_eq!(a.system_downtime().as_millis(), 900);
        assert!(a.system_is_down(), "state persists past finalize");
    }

    #[test]
    fn finalize_then_continue_does_not_double_count() {
        let mut a = DowntimeAccountant::new(1);
        a.set_cluster_state(0, true, t(100));
        a.finalize(t(500));
        // Continuing after finalize: the open interval restarts at the
        // horizon, so closing at 600 adds only 100 more.
        a.set_cluster_state(0, false, t(600));
        assert_eq!(a.cluster_downtime(0).as_millis(), 500);
    }

    #[test]
    fn nested_outage_of_three_clusters() {
        let mut a = DowntimeAccountant::new(3);
        a.set_cluster_state(0, true, t(0));
        a.set_cluster_state(1, true, t(10));
        a.set_cluster_state(2, true, t(20));
        a.set_cluster_state(1, false, t(30));
        a.set_cluster_state(2, false, t(40));
        a.set_cluster_state(0, false, t(100));
        assert_eq!(a.system_downtime().as_millis(), 100);
        assert_eq!(a.system_outages(), 1);
    }

    #[test]
    fn zero_length_interval() {
        let mut a = DowntimeAccountant::new(1);
        a.set_cluster_state(0, true, t(100));
        a.set_cluster_state(0, false, t(100));
        assert_eq!(a.cluster_downtime(0).as_millis(), 0);
        assert_eq!(a.system_outages(), 1);
    }
}
