//! Simulation clock: integer milliseconds for exact ordering.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};
use uptime_core::Minutes;

/// Milliseconds in one minute.
const MS_PER_MINUTE: f64 = 60_000.0;

/// Milliseconds in one (non-leap) year.
pub const MS_PER_YEAR: u64 = 525_600 * 60_000;

/// An instant on the simulation clock, in milliseconds since start.
///
/// Integer-valued so event ordering is exact and runs are reproducible.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant a number of minutes after the epoch.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        SimTime((minutes.max(0.0) * MS_PER_MINUTE).round() as u64)
    }

    /// Creates an instant a number of years after the epoch.
    #[must_use]
    pub fn from_years(years: f64) -> Self {
        SimTime((years.max(0.0) * MS_PER_YEAR as f64).round() as u64)
    }

    /// Raw milliseconds since the epoch.
    #[must_use]
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Minutes since the epoch.
    #[must_use]
    pub fn as_minutes(self) -> f64 {
        self.0 as f64 / MS_PER_MINUTE
    }

    /// Years since the epoch.
    #[must_use]
    pub fn as_years(self) -> f64 {
        self.0 as f64 / MS_PER_YEAR as f64
    }

    /// Duration since an earlier instant; saturates at zero.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}min", self.as_minutes())
    }
}

/// A span of simulation time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a span from fractional minutes (rounded to the millisecond).
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        SimDuration((minutes.max(0.0) * MS_PER_MINUTE).round() as u64)
    }

    /// Converts a model duration.
    #[must_use]
    pub fn from_model(minutes: Minutes) -> Self {
        SimDuration::from_minutes(minutes.value())
    }

    /// Raw milliseconds.
    #[must_use]
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// The span in fractional minutes.
    #[must_use]
    pub fn as_minutes(self) -> f64 {
        self.0 as f64 / MS_PER_MINUTE
    }

    /// The span as a fraction of another span (e.g. downtime / horizon).
    #[must_use]
    pub fn fraction_of(self, whole: SimDuration) -> f64 {
        if whole.0 == 0 {
            0.0
        } else {
            self.0 as f64 / whole.0 as f64
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}min", self.as_minutes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_minutes(6.0);
        assert_eq!(t.as_millis(), 360_000);
        assert!((t.as_minutes() - 6.0).abs() < 1e-12);

        let y = SimTime::from_years(1.0);
        assert_eq!(y.as_millis(), MS_PER_YEAR);
        assert!((y.as_years() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_inputs_clamp_to_zero() {
        assert_eq!(SimTime::from_minutes(-5.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_minutes(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_millis(100);
        let b = SimTime::from_millis(400);
        assert_eq!(b.since(a).as_millis(), 300);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(100);
        let b = SimDuration::from_millis(40);
        assert_eq!((a + b).as_millis(), 140);
        assert_eq!((a - b).as_millis(), 60);
        assert_eq!((b - a).as_millis(), 0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_millis(), 140);
    }

    #[test]
    fn fraction_of_handles_zero() {
        let d = SimDuration::from_millis(50);
        assert_eq!(d.fraction_of(SimDuration::ZERO), 0.0);
        assert!((d.fraction_of(SimDuration::from_millis(200)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_model_minutes() {
        let d = SimDuration::from_model(Minutes::from_seconds(30.0).unwrap());
        assert_eq!(d.as_millis(), 30_000);
    }

    #[test]
    fn time_ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_minutes(1.5).to_string(), "t+1.500min");
        assert_eq!(SimDuration::from_minutes(0.5).to_string(), "0.500min");
    }
}
