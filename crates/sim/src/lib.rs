//! # uptime-sim
//!
//! A discrete-event simulator of the cloud infrastructure the paper's model
//! abstracts: nodes that fail and repair as alternating renewal processes,
//! k-redundant clusters with hot/warm/cold standby promotion windows, and a
//! serial system whose downtime is the union of cluster outages.
//!
//! The paper evaluated its model analytically against one deployment on IBM
//! SoftLayer; it never validated the probabilistic model against observed
//! behaviour. This crate closes that gap (experiment V1 in DESIGN.md):
//! simulate the same `(K, K̂, P, f, t)` parameters for thousands of years
//! and check that observed availability matches Eqs. 1–4.
//!
//! Per-node failure dynamics derive from the paper's `(P, f)` via
//! [`uptime_core::FailureDynamics`]: exponential time-to-failure with mean
//! `MTBF = (1−P)·δ/f` and exponential repair with mean `MTTR = P·δ/f`.
//!
//! # Quick example
//!
//! ```
//! use uptime_core::{ClusterSpec, Probability, SystemSpec};
//! use uptime_sim::{SimConfig, Simulation};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = SystemSpec::builder()
//!     .cluster(ClusterSpec::singleton("web", Probability::new(0.02)?, 2.0)?)
//!     .build()?;
//! let report = Simulation::new(&system, SimConfig::years(50.0).with_seed(7))?.run();
//! // Observed availability hovers around the analytic 98 %.
//! assert!((report.availability().value() - 0.98).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountant;
pub mod cluster;
pub mod composition;
pub mod correlated;
pub mod crews;
pub mod error;
pub mod events;
pub mod inject;
pub mod monte_carlo;
pub mod report;
pub mod rng;
pub mod system;
pub mod time;
pub mod trace;
pub mod workload;

pub use accountant::DowntimeAccountant;
pub use cluster::{ClusterSim, ClusterStatus};
pub use composition::CompositionSimulation;
pub use correlated::{CommonCause, CorrelatedSimulation, SharedDomain};
pub use crews::CrewSimulation;
pub use error::SimError;
pub use inject::{FailureScript, ScriptedOutage};
pub use monte_carlo::{MonteCarloEstimate, MonteCarloRunner};
pub use report::{ClusterReport, SimReport};
pub use system::{SimConfig, Simulation};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent, TraceEventKind};
pub use workload::{OutageLog, RequestWorkload, WorkloadReport};
