//! Correlated (common-cause) failure simulation.
//!
//! Eq. 2 of the paper assumes node failures are **independent**; §IV's
//! threats-to-validity hints this may not hold in real estates, where a
//! rack power event or a zone outage fells several nodes of a cluster at
//! once. This module simulates exactly that: on top of each node's
//! independent renewal process, a Poisson stream of *common-cause events*
//! knocks out up to `blast_radius` currently-up nodes of a cluster
//! simultaneously.
//!
//! Comparing this simulator's observed availability against the analytic
//! `U_s` quantifies how optimistic the independence assumption is
//! (experiment T1 in EXPERIMENTS.md).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};
use uptime_core::{FailureDynamics, SystemSpec};

use crate::accountant::DowntimeAccountant;
use crate::cluster::{ClusterSim, FailureOutcome};
use crate::error::SimError;
use crate::report::{ClusterReport, SimReport};
use crate::rng::ExpSampler;
use crate::time::{SimDuration, SimTime};

/// Common-cause failure behaviour for one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommonCause {
    /// Events per year striking the cluster.
    pub rate_per_year: f64,
    /// Up-nodes knocked out per event (clamped to the available up count).
    pub blast_radius: u32,
    /// Mean repair time, in minutes, for nodes downed by an event.
    pub mttr_minutes: f64,
}

impl CommonCause {
    /// No common-cause failures at all.
    pub const NONE: CommonCause = CommonCause {
        rate_per_year: 0.0,
        blast_radius: 0,
        mttr_minutes: 0.0,
    };
}

/// A *shared failure domain*: infrastructure whose outage fells every
/// member cluster at once — a zone's power feed, a region's network
/// fabric, a global control plane.
///
/// The domain alternates exponentially-distributed up periods (mean
/// `525 600 / rate_per_year` minutes) and down periods (mean
/// `mttr_minutes`), independently of every node's renewal process. While
/// it is down, each cluster named in `members` is forced down regardless
/// of its own node states. [`crate::composition::CompositionSimulation`]
/// consumes these to cross-validate the optimizer's archetype spaces,
/// which model the same domains analytically as degenerate singleton
/// leaves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedDomain {
    /// Domain label (reporting only).
    pub name: String,
    /// Outages per year of domain uptime (0 disables the domain).
    pub rate_per_year: f64,
    /// Mean outage duration, in minutes.
    pub mttr_minutes: f64,
    /// Names of the clusters this domain takes down with it.
    pub members: Vec<String>,
}

impl SharedDomain {
    /// Mean up period in minutes (`525 600 / rate_per_year`); infinite
    /// when the rate is zero.
    #[must_use]
    pub fn mtbf_minutes(&self) -> f64 {
        if self.rate_per_year <= 0.0 {
            f64::INFINITY
        } else {
            525_600.0 / self.rate_per_year
        }
    }

    /// Long-run availability of the domain itself:
    /// `MTBF / (MTBF + MTTR)` by the renewal-reward theorem — the exact
    /// factor the alternating-renewal simulation converges to.
    #[must_use]
    pub fn availability(&self) -> uptime_core::Probability {
        let mtbf = self.mtbf_minutes();
        if mtbf.is_infinite() {
            return uptime_core::Probability::saturating(1.0);
        }
        uptime_core::Probability::saturating(mtbf / (mtbf + self.mttr_minutes.max(0.0)))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Natural (independent) failure of one node. Stale generations are
    /// dropped: a common-cause strike bumps the node's generation.
    NodeFailed {
        cluster: usize,
        node: usize,
        gen: u64,
    },
    NodeRepaired {
        cluster: usize,
        node: usize,
        gen: u64,
    },
    FailoverEnded {
        cluster: usize,
        token: u64,
    },
    CommonCause {
        cluster: usize,
    },
    Horizon,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: Kind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A simulation with per-cluster common-cause failure streams layered on
/// the independent node renewal processes.
///
/// # Examples
///
/// ```
/// use uptime_core::{ClusterSpec, FailuresPerYear, Minutes, Probability, SystemSpec};
/// use uptime_sim::correlated::{CommonCause, CorrelatedSimulation};
/// use uptime_sim::SimDuration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = SystemSpec::builder()
///     .cluster(
///         ClusterSpec::builder("storage")
///             .total_nodes(2)
///             .standby_budget(1)
///             .node_down_probability(Probability::new(0.05)?)
///             .failures_per_year(FailuresPerYear::new(2.0)?)
///             .failover_time(Minutes::from_seconds(30.0)?)
///             .build()?,
///     )
///     .build()?;
/// // A "rack event" twice a year takes out both mirrors for ~2 hours.
/// let report = CorrelatedSimulation::new(
///     &system,
///     vec![CommonCause { rate_per_year: 2.0, blast_radius: 2, mttr_minutes: 120.0 }],
///     SimDuration::from_minutes(200.0 * 525_600.0),
///     1,
/// )?
/// .run();
/// // Independent model says 99.75 % — correlation drags it lower.
/// assert!(report.availability().value() < 0.9975);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CorrelatedSimulation {
    clusters: Vec<ClusterSim>,
    node_dynamics: Vec<(f64, f64)>, // (mtbf_ms, mttr_ms) per cluster
    common: Vec<CommonCause>,
    horizon: SimDuration,
    seed: u64,
}

impl CorrelatedSimulation {
    /// Prepares a correlated simulation. `common` must have one entry per
    /// cluster (use [`CommonCause::NONE`] for unaffected clusters).
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyHorizon`] for a zero horizon.
    /// * [`SimError::InvalidDynamics`] for unusable `(P, f)` pairs or
    ///   mismatched `common` arity.
    pub fn new(
        system: &SystemSpec,
        common: Vec<CommonCause>,
        horizon: SimDuration,
        seed: u64,
    ) -> Result<Self, SimError> {
        if horizon == SimDuration::ZERO {
            return Err(SimError::EmptyHorizon);
        }
        if common.len() != system.len() {
            return Err(SimError::InvalidDynamics {
                cluster: format!(
                    "common-cause arity {} != cluster count {}",
                    common.len(),
                    system.len()
                ),
                source: uptime_core::ModelError::EmptySystem,
            });
        }
        let mut clusters = Vec::with_capacity(system.len());
        let mut node_dynamics = Vec::with_capacity(system.len());
        for spec in system.clusters() {
            let dyn_ = FailureDynamics::from_paper_params(
                spec.node_down_probability(),
                spec.failures_per_year(),
            )
            .map_err(|source| SimError::InvalidDynamics {
                cluster: spec.name().to_owned(),
                source,
            })?;
            clusters.push(ClusterSim::new(
                spec.name(),
                spec.total_nodes(),
                spec.active_nodes(),
                SimDuration::from_model(spec.failover_time()),
            ));
            node_dynamics.push((
                dyn_.mtbf().as_minutes().value() * 60_000.0,
                dyn_.mttr().as_minutes().value() * 60_000.0,
            ));
        }
        Ok(CorrelatedSimulation {
            clusters,
            node_dynamics,
            common,
            horizon,
            seed,
        })
    }

    /// Runs the event loop to the horizon.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        let horizon_time = SimTime::ZERO + self.horizon;
        let mut sampler = ExpSampler::seed_from_u64(self.seed);
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut schedule = |heap: &mut BinaryHeap<Event>, at: SimTime, kind: Kind| {
            heap.push(Event { at, seq, kind });
            seq += 1;
        };

        // Generation per node: bumped whenever a common-cause strike
        // overrides the node's natural renewal chain.
        let mut gens: Vec<Vec<u64>> = self
            .clusters
            .iter()
            .map(|c| vec![0; c.total_nodes() as usize])
            .collect();

        schedule(&mut heap, horizon_time, Kind::Horizon);
        for (ci, cluster) in self.clusters.iter().enumerate() {
            for node in 0..cluster.total_nodes() as usize {
                let ttf = sampler.sample_exponential_ms(self.node_dynamics[ci].0);
                schedule(
                    &mut heap,
                    SimTime::ZERO + ttf,
                    Kind::NodeFailed {
                        cluster: ci,
                        node,
                        gen: 0,
                    },
                );
            }
            let cc = self.common[ci];
            if cc.rate_per_year > 0.0 && cc.blast_radius > 0 {
                let mean_ms = 525_600.0 * 60_000.0 / cc.rate_per_year;
                let gap = sampler.sample_exponential_ms(mean_ms);
                schedule(
                    &mut heap,
                    SimTime::ZERO + gap,
                    Kind::CommonCause { cluster: ci },
                );
            }
        }

        let mut accountant = DowntimeAccountant::new(self.clusters.len());
        while let Some(event) = heap.pop() {
            let now = event.at;
            match event.kind {
                Kind::Horizon => break,
                Kind::NodeFailed {
                    cluster: ci,
                    node,
                    gen,
                } => {
                    if gens[ci][node] != gen || !self.clusters[ci].node_is_up(node) {
                        continue; // superseded by a common-cause strike
                    }
                    let outcome = self.clusters[ci].node_failed(node, now);
                    if let FailureOutcome::FailoverStarted { until, token } = outcome {
                        schedule(&mut heap, until, Kind::FailoverEnded { cluster: ci, token });
                    }
                    let ttr = sampler.sample_exponential_ms(self.node_dynamics[ci].1.max(1.0));
                    schedule(
                        &mut heap,
                        now + ttr,
                        Kind::NodeRepaired {
                            cluster: ci,
                            node,
                            gen,
                        },
                    );
                    accountant.set_cluster_state(ci, self.clusters[ci].is_down(), now);
                }
                Kind::NodeRepaired {
                    cluster: ci,
                    node,
                    gen,
                } => {
                    if gens[ci][node] != gen || self.clusters[ci].node_is_up(node) {
                        continue;
                    }
                    self.clusters[ci].node_repaired(node, now);
                    let ttf = sampler.sample_exponential_ms(self.node_dynamics[ci].0);
                    schedule(
                        &mut heap,
                        now + ttf,
                        Kind::NodeFailed {
                            cluster: ci,
                            node,
                            gen,
                        },
                    );
                    accountant.set_cluster_state(ci, self.clusters[ci].is_down(), now);
                }
                Kind::FailoverEnded { cluster: ci, token } => {
                    self.clusters[ci].failover_ended(token, now);
                    accountant.set_cluster_state(ci, self.clusters[ci].is_down(), now);
                }
                Kind::CommonCause { cluster: ci } => {
                    let cc = self.common[ci];
                    // Strike up to blast_radius currently-up nodes (lowest
                    // indices first — a "rack" of adjacent nodes).
                    let victims: Vec<usize> = (0..self.clusters[ci].total_nodes() as usize)
                        .filter(|&n| self.clusters[ci].node_is_up(n))
                        .take(cc.blast_radius as usize)
                        .collect();
                    for node in victims {
                        // Supersede the node's natural chain.
                        gens[ci][node] += 1;
                        let gen = gens[ci][node];
                        let outcome = self.clusters[ci].node_failed(node, now);
                        if let FailureOutcome::FailoverStarted { until, token } = outcome {
                            schedule(&mut heap, until, Kind::FailoverEnded { cluster: ci, token });
                        }
                        let ttr =
                            sampler.sample_exponential_ms((cc.mttr_minutes * 60_000.0).max(1.0));
                        schedule(
                            &mut heap,
                            now + ttr,
                            Kind::NodeRepaired {
                                cluster: ci,
                                node,
                                gen,
                            },
                        );
                    }
                    accountant.set_cluster_state(ci, self.clusters[ci].is_down(), now);
                    // Next strike.
                    let mean_ms = 525_600.0 * 60_000.0 / cc.rate_per_year;
                    let gap = sampler.sample_exponential_ms(mean_ms);
                    schedule(&mut heap, now + gap, Kind::CommonCause { cluster: ci });
                }
            }
        }
        accountant.finalize(horizon_time);

        let clusters = self
            .clusters
            .iter()
            .enumerate()
            .map(|(i, c)| ClusterReport {
                name: c.name().to_owned(),
                downtime: accountant.cluster_downtime(i),
                failover_windows: c.failover_windows(),
                breakdowns: c.breakdowns(),
            })
            .collect();
        SimReport::new(
            self.horizon,
            accountant.system_downtime(),
            accountant.system_outages(),
            clusters,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_core::{ClusterSpec, FailuresPerYear, Minutes, Probability};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn raid_system() -> SystemSpec {
        SystemSpec::builder()
            .cluster(
                ClusterSpec::builder("storage")
                    .total_nodes(2)
                    .standby_budget(1)
                    .node_down_probability(p(0.05))
                    .failures_per_year(FailuresPerYear::new(2.0).unwrap())
                    .failover_time(Minutes::from_seconds(30.0).unwrap())
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap()
    }

    fn years(y: f64) -> SimDuration {
        SimDuration::from_minutes(y * 525_600.0)
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = CorrelatedSimulation::new(&raid_system(), vec![], years(1.0), 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidDynamics { .. }));
    }

    #[test]
    fn zero_horizon_rejected() {
        let err = CorrelatedSimulation::new(
            &raid_system(),
            vec![CommonCause::NONE],
            SimDuration::ZERO,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::EmptyHorizon));
    }

    #[test]
    fn without_common_cause_matches_independent_model() {
        let system = raid_system();
        let analytic = system.uptime().availability().value();
        let report = CorrelatedSimulation::new(&system, vec![CommonCause::NONE], years(400.0), 3)
            .unwrap()
            .run();
        assert!(
            (report.availability().value() - analytic).abs() < 0.002,
            "observed {} vs analytic {analytic}",
            report.availability()
        );
    }

    #[test]
    fn common_cause_degrades_availability_below_model() {
        let system = raid_system();
        let analytic = system.uptime().availability().value();
        // 4 rack events/year, both mirrors out for ~4 hours each.
        let report = CorrelatedSimulation::new(
            &system,
            vec![CommonCause {
                rate_per_year: 4.0,
                blast_radius: 2,
                mttr_minutes: 240.0,
            }],
            years(300.0),
            4,
        )
        .unwrap()
        .run();
        // Each strike downs both mirrors; the pair recovers at the first
        // of two Exp(4 h) repairs (mean 2 h), so correlated downtime adds
        // ≈ 4 × 2 h = 8 h/yr ≈ 0.09 % that the independent model misses.
        let observed = report.availability().value();
        assert!(
            analytic - observed > 0.0005,
            "independence assumption must be visibly optimistic: analytic {analytic}, observed {observed}"
        );
        assert!(
            report.clusters()[0].breakdowns > 100,
            "strikes break the pair"
        );
    }

    #[test]
    fn blast_radius_one_behaves_like_extra_failure_rate() {
        // A single-node blast with the node's own MTTR is just extra f.
        let system = raid_system();
        let report = CorrelatedSimulation::new(
            &system,
            vec![CommonCause {
                rate_per_year: 2.0,
                blast_radius: 1,
                mttr_minutes: 60.0,
            }],
            years(200.0),
            5,
        )
        .unwrap()
        .run();
        // More failovers than the baseline 2/yr stream alone.
        let rate = report.clusters()[0].failover_windows as f64 / 200.0;
        assert!(rate > 2.0, "got {rate}/yr");
    }

    #[test]
    fn deterministic_given_seed() {
        let system = raid_system();
        let cc = vec![CommonCause {
            rate_per_year: 1.0,
            blast_radius: 2,
            mttr_minutes: 30.0,
        }];
        let a = CorrelatedSimulation::new(&system, cc.clone(), years(50.0), 9)
            .unwrap()
            .run();
        let b = CorrelatedSimulation::new(&system, cc, years(50.0), 9)
            .unwrap()
            .run();
        assert_eq!(a, b);
    }

    #[test]
    fn multi_cluster_with_mixed_configs() {
        let system = SystemSpec::builder()
            .cluster(ClusterSpec::singleton("web", p(0.01), 1.0).unwrap())
            .cluster(
                ClusterSpec::builder("storage")
                    .total_nodes(3)
                    .standby_budget(1)
                    .node_down_probability(p(0.02))
                    .failures_per_year(FailuresPerYear::new(2.0).unwrap())
                    .failover_time(Minutes::new(1.0).unwrap())
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        let report = CorrelatedSimulation::new(
            &system,
            vec![
                CommonCause::NONE,
                CommonCause {
                    rate_per_year: 2.0,
                    blast_radius: 3,
                    mttr_minutes: 60.0,
                },
            ],
            years(100.0),
            11,
        )
        .unwrap()
        .run();
        assert!(report.availability().value() < 1.0);
        assert!(report.clusters()[1].breakdowns > 0);
    }
}
