//! Simulation results.

use serde::{Deserialize, Serialize};
use uptime_core::Probability;

use crate::time::SimDuration;

/// Per-cluster observation summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Cluster display name.
    pub name: String,
    /// Total time the cluster was unavailable (breakdown + failover).
    pub downtime: SimDuration,
    /// Failover windows opened.
    pub failover_windows: u64,
    /// Breakdown episodes entered.
    pub breakdowns: u64,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimReport {
    horizon: SimDuration,
    system_downtime: SimDuration,
    system_outages: u64,
    clusters: Vec<ClusterReport>,
}

impl SimReport {
    /// Assembles a report.
    #[must_use]
    pub fn new(
        horizon: SimDuration,
        system_downtime: SimDuration,
        system_outages: u64,
        clusters: Vec<ClusterReport>,
    ) -> Self {
        SimReport {
            horizon,
            system_downtime,
            system_outages,
            clusters,
        }
    }

    /// The simulated horizon.
    #[must_use]
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// Total system downtime (union of cluster outages).
    #[must_use]
    pub fn system_downtime(&self) -> SimDuration {
        self.system_downtime
    }

    /// Number of distinct system outage episodes.
    #[must_use]
    pub fn system_outages(&self) -> u64 {
        self.system_outages
    }

    /// Per-cluster summaries, in serial order.
    #[must_use]
    pub fn clusters(&self) -> &[ClusterReport] {
        &self.clusters
    }

    /// Observed system availability `1 − downtime/horizon`.
    #[must_use]
    pub fn availability(&self) -> Probability {
        Probability::saturating(1.0 - self.system_downtime.fraction_of(self.horizon))
    }

    /// Observed availability of one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn cluster_availability(&self, cluster: usize) -> Probability {
        Probability::saturating(1.0 - self.clusters[cluster].downtime.fraction_of(self.horizon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport::new(
            SimDuration::from_millis(1_000),
            SimDuration::from_millis(20),
            3,
            vec![
                ClusterReport {
                    name: "a".into(),
                    downtime: SimDuration::from_millis(15),
                    failover_windows: 2,
                    breakdowns: 1,
                },
                ClusterReport {
                    name: "b".into(),
                    downtime: SimDuration::from_millis(10),
                    failover_windows: 0,
                    breakdowns: 1,
                },
            ],
        )
    }

    #[test]
    fn availability_arithmetic() {
        let r = report();
        assert!((r.availability().value() - 0.98).abs() < 1e-12);
        assert!((r.cluster_availability(0).value() - 0.985).abs() < 1e-12);
        assert!((r.cluster_availability(1).value() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn accessors() {
        let r = report();
        assert_eq!(r.horizon().as_millis(), 1_000);
        assert_eq!(r.system_downtime().as_millis(), 20);
        assert_eq!(r.system_outages(), 3);
        assert_eq!(r.clusters().len(), 2);
        assert_eq!(r.clusters()[0].failover_windows, 2);
    }

    #[test]
    fn zero_horizon_reads_as_fully_available() {
        let r = SimReport::new(SimDuration::ZERO, SimDuration::ZERO, 0, vec![]);
        assert_eq!(r.availability().value(), 1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
