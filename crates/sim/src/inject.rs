//! Deterministic failure injection.
//!
//! Instead of stochastic renewal processes, a [`FailureScript`] drives the
//! exact same cluster state machines with hand-written outages. Used by
//! tests to pin down corner-case behaviour (cascades, overlapping windows,
//! breakdown recovery) and by the broker's audit examples.

use serde::{Deserialize, Serialize};
use uptime_core::SystemSpec;

use crate::accountant::DowntimeAccountant;
use crate::cluster::{ClusterSim, FailureOutcome};
use crate::error::SimError;
use crate::events::{EventKind, EventQueue};
use crate::report::{ClusterReport, SimReport};
use crate::time::{SimDuration, SimTime};

/// One scripted node outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptedOutage {
    /// Cluster index within the system.
    pub cluster: usize,
    /// Node index within the cluster.
    pub node: usize,
    /// When the node goes down.
    pub start: SimTime,
    /// How long it stays down.
    pub duration: SimDuration,
}

impl ScriptedOutage {
    /// When the node comes back.
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// A deterministic outage schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureScript {
    outages: Vec<ScriptedOutage>,
}

impl FailureScript {
    /// Creates an empty script.
    #[must_use]
    pub fn new() -> Self {
        FailureScript::default()
    }

    /// Adds an outage.
    #[must_use]
    pub fn outage(
        mut self,
        cluster: usize,
        node: usize,
        start: SimTime,
        duration: SimDuration,
    ) -> Self {
        self.outages.push(ScriptedOutage {
            cluster,
            node,
            start,
            duration,
        });
        self
    }

    /// The scripted outages, in insertion order.
    #[must_use]
    pub fn outages(&self) -> &[ScriptedOutage] {
        &self.outages
    }

    /// Replays the script against the system's cluster shapes over the
    /// given horizon, returning the observed report.
    ///
    /// The stochastic parameters (`P`, `f`) of the system are ignored —
    /// only `K`, `K̂` and `t` matter here.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyHorizon`] for a zero horizon.
    /// * [`SimError::UnknownScriptTarget`] for out-of-range indices.
    /// * [`SimError::ScriptOverlap`] when two outages of the same node
    ///   overlap (a node cannot fail while already down).
    pub fn run(&self, system: &SystemSpec, horizon: SimDuration) -> Result<SimReport, SimError> {
        self.run_core(system, horizon)
    }

    /// [`run`](Self::run) with observability: the identical replay wrapped
    /// in a `sim.replay` span, flushing `sim.replay.scripted_outages` and
    /// `sim.replay.system_outages` once at the end.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_recorded(
        &self,
        system: &SystemSpec,
        horizon: SimDuration,
        rec: &dyn uptime_obs::Recorder,
    ) -> Result<SimReport, SimError> {
        let _span = uptime_obs::span!(rec, "sim.replay");
        let report = self.run_core(system, horizon)?;
        rec.counter_add("sim.replay.scripted_outages", self.outages.len() as u64);
        rec.counter_add("sim.replay.system_outages", report.system_outages());
        Ok(report)
    }

    fn run_core(&self, system: &SystemSpec, horizon: SimDuration) -> Result<SimReport, SimError> {
        if horizon == SimDuration::ZERO {
            return Err(SimError::EmptyHorizon);
        }
        // Validate targets and overlaps.
        for o in &self.outages {
            let cluster =
                system
                    .clusters()
                    .get(o.cluster)
                    .ok_or(SimError::UnknownScriptTarget {
                        cluster: o.cluster,
                        node: o.node,
                    })?;
            if o.node >= cluster.total_nodes() as usize {
                return Err(SimError::UnknownScriptTarget {
                    cluster: o.cluster,
                    node: o.node,
                });
            }
        }
        let mut per_node: Vec<ScriptedOutage> = self.outages.clone();
        per_node.sort_by_key(|o| (o.cluster, o.node, o.start));
        for w in per_node.windows(2) {
            if w[0].cluster == w[1].cluster && w[0].node == w[1].node && w[1].start < w[0].end() {
                return Err(SimError::ScriptOverlap {
                    cluster: w[0].cluster,
                    node: w[0].node,
                });
            }
        }

        let mut clusters: Vec<ClusterSim> = system
            .clusters()
            .iter()
            .map(|spec| {
                ClusterSim::new(
                    spec.name(),
                    spec.total_nodes(),
                    spec.active_nodes(),
                    SimDuration::from_model(spec.failover_time()),
                )
            })
            .collect();

        let horizon_time = SimTime::ZERO + horizon;
        let mut queue = EventQueue::new();
        queue.schedule(horizon_time, EventKind::HorizonReached);
        // Schedule from the sorted copy, not insertion order: when one
        // node's outages abut (end == next start), the repair and the next
        // failure share a timestamp and the queue breaks the tie FIFO —
        // insertion order could enqueue the failure first and double-fail
        // the node.
        for o in &per_node {
            if o.start >= horizon_time {
                continue;
            }
            queue.schedule(
                o.start,
                EventKind::NodeFailed {
                    cluster: o.cluster,
                    node: o.node,
                },
            );
            queue.schedule(
                o.end(),
                EventKind::NodeRepaired {
                    cluster: o.cluster,
                    node: o.node,
                },
            );
        }

        let mut accountant = DowntimeAccountant::new(clusters.len());
        while let Some(event) = queue.pop() {
            let now = event.at;
            match event.kind {
                EventKind::HorizonReached => break,
                EventKind::NodeFailed { cluster: ci, node } => {
                    let outcome = clusters[ci].node_failed(node, now);
                    if let FailureOutcome::FailoverStarted { until, token } = outcome {
                        queue.schedule(until, EventKind::FailoverEnded { cluster: ci, token });
                    }
                    accountant.set_cluster_state(ci, clusters[ci].is_down(), now);
                }
                EventKind::NodeRepaired { cluster: ci, node } => {
                    clusters[ci].node_repaired(node, now);
                    accountant.set_cluster_state(ci, clusters[ci].is_down(), now);
                }
                EventKind::FailoverEnded { cluster: ci, token } => {
                    clusters[ci].failover_ended(token, now);
                    accountant.set_cluster_state(ci, clusters[ci].is_down(), now);
                }
            }
        }
        accountant.finalize(horizon_time);

        let cluster_reports = clusters
            .iter()
            .enumerate()
            .map(|(i, c)| ClusterReport {
                name: c.name().to_owned(),
                downtime: accountant.cluster_downtime(i),
                failover_windows: c.failover_windows(),
                breakdowns: c.breakdowns(),
            })
            .collect();
        Ok(SimReport::new(
            horizon,
            accountant.system_downtime(),
            accountant.system_outages(),
            cluster_reports,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_core::{ClusterSpec, FailuresPerYear, Minutes, Probability};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn system() -> SystemSpec {
        SystemSpec::builder()
            .cluster(ClusterSpec::singleton("web", p(0.01), 1.0).unwrap())
            .cluster(
                ClusterSpec::builder("storage")
                    .total_nodes(2)
                    .standby_budget(1)
                    .node_down_probability(p(0.05))
                    .failures_per_year(FailuresPerYear::new(2.0).unwrap())
                    .failover_time(Minutes::new(2.0).unwrap())
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap()
    }

    fn minutes(m: f64) -> SimDuration {
        SimDuration::from_minutes(m)
    }

    fn at(m: f64) -> SimTime {
        SimTime::from_minutes(m)
    }

    #[test]
    fn singleton_outage_counts_fully() {
        let report = FailureScript::new()
            .outage(0, 0, at(10.0), minutes(30.0))
            .run(&system(), minutes(1000.0))
            .unwrap();
        assert_eq!(report.system_downtime(), minutes(30.0));
        assert_eq!(report.clusters()[0].downtime, minutes(30.0));
        assert_eq!(report.clusters()[0].breakdowns, 1);
        assert_eq!(report.system_outages(), 1);
    }

    #[test]
    fn redundant_cluster_absorbs_single_outage_with_failover_blip() {
        // Active node of the 1+1 storage cluster fails for an hour:
        // only the 2-minute failover window is service-visible.
        let report = FailureScript::new()
            .outage(1, 0, at(10.0), minutes(60.0))
            .run(&system(), minutes(1000.0))
            .unwrap();
        assert_eq!(report.clusters()[1].downtime, minutes(2.0));
        assert_eq!(report.clusters()[1].failover_windows, 1);
        assert_eq!(report.clusters()[1].breakdowns, 0);
        assert_eq!(report.system_downtime(), minutes(2.0));
    }

    #[test]
    fn standby_outage_is_invisible() {
        let report = FailureScript::new()
            .outage(1, 1, at(10.0), minutes(60.0))
            .run(&system(), minutes(1000.0))
            .unwrap();
        assert_eq!(report.system_downtime(), SimDuration::ZERO);
        assert_eq!(report.availability().value(), 1.0);
    }

    #[test]
    fn double_outage_breaks_redundant_cluster() {
        // Both storage nodes down [20, 50): failover window [10, 12) from
        // the first failure, breakdown [20, 50).
        let report = FailureScript::new()
            .outage(1, 0, at(10.0), minutes(100.0))
            .outage(1, 1, at(20.0), minutes(30.0))
            .run(&system(), minutes(1000.0))
            .unwrap();
        assert_eq!(report.clusters()[1].breakdowns, 1);
        // Downtime: 2 min failover + 30 min breakdown.
        assert_eq!(report.clusters()[1].downtime, minutes(32.0));
    }

    #[test]
    fn simultaneous_cross_cluster_outages_union() {
        let report = FailureScript::new()
            .outage(0, 0, at(10.0), minutes(20.0)) // web down [10, 30)
            .outage(1, 0, at(25.0), minutes(100.0)) // storage failover [25, 27)
            .run(&system(), minutes(1000.0))
            .unwrap();
        // Union: [10, 30) = 20 min (the failover blip is inside it).
        assert_eq!(report.system_downtime(), minutes(20.0));
        assert_eq!(report.system_outages(), 1);
    }

    #[test]
    fn outage_crossing_horizon_is_clipped() {
        let report = FailureScript::new()
            .outage(0, 0, at(90.0), minutes(100.0))
            .run(&system(), minutes(100.0))
            .unwrap();
        assert_eq!(report.system_downtime(), minutes(10.0));
    }

    #[test]
    fn outage_after_horizon_ignored() {
        let report = FailureScript::new()
            .outage(0, 0, at(500.0), minutes(10.0))
            .run(&system(), minutes(100.0))
            .unwrap();
        assert_eq!(report.system_downtime(), SimDuration::ZERO);
    }

    #[test]
    fn validation_errors() {
        let sys = system();
        assert!(matches!(
            FailureScript::new()
                .outage(5, 0, at(1.0), minutes(1.0))
                .run(&sys, minutes(10.0)),
            Err(SimError::UnknownScriptTarget { cluster: 5, .. })
        ));
        assert!(matches!(
            FailureScript::new()
                .outage(1, 7, at(1.0), minutes(1.0))
                .run(&sys, minutes(10.0)),
            Err(SimError::UnknownScriptTarget { node: 7, .. })
        ));
        assert!(matches!(
            FailureScript::new()
                .outage(0, 0, at(1.0), minutes(10.0))
                .outage(0, 0, at(5.0), minutes(10.0))
                .run(&sys, minutes(100.0)),
            Err(SimError::ScriptOverlap { .. })
        ));
        assert!(matches!(
            FailureScript::new().run(&sys, SimDuration::ZERO),
            Err(SimError::EmptyHorizon)
        ));
    }

    #[test]
    fn back_to_back_outages_allowed() {
        // End of first == start of second: no overlap.
        let report = FailureScript::new()
            .outage(0, 0, at(10.0), minutes(5.0))
            .outage(0, 0, at(15.0), minutes(5.0))
            .run(&system(), minutes(100.0))
            .unwrap();
        assert_eq!(report.system_downtime(), minutes(10.0));
    }

    #[test]
    fn back_to_back_outages_allowed_in_any_insertion_order() {
        // Regression: the later outage inserted first. Scheduling used to
        // follow insertion order, so NodeFailed@15 got a lower queue
        // sequence than NodeRepaired@15 and the replay panicked with
        // "failed while already down". Results must not depend on
        // insertion order at all.
        let reversed = FailureScript::new()
            .outage(0, 0, at(15.0), minutes(5.0))
            .outage(0, 0, at(10.0), minutes(5.0))
            .run(&system(), minutes(100.0))
            .unwrap();
        assert_eq!(reversed.system_downtime(), minutes(10.0));

        let forward = FailureScript::new()
            .outage(0, 0, at(10.0), minutes(5.0))
            .outage(0, 0, at(15.0), minutes(5.0))
            .run(&system(), minutes(100.0))
            .unwrap();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn three_abutting_outages_reversed_still_replay() {
        // A longer abutting chain inserted fully reversed, on the
        // redundant cluster for good measure.
        let report = FailureScript::new()
            .outage(1, 0, at(30.0), minutes(10.0))
            .outage(1, 0, at(20.0), minutes(10.0))
            .outage(1, 0, at(10.0), minutes(10.0))
            .run(&system(), minutes(100.0))
            .unwrap();
        // One continuous [10, 40) outage of the active node: a single
        // 2-minute failover window is all the service sees.
        assert_eq!(report.clusters()[1].failover_windows, 1);
        assert_eq!(report.system_downtime(), minutes(2.0));
    }

    #[test]
    fn overlap_detected_regardless_of_insertion_order() {
        // The overlap validator must also be insertion-order independent.
        assert!(matches!(
            FailureScript::new()
                .outage(0, 0, at(5.0), minutes(10.0))
                .outage(0, 0, at(1.0), minutes(10.0))
                .run(&system(), minutes(100.0)),
            Err(SimError::ScriptOverlap {
                cluster: 0,
                node: 0
            })
        ));
    }

    #[test]
    fn empty_script_is_perfect_uptime() {
        let report = FailureScript::new().run(&system(), minutes(100.0)).unwrap();
        assert_eq!(report.availability().value(), 1.0);
        assert!(FailureScript::new().outages().is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let script = FailureScript::new().outage(1, 0, at(3.0), minutes(4.0));
        let json = serde_json::to_string(&script).unwrap();
        let back: FailureScript = serde_json::from_str(&json).unwrap();
        assert_eq!(back, script);
    }
}
