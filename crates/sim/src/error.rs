//! Simulator error types.

use std::fmt;

/// Errors raised while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A cluster's `(P, f)` pair cannot be turned into failure dynamics.
    InvalidDynamics {
        /// Cluster name.
        cluster: String,
        /// Underlying model error.
        source: uptime_core::ModelError,
    },
    /// The requested horizon is zero.
    EmptyHorizon,
    /// A scripted outage references a node that does not exist.
    UnknownScriptTarget {
        /// Cluster index referenced.
        cluster: usize,
        /// Node index referenced.
        node: usize,
    },
    /// Two scripted outages for the same node overlap in time.
    ScriptOverlap {
        /// Cluster index.
        cluster: usize,
        /// Node index.
        node: usize,
    },
    /// Monte-Carlo was asked for zero trials.
    NoTrials,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidDynamics { cluster, source } => {
                write!(
                    f,
                    "cluster `{cluster}` has unusable failure dynamics: {source}"
                )
            }
            SimError::EmptyHorizon => write!(f, "simulation horizon must be positive"),
            SimError::UnknownScriptTarget { cluster, node } => {
                write!(
                    f,
                    "scripted outage targets unknown node {node} of cluster {cluster}"
                )
            }
            SimError::ScriptOverlap { cluster, node } => {
                write!(
                    f,
                    "scripted outages overlap on node {node} of cluster {cluster}"
                )
            }
            SimError::NoTrials => write!(f, "monte-carlo needs at least one trial"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidDynamics { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = SimError::InvalidDynamics {
            cluster: "db".into(),
            source: uptime_core::ModelError::EmptySystem,
        };
        assert!(err.to_string().contains("db"));
        assert_eq!(
            SimError::EmptyHorizon.to_string(),
            "simulation horizon must be positive"
        );
        assert!(SimError::UnknownScriptTarget {
            cluster: 1,
            node: 2
        }
        .to_string()
        .contains("node 2 of cluster 1"));
        assert_eq!(
            SimError::NoTrials.to_string(),
            "monte-carlo needs at least one trial"
        );
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let err = SimError::InvalidDynamics {
            cluster: "x".into(),
            source: uptime_core::ModelError::EmptySystem,
        };
        assert!(err.source().is_some());
        assert!(SimError::EmptyHorizon.source().is_none());
    }
}
