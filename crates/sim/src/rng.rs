//! Deterministic random processes for the simulator.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::time::SimDuration;

/// A seeded exponential sampler, the failure/repair process generator.
///
/// Samples are inverse-CDF transformed draws from a [`StdRng`], so a given
/// seed reproduces the exact event sequence across runs and platforms.
#[derive(Debug)]
pub struct ExpSampler {
    rng: StdRng,
}

impl ExpSampler {
    /// Creates a sampler from a seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        ExpSampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws an exponential duration with the given mean (in milliseconds),
    /// clamped to at least 1 ms so events always advance the clock.
    #[must_use]
    pub fn sample_exponential_ms(&mut self, mean_ms: f64) -> SimDuration {
        let u: f64 = self.rng.random();
        // u ∈ [0, 1): use (1 − u) ∈ (0, 1] to avoid ln(0).
        let draw = -mean_ms * (1.0 - u).ln();
        SimDuration::from_millis(draw.round().max(1.0) as u64)
    }

    /// Draws a uniform `f64` in `[0, 1)` (used for tie-breaking decisions).
    #[must_use]
    pub fn sample_unit(&mut self) -> f64 {
        self.rng.random()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ExpSampler::seed_from_u64(42);
        let mut b = ExpSampler::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.sample_exponential_ms(1000.0),
                b.sample_exponential_ms(1000.0)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ExpSampler::seed_from_u64(1);
        let mut b = ExpSampler::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.sample_exponential_ms(1000.0) == b.sample_exponential_ms(1000.0))
            .count();
        assert!(same < 32);
    }

    #[test]
    fn samples_are_positive() {
        let mut s = ExpSampler::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(s.sample_exponential_ms(5.0).as_millis() >= 1);
        }
    }

    #[test]
    fn mean_approximately_correct() {
        let mut s = ExpSampler::seed_from_u64(4);
        let mean_ms = 60_000.0;
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| s.sample_exponential_ms(mean_ms).as_millis())
            .sum();
        let observed = total as f64 / n as f64;
        // Standard error ≈ mean/√n ≈ 424 ms; allow 5σ.
        assert!(
            (observed - mean_ms).abs() < 5.0 * mean_ms / (n as f64).sqrt(),
            "observed mean {observed}"
        );
    }

    #[test]
    fn unit_samples_in_range() {
        let mut s = ExpSampler::seed_from_u64(5);
        for _ in 0..1000 {
            let u = s.sample_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
