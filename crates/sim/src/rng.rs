//! Deterministic random processes for the simulator.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::time::SimDuration;

/// Derives the seed for stream `index` of a family rooted at `base_seed`,
/// using the splitmix64 output function over golden-ratio increments.
///
/// Feeding `base_seed + i` straight into [`StdRng::seed_from_u64`] hands
/// adjacent integers to every trial; splitmix64's finalizer is a bijection
/// whose avalanche spreads a one-bit seed difference across the whole
/// word, so derived streams start from statistically independent states.
/// Purely arithmetic, hence deterministic across platforms.
#[must_use]
pub fn stream_seed(base_seed: u64, index: u64) -> u64 {
    // splitmix64: state advances by the golden-ratio constant, output is
    // the finalizer mix of the advanced state.
    let mut z = base_seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded exponential sampler, the failure/repair process generator.
///
/// Samples are inverse-CDF transformed draws from a [`StdRng`], so a given
/// seed reproduces the exact event sequence across runs and platforms.
#[derive(Debug)]
pub struct ExpSampler {
    rng: StdRng,
}

impl ExpSampler {
    /// Creates a sampler from a seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        ExpSampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws an exponential duration with the given mean (in milliseconds),
    /// clamped to at least 1 ms so events always advance the clock.
    #[must_use]
    pub fn sample_exponential_ms(&mut self, mean_ms: f64) -> SimDuration {
        let u: f64 = self.rng.random();
        // u ∈ [0, 1): use (1 − u) ∈ (0, 1] to avoid ln(0).
        let draw = -mean_ms * (1.0 - u).ln();
        SimDuration::from_millis(draw.round().max(1.0) as u64)
    }

    /// Draws a uniform `f64` in `[0, 1)` (used for tie-breaking decisions).
    #[must_use]
    pub fn sample_unit(&mut self) -> f64 {
        self.rng.random()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ExpSampler::seed_from_u64(42);
        let mut b = ExpSampler::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.sample_exponential_ms(1000.0),
                b.sample_exponential_ms(1000.0)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ExpSampler::seed_from_u64(1);
        let mut b = ExpSampler::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.sample_exponential_ms(1000.0) == b.sample_exponential_ms(1000.0))
            .count();
        assert!(same < 32);
    }

    #[test]
    fn samples_are_positive() {
        let mut s = ExpSampler::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(s.sample_exponential_ms(5.0).as_millis() >= 1);
        }
    }

    #[test]
    fn mean_approximately_correct() {
        let mut s = ExpSampler::seed_from_u64(4);
        let mean_ms = 60_000.0;
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| s.sample_exponential_ms(mean_ms).as_millis())
            .sum();
        let observed = total as f64 / n as f64;
        // Standard error ≈ mean/√n ≈ 424 ms; allow 5σ.
        assert!(
            (observed - mean_ms).abs() < 5.0 * mean_ms / (n as f64).sqrt(),
            "observed mean {observed}"
        );
    }

    #[test]
    fn stream_seeds_are_deterministic_and_spread() {
        assert_eq!(stream_seed(1, 0), stream_seed(1, 0));
        // Adjacent indices must not produce adjacent (or equal) seeds.
        let seeds: Vec<u64> = (0..64).map(|i| stream_seed(7, i)).collect();
        for pair in seeds.windows(2) {
            assert!(pair[0].abs_diff(pair[1]) > 1 << 32, "{pair:?}");
        }
        // Different bases diverge at every index.
        assert!((0..64).all(|i| stream_seed(7, i) != stream_seed(8, i)));
    }

    #[test]
    fn unit_samples_in_range() {
        let mut s = ExpSampler::seed_from_u64(5);
        for _ in 0..1000 {
            let u = s.sample_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
