//! Discrete-event simulation of series–parallel composition diagrams.
//!
//! [`crate::system::Simulation`] simulates the paper's serial chain: the
//! system is down whenever *any* cluster is down. This module simulates a
//! [`Block`] diagram instead — a parallel branch masks its siblings'
//! outages — and layers [`SharedDomain`] outages on top, so the
//! optimizer's composition algebra (`uptime-optimizer`'s `composition`
//! module) can be cross-validated end to end:
//!
//! * A cluster on the unguarded serial **spine** counts as down whenever
//!   it is not `Operational` — failover blips black out the system,
//!   matching `Block::failover_aware_availability` charging Eq. 3 on the
//!   spine.
//! * A cluster under a `Parallel` node counts as down only while
//!   **broken** — a sibling branch absorbs its failover blips, matching
//!   the analytic fold's breakdown-only masking.
//! * A [`SharedDomain`] outage forces every member cluster down, in
//!   whatever branch it sits — the simulated counterpart of the
//!   archetype generator's zero-cost domain pseudo-leaves.
//!
//! System downtime is metered on the *composed* up/down signal (not the
//! per-cluster union the serial accountant computes), so parallel masking
//! is observable in the report.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use uptime_core::composition::Block;
use uptime_core::FailureDynamics;

use crate::accountant::DowntimeAccountant;
use crate::cluster::{ClusterSim, ClusterStatus, FailureOutcome};
use crate::correlated::SharedDomain;
use crate::error::SimError;
use crate::monte_carlo::MonteCarloEstimate;
use crate::report::{ClusterReport, SimReport};
use crate::rng::ExpSampler;
use crate::time::{SimDuration, SimTime};

/// The block diagram with clusters replaced by flat indices.
#[derive(Debug, Clone)]
enum SimShape {
    Leaf(usize),
    Series(Vec<SimShape>),
    Parallel(Vec<SimShape>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    NodeFailed { cluster: usize, node: usize },
    NodeRepaired { cluster: usize, node: usize },
    FailoverEnded { cluster: usize, token: u64 },
    DomainFailed { domain: usize },
    DomainRepaired { domain: usize },
    Horizon,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: Kind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulates a [`Block`] diagram with optional shared failure domains.
///
/// # Examples
///
/// Two parallel single-node sites mask each other's breakdowns:
///
/// ```
/// use uptime_core::composition::Block;
/// use uptime_core::{ClusterSpec, Probability};
/// use uptime_sim::composition::CompositionSimulation;
/// use uptime_sim::SimDuration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let site = |name: &str| {
///     Block::Cluster(ClusterSpec::singleton(name, Probability::new(0.02).unwrap(), 4.0).unwrap())
/// };
/// let block = Block::Parallel(vec![site("a"), site("b")]);
/// let report = CompositionSimulation::new(
///     &block,
///     Vec::new(),
///     SimDuration::from_minutes(300.0 * 525_600.0),
///     7,
/// )?
/// .run();
/// // Analytic: 1 - 0.02² = 99.96 %.
/// assert!((report.availability().value() - 0.9996).abs() < 5e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompositionSimulation {
    clusters: Vec<ClusterSim>,
    node_dynamics: Vec<(f64, f64)>, // (mtbf_ms, mttr_ms) per cluster
    masked: Vec<bool>,              // true = under a Parallel node
    shape: SimShape,
    domains: Vec<SharedDomain>,
    covering: Vec<Vec<usize>>, // cluster -> indices into `domains`
    horizon: SimDuration,
    seed: u64,
}

impl CompositionSimulation {
    /// Prepares a composition simulation. Domain `members` reference
    /// clusters by name.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyHorizon`] for a zero horizon.
    /// * [`SimError::InvalidDynamics`] for an invalid diagram (empty
    ///   composite nodes), unusable `(P, f)` pairs, a negative domain
    ///   rate/MTTR, or a domain member matching no cluster.
    pub fn new(
        block: &Block,
        domains: Vec<SharedDomain>,
        horizon: SimDuration,
        seed: u64,
    ) -> Result<Self, SimError> {
        if horizon == SimDuration::ZERO {
            return Err(SimError::EmptyHorizon);
        }
        block
            .validate()
            .map_err(|source| SimError::InvalidDynamics {
                cluster: "<composition>".to_owned(),
                source,
            })?;

        let mut clusters = Vec::new();
        let mut node_dynamics = Vec::new();
        let mut masked = Vec::new();
        let shape = flatten(block, false, &mut clusters, &mut node_dynamics, &mut masked)?;

        let mut covering = vec![Vec::new(); clusters.len()];
        for (di, domain) in domains.iter().enumerate() {
            if domain.rate_per_year < 0.0 || domain.mttr_minutes < 0.0 {
                return Err(SimError::InvalidDynamics {
                    cluster: format!(
                        "shared domain `{}` has a negative rate or MTTR",
                        domain.name
                    ),
                    source: uptime_core::ModelError::EmptySystem,
                });
            }
            for member in &domain.members {
                let mut hits = 0usize;
                for (ci, cluster) in clusters.iter().enumerate() {
                    if cluster.name() == member {
                        covering[ci].push(di);
                        hits += 1;
                    }
                }
                if hits == 0 {
                    return Err(SimError::InvalidDynamics {
                        cluster: format!(
                            "shared domain `{}` member `{member}` matches no cluster",
                            domain.name
                        ),
                        source: uptime_core::ModelError::EmptySystem,
                    });
                }
            }
        }

        Ok(CompositionSimulation {
            clusters,
            node_dynamics,
            masked,
            shape,
            domains,
            covering,
            horizon,
            seed,
        })
    }

    /// Runs the event loop to the horizon.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        let horizon_time = SimTime::ZERO + self.horizon;
        let mut sampler = ExpSampler::seed_from_u64(self.seed);
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut schedule = |heap: &mut BinaryHeap<Event>, at: SimTime, kind: Kind| {
            heap.push(Event { at, seq, kind });
            seq += 1;
        };

        schedule(&mut heap, horizon_time, Kind::Horizon);
        for (ci, cluster) in self.clusters.iter().enumerate() {
            for node in 0..cluster.total_nodes() as usize {
                let ttf = sampler.sample_exponential_ms(self.node_dynamics[ci].0);
                schedule(
                    &mut heap,
                    SimTime::ZERO + ttf,
                    Kind::NodeFailed { cluster: ci, node },
                );
            }
        }
        for (di, domain) in self.domains.iter().enumerate() {
            if domain.rate_per_year > 0.0 {
                let gap = sampler.sample_exponential_ms(domain.mtbf_minutes() * 60_000.0);
                schedule(
                    &mut heap,
                    SimTime::ZERO + gap,
                    Kind::DomainFailed { domain: di },
                );
            }
        }

        // struck[c] = number of currently-down domains covering cluster c.
        let mut struck: Vec<u32> = vec![0; self.clusters.len()];
        // System-level meter over the *composed* signal.
        let mut system_down_since: Option<SimTime> = None;
        let mut system_downtime = SimDuration::ZERO;
        let mut system_outages: u64 = 0;
        // Per-cluster effective downtime (domain strikes included).
        let mut accountant = DowntimeAccountant::new(self.clusters.len());

        while let Some(event) = heap.pop() {
            let now = event.at;
            match event.kind {
                Kind::Horizon => break,
                Kind::NodeFailed { cluster: ci, node } => {
                    if !self.clusters[ci].node_is_up(node) {
                        continue;
                    }
                    let outcome = self.clusters[ci].node_failed(node, now);
                    if let FailureOutcome::FailoverStarted { until, token } = outcome {
                        schedule(&mut heap, until, Kind::FailoverEnded { cluster: ci, token });
                    }
                    let ttr = sampler.sample_exponential_ms(self.node_dynamics[ci].1.max(1.0));
                    schedule(
                        &mut heap,
                        now + ttr,
                        Kind::NodeRepaired { cluster: ci, node },
                    );
                }
                Kind::NodeRepaired { cluster: ci, node } => {
                    if self.clusters[ci].node_is_up(node) {
                        continue;
                    }
                    self.clusters[ci].node_repaired(node, now);
                    let ttf = sampler.sample_exponential_ms(self.node_dynamics[ci].0);
                    schedule(&mut heap, now + ttf, Kind::NodeFailed { cluster: ci, node });
                }
                Kind::FailoverEnded { cluster: ci, token } => {
                    self.clusters[ci].failover_ended(token, now);
                }
                Kind::DomainFailed { domain: di } => {
                    for (ci, covers) in self.covering.iter().enumerate() {
                        if covers.contains(&di) {
                            struck[ci] += 1;
                        }
                    }
                    let mttr_ms = (self.domains[di].mttr_minutes * 60_000.0).max(1.0);
                    let ttr = sampler.sample_exponential_ms(mttr_ms);
                    schedule(&mut heap, now + ttr, Kind::DomainRepaired { domain: di });
                }
                Kind::DomainRepaired { domain: di } => {
                    for (ci, covers) in self.covering.iter().enumerate() {
                        if covers.contains(&di) {
                            struck[ci] -= 1;
                        }
                    }
                    let gap =
                        sampler.sample_exponential_ms(self.domains[di].mtbf_minutes() * 60_000.0);
                    schedule(&mut heap, now + gap, Kind::DomainFailed { domain: di });
                }
            }

            // Re-derive every observable from the post-event state.
            for (ci, &hits) in struck.iter().enumerate() {
                let down = hits > 0 || self.clusters[ci].is_down();
                accountant.set_cluster_state(ci, down, now);
            }
            let up = shape_up(&self.shape, &self.clusters, &self.masked, &struck);
            match (up, system_down_since) {
                (false, None) => {
                    system_down_since = Some(now);
                    system_outages += 1;
                }
                (true, Some(since)) => {
                    system_downtime += now.since(since);
                    system_down_since = None;
                }
                _ => {}
            }
        }
        if let Some(since) = system_down_since {
            system_downtime += horizon_time.since(since);
        }
        accountant.finalize(horizon_time);

        let clusters = self
            .clusters
            .iter()
            .enumerate()
            .map(|(i, c)| ClusterReport {
                name: c.name().to_owned(),
                downtime: accountant.cluster_downtime(i),
                failover_windows: c.failover_windows(),
                breakdowns: c.breakdowns(),
            })
            .collect();
        SimReport::new(self.horizon, system_downtime, system_outages, clusters)
    }
}

/// Whether the composed system is up: spine leaves are up only when
/// `Operational`, masked leaves whenever not `Broken`, and never while a
/// covering domain is down.
fn shape_up(shape: &SimShape, clusters: &[ClusterSim], masked: &[bool], struck: &[u32]) -> bool {
    match shape {
        SimShape::Leaf(i) => {
            if struck[*i] > 0 {
                return false;
            }
            if masked[*i] {
                clusters[*i].status() != ClusterStatus::Broken
            } else {
                !clusters[*i].is_down()
            }
        }
        SimShape::Series(children) => children
            .iter()
            .all(|c| shape_up(c, clusters, masked, struck)),
        SimShape::Parallel(children) => children
            .iter()
            .any(|c| shape_up(c, clusters, masked, struck)),
    }
}

fn flatten(
    block: &Block,
    masked_here: bool,
    clusters: &mut Vec<ClusterSim>,
    node_dynamics: &mut Vec<(f64, f64)>,
    masked: &mut Vec<bool>,
) -> Result<SimShape, SimError> {
    match block {
        Block::Cluster(spec) => {
            let dyn_ = FailureDynamics::from_paper_params(
                spec.node_down_probability(),
                spec.failures_per_year(),
            )
            .map_err(|source| SimError::InvalidDynamics {
                cluster: spec.name().to_owned(),
                source,
            })?;
            clusters.push(ClusterSim::new(
                spec.name(),
                spec.total_nodes(),
                spec.active_nodes(),
                SimDuration::from_model(spec.failover_time()),
            ));
            node_dynamics.push((
                dyn_.mtbf().as_minutes().value() * 60_000.0,
                dyn_.mttr().as_minutes().value() * 60_000.0,
            ));
            masked.push(masked_here);
            Ok(SimShape::Leaf(clusters.len() - 1))
        }
        Block::Series(children) => Ok(SimShape::Series(
            children
                .iter()
                .map(|c| flatten(c, masked_here, clusters, node_dynamics, masked))
                .collect::<Result<_, _>>()?,
        )),
        Block::Parallel(children) => Ok(SimShape::Parallel(
            children
                .iter()
                .map(|c| flatten(c, true, clusters, node_dynamics, masked))
                .collect::<Result<_, _>>()?,
        )),
    }
}

/// Runs `trials` independent seeded simulations of `block` (with
/// `domains` layered on) and aggregates observed availabilities. Trial
/// `i` uses [`crate::rng::stream_seed`]`(base_seed, i)`.
///
/// # Errors
///
/// * [`SimError::NoTrials`] when `trials == 0`.
/// * Any configuration error from [`CompositionSimulation::new`].
pub fn monte_carlo(
    block: &Block,
    domains: &[SharedDomain],
    years_per_trial: f64,
    trials: u32,
    base_seed: u64,
) -> Result<MonteCarloEstimate, SimError> {
    if trials == 0 {
        return Err(SimError::NoTrials);
    }
    let horizon = SimDuration::from_minutes(years_per_trial * 525_600.0);
    // Validate configuration once, up front.
    let _probe = CompositionSimulation::new(block, domains.to_vec(), horizon, 0)?;
    let samples: Vec<f64> = (0..trials)
        .map(|i| {
            CompositionSimulation::new(
                block,
                domains.to_vec(),
                horizon,
                crate::rng::stream_seed(base_seed, u64::from(i)),
            )
            .expect("validated by probe")
            .run()
            .availability()
            .value()
        })
        .collect();
    Ok(MonteCarloEstimate::from_samples(&samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_core::{ClusterSpec, Probability};

    fn singleton(name: &str, down: f64, f: f64) -> Block {
        Block::Cluster(ClusterSpec::singleton(name, Probability::new(down).unwrap(), f).unwrap())
    }

    fn years(y: f64) -> SimDuration {
        SimDuration::from_minutes(y * 525_600.0)
    }

    #[test]
    fn empty_composite_rejected() {
        let err = CompositionSimulation::new(&Block::Parallel(vec![]), Vec::new(), years(1.0), 1)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidDynamics { .. }));
    }

    #[test]
    fn zero_horizon_rejected() {
        let err = CompositionSimulation::new(
            &singleton("web", 0.02, 2.0),
            Vec::new(),
            SimDuration::ZERO,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::EmptyHorizon));
    }

    #[test]
    fn unknown_domain_member_rejected() {
        let err = CompositionSimulation::new(
            &singleton("web", 0.02, 2.0),
            vec![SharedDomain {
                name: "zone".into(),
                rate_per_year: 1.0,
                mttr_minutes: 30.0,
                members: vec!["ghost".into()],
            }],
            years(1.0),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidDynamics { .. }));
    }

    #[test]
    fn deterministic_given_seed() {
        let block = Block::Parallel(vec![singleton("a", 0.05, 3.0), singleton("b", 0.05, 3.0)]);
        let domains = vec![SharedDomain {
            name: "zone".into(),
            rate_per_year: 2.0,
            mttr_minutes: 60.0,
            members: vec!["a".into(), "b".into()],
        }];
        let one = CompositionSimulation::new(&block, domains.clone(), years(25.0), 9)
            .unwrap()
            .run();
        let two = CompositionSimulation::new(&block, domains, years(25.0), 9)
            .unwrap()
            .run();
        assert_eq!(one, two);
    }

    #[test]
    fn serial_diagram_matches_block_analytics() {
        let block = Block::Series(vec![
            singleton("web", 0.02, 4.0),
            singleton("db", 0.04, 4.0),
        ]);
        let analytic = block.failover_aware_availability().value();
        let report = CompositionSimulation::new(&block, Vec::new(), years(300.0), 3)
            .unwrap()
            .run();
        assert!(
            (report.availability().value() - analytic).abs() < 2e-3,
            "observed {} vs analytic {analytic}",
            report.availability()
        );
    }

    #[test]
    fn parallel_masks_breakdowns() {
        let single = singleton("a", 0.03, 4.0);
        let pair = Block::Parallel(vec![singleton("a", 0.03, 4.0), singleton("b", 0.03, 4.0)]);
        let solo = CompositionSimulation::new(&single, Vec::new(), years(200.0), 5)
            .unwrap()
            .run();
        let masked = CompositionSimulation::new(&pair, Vec::new(), years(200.0), 5)
            .unwrap()
            .run();
        assert!(
            masked.availability() > solo.availability(),
            "redundancy must help: {} vs {}",
            masked.availability(),
            solo.availability()
        );
        // Analytic: 1 - 0.03² = 99.91 %.
        assert!((masked.availability().value() - 0.9991).abs() < 1e-3);
    }

    #[test]
    fn fatal_domain_multiplies_availability() {
        let pair = Block::Parallel(vec![singleton("a", 0.02, 4.0), singleton("b", 0.02, 4.0)]);
        let domain = SharedDomain {
            name: "region".into(),
            rate_per_year: 6.0,
            mttr_minutes: 240.0,
            members: vec!["a".into(), "b".into()],
        };
        let analytic = domain.availability().value() * pair.availability().value();
        let report = CompositionSimulation::new(&pair, vec![domain], years(400.0), 11)
            .unwrap()
            .run();
        assert!(
            (report.availability().value() - analytic).abs() < 2e-3,
            "observed {} vs analytic {analytic}",
            report.availability()
        );
    }

    #[test]
    fn monte_carlo_aggregates_and_validates() {
        let pair = Block::Parallel(vec![singleton("a", 0.05, 4.0), singleton("b", 0.05, 4.0)]);
        let estimate = monte_carlo(&pair, &[], 20.0, 12, 42).unwrap();
        assert_eq!(estimate.trials(), 12);
        let analytic = Probability::saturating(1.0 - 0.05 * 0.05);
        assert!(
            estimate.agrees_with(analytic, 4.0),
            "mean {} vs analytic {analytic} (se {})",
            estimate.mean(),
            estimate.std_error()
        );
        assert!(matches!(
            monte_carlo(&pair, &[], 1.0, 0, 1),
            Err(SimError::NoTrials)
        ));
    }
}
