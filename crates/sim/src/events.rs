//! The simulator's event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// What happens at an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A node transitions from up to down.
    NodeFailed {
        /// Cluster index within the system.
        cluster: usize,
        /// Node index within the cluster.
        node: usize,
    },
    /// A node's repair completes; it transitions from down to up.
    NodeRepaired {
        /// Cluster index within the system.
        cluster: usize,
        /// Node index within the cluster.
        node: usize,
    },
    /// A cluster's failover window ends.
    FailoverEnded {
        /// Cluster index within the system.
        cluster: usize,
        /// Token matching the `FailoverEnded` to the window that opened it;
        /// stale tokens (superseded by a later, longer window) are ignored.
        token: u64,
    },
    /// The simulation horizon is reached.
    HorizonReached,
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number; ties in `at` fire in insertion order.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Earliest-first event queue with stable FIFO ordering for simultaneous
/// events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), EventKind::HorizonReached);
        q.schedule(
            SimTime::from_millis(10),
            EventKind::NodeFailed {
                cluster: 0,
                node: 0,
            },
        );
        q.schedule(
            SimTime::from_millis(20),
            EventKind::NodeRepaired {
                cluster: 0,
                node: 0,
            },
        );
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_millis())
            .collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule(
            t,
            EventKind::NodeFailed {
                cluster: 0,
                node: 1,
            },
        );
        q.schedule(
            t,
            EventKind::NodeFailed {
                cluster: 0,
                node: 2,
            },
        );
        q.schedule(
            t,
            EventKind::NodeFailed {
                cluster: 0,
                node: 3,
            },
        );
        let nodes: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::NodeFailed { node, .. } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nodes, vec![1, 2, 3], "insertion order preserved");
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, EventKind::HorizonReached);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
