//! The k-redundancy cluster state machine.
//!
//! A cluster has `K` nodes: `K − K̂` hold the **active** role, the rest are
//! **standby**. The machine mirrors the paper's §II.A semantics:
//!
//! * an *active* node failure with an up standby available promotes the
//!   standby and opens a *failover window* of `t` during which the cluster
//!   is unavailable;
//! * a *standby* failure is invisible to the service;
//! * when more than `K̂` nodes are down, the cluster is *broken* — down
//!   until repairs restore the required active count. Recovery from
//!   breakdown does not open an extra failover window, matching the model,
//!   which accounts breakdown time purely binomially (the paper's
//!   footnote 3 makes the analogous simplification).
//!
//! Invariant: while the cluster is operational or failing over, every
//! required active slot is held by an up node.

use crate::time::{SimDuration, SimTime};

/// The service-visible condition of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterStatus {
    /// Serving traffic.
    Operational,
    /// A standby promotion is in progress; unavailable.
    FailingOver,
    /// More nodes are down than the standby budget tolerates; unavailable.
    Broken,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Active,
    Standby,
}

/// Outcome of feeding a node failure into the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureOutcome {
    /// A standby was promoted; a failover window is open until the given
    /// time, identified by the token (schedule a `FailoverEnded`).
    FailoverStarted {
        /// When the window closes.
        until: SimTime,
        /// Token to match against stale window-end events.
        token: u64,
    },
    /// The failed node was a standby; no visible effect.
    StandbyLost,
    /// The failure exceeded the standby budget; the cluster broke down.
    BrokeDown,
    /// The cluster was already broken; the failure deepened the outage.
    AlreadyBroken,
}

/// Discrete-event state machine for one cluster.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    name: String,
    required_active: u32,
    failover_time: SimDuration,
    node_up: Vec<bool>,
    roles: Vec<Role>,
    up_count: u32,
    failover_until: Option<SimTime>,
    failover_token: u64,
    failover_windows: u64,
    breakdowns: u64,
}

impl ClusterSim {
    /// Creates a cluster with `total` nodes of which `required_active` must
    /// be up, and the given failover window length.
    ///
    /// # Panics
    ///
    /// Panics if `required_active` is zero or exceeds `total` — callers
    /// construct from validated [`uptime_core::ClusterSpec`] values.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        total: u32,
        required_active: u32,
        failover_time: SimDuration,
    ) -> Self {
        assert!(
            required_active >= 1 && required_active <= total,
            "required_active must be within 1..=total"
        );
        let roles = (0..total)
            .map(|i| {
                if i < required_active {
                    Role::Active
                } else {
                    Role::Standby
                }
            })
            .collect();
        ClusterSim {
            name: name.into(),
            required_active,
            failover_time,
            node_up: vec![true; total as usize],
            roles,
            up_count: total,
            failover_until: None,
            failover_token: 0,
            failover_windows: 0,
            breakdowns: 0,
        }
    }

    /// The cluster's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total node count.
    #[must_use]
    pub fn total_nodes(&self) -> u32 {
        self.node_up.len() as u32
    }

    /// Number of currently-up nodes.
    #[must_use]
    pub fn up_count(&self) -> u32 {
        self.up_count
    }

    /// Current service-visible status.
    #[must_use]
    pub fn status(&self) -> ClusterStatus {
        if self.up_count < self.required_active {
            ClusterStatus::Broken
        } else if self.failover_until.is_some() {
            ClusterStatus::FailingOver
        } else {
            ClusterStatus::Operational
        }
    }

    /// Whether the cluster is currently unavailable.
    #[must_use]
    pub fn is_down(&self) -> bool {
        self.status() != ClusterStatus::Operational
    }

    /// Count of failover windows opened so far.
    #[must_use]
    pub fn failover_windows(&self) -> u64 {
        self.failover_windows
    }

    /// Count of breakdown episodes entered so far.
    #[must_use]
    pub fn breakdowns(&self) -> u64 {
        self.breakdowns
    }

    /// Whether the node is currently up.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn node_is_up(&self, node: usize) -> bool {
        self.node_up[node]
    }

    /// Feeds a node failure at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or already down (the event loop
    /// never double-fails a node).
    pub fn node_failed(&mut self, node: usize, now: SimTime) -> FailureOutcome {
        assert!(self.node_up[node], "node {node} failed while already down");
        let was_broken = self.status() == ClusterStatus::Broken;
        self.node_up[node] = false;
        self.up_count -= 1;

        if self.roles[node] == Role::Standby {
            // Invisible unless it tipped an already-degraded cluster — a
            // standby loss never does, because standbys don't hold slots.
            return FailureOutcome::StandbyLost;
        }

        // An active node failed: try to promote an up standby.
        if let Some(standby) = self.find_up_standby() {
            self.roles.swap(node, standby);
            let until_candidate = now + self.failover_time;
            let until = match self.failover_until {
                Some(existing) if existing > until_candidate => existing,
                _ => until_candidate,
            };
            self.failover_until = Some(until);
            self.failover_token += 1;
            self.failover_windows += 1;
            return FailureOutcome::FailoverStarted {
                until,
                token: self.failover_token,
            };
        }

        // No standby available: breakdown (or deepen an existing one).
        if was_broken {
            FailureOutcome::AlreadyBroken
        } else {
            self.breakdowns += 1;
            FailureOutcome::BrokeDown
        }
    }

    /// Feeds a node repair at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or already up.
    pub fn node_repaired(&mut self, node: usize, _now: SimTime) {
        assert!(!self.node_up[node], "node {node} repaired while already up");
        self.node_up[node] = true;
        self.up_count += 1;

        // If an active slot is vacant (cluster broken), fill it with this
        // node: swap roles with a down active.
        // If the node already held an active role it simply resumes it;
        // a standby fills a vacant active slot when the cluster is short.
        if self.up_active_count() < self.required_active && self.roles[node] == Role::Standby {
            if let Some(vacant) = self.find_down_active() {
                self.roles.swap(node, vacant);
            }
        }
    }

    /// Feeds a failover-window end. Stale tokens (superseded by a newer,
    /// longer window) are ignored.
    pub fn failover_ended(&mut self, token: u64, now: SimTime) {
        if token != self.failover_token {
            return;
        }
        if let Some(until) = self.failover_until {
            if now >= until {
                self.failover_until = None;
            }
        }
    }

    fn up_active_count(&self) -> u32 {
        self.roles
            .iter()
            .zip(&self.node_up)
            .filter(|(r, up)| **r == Role::Active && **up)
            .count() as u32
    }

    fn find_up_standby(&self) -> Option<usize> {
        self.roles
            .iter()
            .zip(&self.node_up)
            .position(|(r, up)| *r == Role::Standby && *up)
    }

    fn find_down_active(&self) -> Option<usize> {
        self.roles
            .iter()
            .zip(&self.node_up)
            .position(|(r, up)| *r == Role::Active && !*up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(min: f64) -> SimTime {
        SimTime::from_minutes(min)
    }

    fn raid1() -> ClusterSim {
        // 1 active + 1 standby, 0.5 min failover.
        ClusterSim::new("storage", 2, 1, SimDuration::from_minutes(0.5))
    }

    fn vmware() -> ClusterSim {
        // 3 active + 1 standby, 6 min failover.
        ClusterSim::new("compute", 4, 3, SimDuration::from_minutes(6.0))
    }

    #[test]
    fn starts_operational() {
        let c = vmware();
        assert_eq!(c.status(), ClusterStatus::Operational);
        assert!(!c.is_down());
        assert_eq!(c.up_count(), 4);
        assert_eq!(c.total_nodes(), 4);
        assert!(c.node_is_up(0));
    }

    #[test]
    #[should_panic(expected = "required_active")]
    fn zero_required_active_panics() {
        let _ = ClusterSim::new("bad", 2, 0, SimDuration::ZERO);
    }

    #[test]
    fn active_failure_with_standby_opens_window() {
        let mut c = vmware();
        let outcome = c.node_failed(0, t(10.0));
        match outcome {
            FailureOutcome::FailoverStarted { until, token } => {
                assert_eq!(until, t(16.0));
                assert_eq!(token, 1);
            }
            other => panic!("expected failover, got {other:?}"),
        }
        assert_eq!(c.status(), ClusterStatus::FailingOver);
        assert!(c.is_down());
        assert_eq!(c.failover_windows(), 1);

        // Window closes on matching token at/after the deadline.
        c.failover_ended(1, t(16.0));
        assert_eq!(c.status(), ClusterStatus::Operational);
    }

    #[test]
    fn standby_failure_is_invisible() {
        let mut c = vmware();
        // Node 3 is the standby.
        assert_eq!(c.node_failed(3, t(1.0)), FailureOutcome::StandbyLost);
        assert_eq!(c.status(), ClusterStatus::Operational);
        assert_eq!(c.failover_windows(), 0);
    }

    #[test]
    fn active_failure_without_standby_breaks_down() {
        let mut c = raid1();
        assert_eq!(c.node_failed(1, t(1.0)), FailureOutcome::StandbyLost);
        // The remaining node is active; its failure has no standby left.
        assert_eq!(c.node_failed(0, t(2.0)), FailureOutcome::BrokeDown);
        assert_eq!(c.status(), ClusterStatus::Broken);
        assert_eq!(c.breakdowns(), 1);
    }

    #[test]
    fn repair_recovers_breakdown_without_extra_window() {
        let mut c = raid1();
        c.node_failed(1, t(1.0));
        c.node_failed(0, t(2.0));
        assert_eq!(c.status(), ClusterStatus::Broken);
        c.node_repaired(1, t(3.0));
        // Former standby takes the active slot; no failover window.
        assert_eq!(c.status(), ClusterStatus::Operational);
        assert_eq!(c.failover_windows(), 0);
    }

    #[test]
    fn promoted_standby_failure_triggers_second_window() {
        let mut c = raid1();
        // Active node 0 fails: standby 1 promoted, window opens.
        assert!(matches!(
            c.node_failed(0, t(1.0)),
            FailureOutcome::FailoverStarted { .. }
        ));
        c.failover_ended(1, t(1.5));
        assert_eq!(c.status(), ClusterStatus::Operational);
        // Node 0 repairs: becomes the standby.
        c.node_repaired(0, t(2.0));
        // Node 1 (now active) fails: node 0 must be promoted.
        assert!(matches!(
            c.node_failed(1, t(3.0)),
            FailureOutcome::FailoverStarted { token: 2, .. }
        ));
        assert_eq!(c.failover_windows(), 2);
    }

    #[test]
    fn overlapping_windows_extend_and_stale_tokens_ignored() {
        // 3 active + 2 standbys so two overlapping failovers are possible.
        let mut c = ClusterSim::new("compute", 5, 3, SimDuration::from_minutes(6.0));
        let first = c.node_failed(0, t(0.0));
        let FailureOutcome::FailoverStarted { token: t1, .. } = first else {
            panic!("expected window");
        };
        // Second active failure at minute 3: window now ends at minute 9.
        let second = c.node_failed(1, t(3.0));
        let FailureOutcome::FailoverStarted { until, token: t2 } = second else {
            panic!("expected window");
        };
        assert_eq!(until, t(9.0));
        assert_ne!(t1, t2);
        // The first window's end event arrives at minute 6: stale, ignored.
        c.failover_ended(t1, t(6.0));
        assert_eq!(c.status(), ClusterStatus::FailingOver);
        // The second window's end clears it.
        c.failover_ended(t2, t(9.0));
        assert_eq!(c.status(), ClusterStatus::Operational);
    }

    #[test]
    fn breakdown_takes_precedence_over_failover_in_status() {
        let mut c = raid1();
        assert!(matches!(
            c.node_failed(0, t(0.0)),
            FailureOutcome::FailoverStarted { .. }
        ));
        // Promoted node fails inside the window: breakdown.
        assert_eq!(c.node_failed(1, t(0.1)), FailureOutcome::BrokeDown);
        assert_eq!(c.status(), ClusterStatus::Broken);
        // Repair one node: active slot refilled, but the old failover
        // window may still be open.
        c.node_repaired(0, t(0.2));
        assert_eq!(c.status(), ClusterStatus::FailingOver);
        c.failover_ended(1, t(0.5));
        assert_eq!(c.status(), ClusterStatus::Operational);
    }

    #[test]
    fn deepened_breakdown_counted_once() {
        let mut c = vmware();
        c.node_failed(3, t(0.0)); // standby gone
        c.node_failed(0, t(1.0)); // breakdown (no standby left)
        assert_eq!(c.breakdowns(), 1);
        assert_eq!(c.node_failed(1, t(2.0)), FailureOutcome::AlreadyBroken);
        assert_eq!(c.breakdowns(), 1);
        assert_eq!(c.up_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_failure_panics() {
        let mut c = raid1();
        c.node_failed(0, t(0.0));
        let snapshot = c.clone();
        drop(snapshot);
        c.node_failed(0, t(1.0));
    }

    #[test]
    #[should_panic(expected = "already up")]
    fn double_repair_panics() {
        let mut c = raid1();
        c.node_repaired(0, t(0.0));
    }

    #[test]
    fn singleton_cluster_breaks_immediately() {
        let mut c = ClusterSim::new("web", 1, 1, SimDuration::ZERO);
        assert_eq!(c.node_failed(0, t(0.0)), FailureOutcome::BrokeDown);
        assert_eq!(c.status(), ClusterStatus::Broken);
        c.node_repaired(0, t(1.0));
        assert_eq!(c.status(), ClusterStatus::Operational);
    }
}
