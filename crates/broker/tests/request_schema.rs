//! The checked-in `solution_request.schema.json` wire contract: every
//! request the builder can produce must validate, the `topology` field is
//! part of the published schema, and malformed spellings are rejected.

use serde::{Deserialize, Value};
use uptime_broker::SolutionRequest;
use uptime_catalog::{CloudId, ComponentKind, HaMethodId};
use uptime_core::RoundingPolicy;
use uptime_serve::schema;

fn load_schema() -> Value {
    let path = format!(
        "{}/../../schemas/solution_request.schema.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    serde_json::from_str(&text).expect("schema parses")
}

fn base() -> uptime_broker::SolutionRequestBuilder {
    SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(98.0)
        .unwrap()
        .penalty_per_hour(100.0)
        .unwrap()
}

#[test]
fn builder_requests_validate() {
    let schema = load_schema();
    let minimal = base().build().unwrap();
    schema::assert_valid(&serde_json::to_value(&minimal), &schema);

    let full = base()
        .rounding(RoundingPolicy::Exact)
        .cloud(CloudId::new("softlayer"))
        .as_is(vec![
            HaMethodId::new("vmware-ha-3p1"),
            HaMethodId::new("raid1"),
            HaMethodId::new("dual-gw"),
        ])
        .build()
        .unwrap();
    schema::assert_valid(&serde_json::to_value(&full), &schema);
}

#[test]
fn every_archetype_topology_validates() {
    let schema = load_schema();
    for archetype in uptime_optimizer::Archetype::all() {
        let request = base().topology(archetype.name()).build().unwrap();
        schema::assert_valid(&serde_json::to_value(&request), &schema);
    }
}

#[test]
fn omitted_optional_keys_validate() {
    // Clients may omit optional fields entirely rather than sending null;
    // the schema must accept both spellings of the same request.
    let schema = load_schema();
    let Value::Object(mut map) = serde_json::to_value(&base().build().unwrap()) else {
        panic!("requests serialize as objects");
    };
    map.remove("rounding");
    map.remove("clouds");
    map.remove("as_is");
    map.remove("topology");
    let trimmed = Value::Object(map);
    schema::assert_valid(&trimmed, &schema);
    // And the trimmed spelling still deserializes to the same request.
    assert_eq!(
        SolutionRequest::from_value(&trimmed).unwrap(),
        base().build().unwrap()
    );
}

#[test]
fn malformed_requests_rejected() {
    let schema = load_schema();
    let violations = |value: &Value| {
        let mut errors = Vec::new();
        schema::validate(value, &schema, "$", &mut errors);
        errors
    };

    let Value::Object(full) = serde_json::to_value(&base().build().unwrap()) else {
        panic!("requests serialize as objects");
    };

    // Missing a required field.
    let mut missing = full.clone();
    missing.remove("sla");
    assert!(!violations(&Value::Object(missing)).is_empty());

    // A topology outside the published archetype names.
    let mut bad_topology = full.clone();
    bad_topology.insert(
        "topology".to_owned(),
        serde_json::to_value(&"orbital".to_owned()),
    );
    assert!(!violations(&Value::Object(bad_topology)).is_empty());

    // An unknown extra key: the contract is closed.
    let mut extra = full.clone();
    extra.insert("surprise".to_owned(), serde_json::to_value(&1.0));
    assert!(!violations(&Value::Object(extra)).is_empty());

    // A tier outside the component-kind vocabulary.
    let mut bad_tier = full;
    bad_tier.insert(
        "tiers".to_owned(),
        serde_json::to_value(&vec!["Mainframe".to_owned()]),
    );
    assert!(!violations(&Value::Object(bad_tier)).is_empty());
}
