//! Smoke tests driving the `brokerctl` binary end-to-end.

use std::io::Write;
use std::process::{Command, Stdio};

fn brokerctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_brokerctl"))
}

#[test]
fn recommend_prints_fig10_numbers() {
    let output = brokerctl().arg("recommend").output().expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("option #3 at $1250/mo"), "{text}");
    assert!(text.contains("option #5 at $1350/mo"), "{text}");
}

#[test]
fn recommend_json_parses() {
    let output = brokerctl()
        .args(["recommend", "--json"])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let value: serde_json::Value = serde_json::from_slice(&output.stdout).unwrap();
    assert!(value.get("clouds").is_some());
}

#[test]
fn catalog_lists_methods_and_clouds() {
    let output = brokerctl()
        .args(["catalog", "--hybrid"])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    for needle in [
        "softlayer",
        "nimbus",
        "stratus",
        "raid1",
        "bgp-dual-circuit",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

#[test]
fn frontier_renders_the_demo_tradeoff() {
    let output = brokerctl().arg("frontier").output().expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let text = String::from_utf8(output.stdout).unwrap();
    // Demo spec: 98% hard floor keeps the paper's two top options; the
    // $2000 soft cap recommends the $1350 point.
    assert!(text.contains("uptime target 98.000%"), "{text}");
    assert!(text.contains("<- recommended"), "{text}");
    assert!(text.contains("1350"), "{text}");
    assert!(text.contains("3550"), "{text}");
}

#[test]
fn frontier_json_matches_engines_and_specs() {
    let inline = r#"{ "objectives": [
        { "metric": "uptime", "threshold": 92.0, "mode": "hard" },
        { "metric": "cost", "threshold": 1000.0, "mode": "soft" }
    ] }"#;
    let run = |engine: &str| {
        let output = brokerctl()
            .args(["frontier", "--json", "--engine", engine, "--inline", inline])
            .output()
            .expect("binary runs");
        assert!(output.status.success(), "{output:?}");
        serde_json::from_slice::<serde_json::Value>(&output.stdout).unwrap()
    };
    let exhaustive = run("exhaustive");
    let bnb = run("bnb");
    assert_eq!(
        exhaustive.get("engine").and_then(|e| e.as_str()),
        Some("exhaustive")
    );
    assert_eq!(bnb.get("engine").and_then(|e| e.as_str()), Some("bnb"));
    // Same points either way (stats legitimately differ).
    let points = |v: &serde_json::Value| {
        v.get("clouds").and_then(|c| c.as_array()).unwrap()[0]
            .get("points")
            .cloned()
    };
    assert_eq!(points(&exhaustive), points(&bnb));

    // A spec file is read the same as --inline.
    let dir = std::env::temp_dir().join("brokerctl-frontier-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("spec.json");
    std::fs::write(&path, inline).unwrap();
    let from_file = brokerctl()
        .args(["frontier", "--json", "--spec", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(from_file.status.success(), "{from_file:?}");
    let from_file: serde_json::Value = serde_json::from_slice(&from_file.stdout).unwrap();
    assert_eq!(from_file, exhaustive);
}

#[test]
fn frontier_infeasible_spec_exits_3_and_bad_spec_exits_1() {
    let impossible = r#"{ "objectives": [
        { "metric": "uptime", "threshold": 99.999, "mode": "hard" },
        { "metric": "cost", "threshold": 1.0, "mode": "hard" }
    ] }"#;
    let output = brokerctl()
        .args(["frontier", "--inline", impossible])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(3), "{output:?}");
    let err = String::from_utf8(output.stderr).unwrap();
    assert!(err.contains("slo infeasible"), "{err}");

    let malformed = r#"{ "objectives": [ { "metric": "latency", "threshold": 1.0 } ] }"#;
    let output = brokerctl()
        .args(["frontier", "--inline", malformed])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let err = String::from_utf8(output.stderr).unwrap();
    assert!(err.contains("brokerctl:"), "{err}");
}

#[test]
fn help_documents_frontier_and_exit_codes() {
    let output = brokerctl().arg("help").output().expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("frontier ["), "{text}");
    assert!(text.contains("slo_spec.schema.json"), "{text}");
    assert!(
        text.contains("`frontier`: the"),
        "exit-code table must cover frontier: {text}"
    );
}

#[test]
fn sweep_shows_crossovers() {
    let output = brokerctl()
        .args(["sweep", "90", "99.5", "10"])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("Crossovers"), "{text}");
}

#[test]
fn metacloud_reports_cross_cloud_plan() {
    let output = brokerctl().arg("metacloud").output().expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("Metacloud:"), "{text}");
    assert!(text.contains("raid1"), "{text}");
}

#[test]
fn unknown_subcommand_exits_2() {
    let output = brokerctl().arg("bogus").output().expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn health_without_chaos_is_clean() {
    let output = brokerctl().arg("health").output().expect("binary runs");
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("degraded: no"), "{text}");
    assert!(text.contains("breaker closed"), "{text}");
}

#[test]
fn health_json_parses_and_exit_code_reflects_degradation() {
    let output = brokerctl()
        .args(["health", "--json", "--chaos", "2"])
        .output()
        .expect("binary runs");
    // Under chaos the run may or may not end degraded; both are valid,
    // anything else is a failure.
    let code = output.status.code();
    assert!(code == Some(0) || code == Some(3), "{output:?}");
    let value: serde_json::Value = serde_json::from_slice(&output.stdout).unwrap();
    let health = value.get("health").expect("health key");
    let degraded = health.get("degraded").and_then(|d| d.as_bool()).unwrap();
    assert_eq!(code, Some(if degraded { 3 } else { 0 }));
    assert!(value.get("incidents").is_some());
}

#[test]
fn health_is_deterministic_per_seed() {
    let run = || {
        brokerctl()
            .args(["health", "--json", "--chaos", "5"])
            .output()
            .expect("binary runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.status.code(), b.status.code());
    assert_eq!(a.stdout, b.stdout, "identical seed, identical report");
}

#[test]
fn health_rejects_bad_seed() {
    let output = brokerctl()
        .args(["health", "nonsense"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let err = String::from_utf8(output.stderr).unwrap();
    assert!(err.contains("brokerctl:"), "{err}");
}

#[test]
fn serve_answers_requests_and_survives_garbage() {
    let mut child = brokerctl()
        .args(["serve", "--stdin"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary spawns");

    // One valid request, one garbage line, one more valid request.
    let request = serde_json::json!({
        "tiers": ["Compute", "Storage", "NetworkGateway"],
        "sla": { "target": 0.98 },
        "penalty": { "PerHour": { "rate": 100.0 } },
        "rounding": "CeilHour",
        "clouds": [],
        "as_is": null
    });
    let mut stdin = child.stdin.take().unwrap();
    writeln!(stdin, "{request}").unwrap();
    writeln!(stdin, "this is not json").unwrap();
    writeln!(stdin, "{request}").unwrap();
    drop(stdin); // EOF ends the loop.

    let output = child.wait_with_output().expect("binary exits");
    assert!(output.status.success());
    let lines: Vec<&str> = std::str::from_utf8(&output.stdout)
        .unwrap()
        .lines()
        .collect();
    assert_eq!(lines.len(), 3, "{lines:?}");

    let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
    assert!(first.get("ok").is_some(), "{first}");
    let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
    assert!(second.get("error").is_some(), "{second}");
    let third: serde_json::Value = serde_json::from_str(lines[2]).unwrap();
    assert!(third.get("ok").is_some(), "{third}");
}
