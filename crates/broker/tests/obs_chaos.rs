//! Metrics-under-chaos: for every chaos seed the `broker.*` counters a
//! live recorder accumulates must agree with the incident log and health
//! report exactly — the observability layer may not drop, double-count,
//! or invent control-plane events.

use std::sync::Arc;

use uptime_broker::{
    BrokerService, ChaosConfig, ChaosProvider, GroundTruth, IncidentCategory, SimulatedProvider,
};
use uptime_catalog::{case_study, ComponentKind};
use uptime_core::{FailuresPerYear, Probability};
use uptime_obs::MetricsRegistry;

const ROUNDS: u64 = 15;

fn chaotic_broker(seed: u64, registry: Arc<MetricsRegistry>) -> BrokerService {
    let provider = SimulatedProvider::new(case_study::cloud_id(), "chaotic sim").with_ground_truth(
        ComponentKind::Storage,
        GroundTruth {
            down_probability: Probability::new(0.10).unwrap(),
            failures_per_year: FailuresPerYear::new(4.0).unwrap(),
        },
    );
    let broker = BrokerService::new(case_study::catalog()).with_recorder(registry);
    broker.register_provider(Box::new(ChaosProvider::new(
        provider,
        ChaosConfig::aggressive(seed),
    )));
    broker
}

#[test]
fn counters_match_incident_log_for_chaos_seeds_0_through_4() {
    for seed in 0u64..5 {
        let registry = Arc::new(MetricsRegistry::with_event_capacity(4096));
        let broker = chaotic_broker(seed, registry.clone());
        let mut circuit_rejected = 0u64;
        for round in 0..ROUNDS {
            if let Err(uptime_broker::BrokerError::CircuitOpen { .. }) = broker.sync_telemetry(
                &case_study::cloud_id(),
                ComponentKind::Storage,
                40,
                10.0,
                seed.wrapping_mul(1000) + round,
            ) {
                circuit_rejected += 1;
            }
        }

        let incidents = broker.incidents();
        let health = broker.health();
        let snap = registry.snapshot();
        let count = |cat: IncidentCategory| -> u64 {
            incidents.iter().filter(|i| i.category == cat).count() as u64
        };
        let counter = |name: &str| snap.counter(name).unwrap_or(0);

        // Every counter agrees with the incident log, exactly.
        assert_eq!(
            counter("broker.sync.failed"),
            count(IncidentCategory::ProviderFault),
            "seed {seed}: failed syncs vs ProviderFault incidents"
        );
        assert_eq!(
            counter("broker.breaker.opened"),
            count(IncidentCategory::BreakerOpened),
            "seed {seed}: breaker.opened vs BreakerOpened incidents"
        );
        assert_eq!(
            counter("broker.breaker.recovered"),
            count(IncidentCategory::BreakerRecovered),
            "seed {seed}: breaker.recovered vs BreakerRecovered incidents"
        );
        assert_eq!(
            counter("broker.quarantine.rejected"),
            count(IncidentCategory::TelemetryRejected)
                + count(IncidentCategory::ImplausibleEstimate),
            "seed {seed}: quarantine.rejected vs quarantine incidents"
        );

        // ... and with the health report.
        assert_eq!(
            counter("broker.quarantine.accepted"),
            health.providers[0].batches_absorbed,
            "seed {seed}: quarantine.accepted vs batches_absorbed"
        );
        assert_eq!(
            counter("broker.quarantine.rejected"),
            health.providers[0].batches_quarantined,
            "seed {seed}: quarantine.rejected vs batches_quarantined"
        );
        assert_eq!(
            counter("broker.breaker.opened"),
            health.providers[0].times_opened,
            "seed {seed}: breaker.opened vs times_opened"
        );
        assert_eq!(
            counter("broker.breaker.rejected"),
            circuit_rejected,
            "seed {seed}: breaker.rejected vs observed CircuitOpen errors"
        );

        // Retry accounting: the ProviderFault details record how many
        // attempts each failed harvest burned; the retries counter covers
        // at least those (successful syncs may add more).
        let failed_retries: u64 = incidents
            .iter()
            .filter(|i| i.category == IncidentCategory::ProviderFault)
            .map(|i| {
                let detail = &i.detail;
                let n: u64 = detail
                    .strip_prefix("harvest failed after ")
                    .and_then(|rest| rest.split(' ').next())
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| panic!("unparseable fault detail: {detail}"));
                n - 1
            })
            .sum();
        assert!(
            counter("broker.sync.retries") >= failed_retries,
            "seed {seed}: retries counter below the failed-harvest tally"
        );

        // Every sync that was admitted past the breaker shows up in the
        // attempts histogram.
        let attempts = snap.histogram("broker.sync.attempts").unwrap();
        assert_eq!(
            attempts.count,
            ROUNDS - circuit_rejected,
            "seed {seed}: attempts histogram vs admitted syncs"
        );

        // The event ring mirrors the incident log one-to-one.
        let incident_events = snap
            .events
            .iter()
            .filter(|e| e.name == "broker.incident")
            .count() as u64;
        assert_eq!(
            incident_events,
            incidents.len() as u64,
            "seed {seed}: event ring vs incident log"
        );
    }
}

#[test]
fn breaker_transitions_carry_timestamps() {
    for seed in 0u64..5 {
        let registry = Arc::new(MetricsRegistry::new());
        let broker = chaotic_broker(seed, registry);
        for round in 0..ROUNDS {
            let _ = broker.sync_telemetry(
                &case_study::cloud_id(),
                ComponentKind::Storage,
                40,
                10.0,
                seed.wrapping_mul(1000) + round,
            );
        }
        let mut last_tick = 0u64;
        for incident in broker.incidents() {
            match incident.category {
                IncidentCategory::BreakerOpened => {
                    let tick = incident.breaker_tick.expect("opened carries a tick");
                    assert!(tick >= last_tick, "ticks are monotonic");
                    last_tick = tick;
                    assert_eq!(
                        incident.breaker_state,
                        Some(uptime_broker::BreakerState::Open)
                    );
                }
                IncidentCategory::BreakerRecovered => {
                    let tick = incident.breaker_tick.expect("recovered carries a tick");
                    assert!(tick >= last_tick, "ticks are monotonic");
                    last_tick = tick;
                    assert_eq!(
                        incident.breaker_state,
                        Some(uptime_broker::BreakerState::Closed)
                    );
                }
                _ => {
                    assert_eq!(incident.breaker_tick, None);
                    assert_eq!(incident.breaker_state, None);
                }
            }
        }
    }
}
