//! End-to-end checks of the `brokerctl obs` exporter: the JSON form must
//! validate against the checked-in `schemas/obs_snapshot.schema.json`,
//! and the Prometheus form must follow the text exposition format.
//!
//! The validator below implements the subset of JSON Schema the checked-in
//! schema uses (`type`, `required`, `properties`, `additionalProperties`,
//! `items`, `const`) so the contract is enforced without a schema crate.

use std::process::Command;

use serde_json::Value;

fn brokerctl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_brokerctl"))
        .args(args)
        .output()
        .expect("brokerctl runs")
}

/// Member lookup that panics with the missing key's name (the vendored
/// `Value` deliberately has no `Index` impl).
fn get<'a>(value: &'a Value, key: &str) -> &'a Value {
    value
        .get(key)
        .unwrap_or_else(|| panic!("missing key `{key}` in {value}"))
}

fn schema() -> Value {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/obs_snapshot.schema.json"
    );
    serde_json::from_str(&std::fs::read_to_string(path).expect("schema file readable"))
        .expect("schema file is valid JSON")
}

/// Validates `value` against the subset of JSON Schema used by
/// `obs_snapshot.schema.json`, pushing a message per violation.
fn validate(value: &Value, schema: &Value, path: &str, errors: &mut Vec<String>) {
    let Some(schema) = schema.as_object() else {
        return;
    };
    if let Some(ty) = schema.get("type") {
        let allowed: Vec<&str> = match ty {
            Value::String(s) => vec![s.as_str()],
            Value::Array(options) => options.iter().filter_map(Value::as_str).collect(),
            _ => Vec::new(),
        };
        let actual = match value {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(n) => {
                if n.as_i64().is_some() || n.as_u64().is_some() {
                    "integer"
                } else {
                    "number"
                }
            }
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        // JSON Schema: every integer is also a number.
        let matches = allowed
            .iter()
            .any(|t| *t == actual || (*t == "number" && actual == "integer"));
        if !matches {
            errors.push(format!("{path}: expected type {allowed:?}, got {actual}"));
            return;
        }
    }
    if let Some(expected) = schema.get("const") {
        if value != expected {
            errors.push(format!("{path}: expected const {expected}, got {value}"));
        }
    }
    if let Some(object) = value.as_object() {
        if let Some(required) = schema.get("required").and_then(Value::as_array) {
            for key in required.iter().filter_map(Value::as_str) {
                if !object.contains_key(key) {
                    errors.push(format!("{path}: missing required property `{key}`"));
                }
            }
        }
        let properties = schema.get("properties").and_then(Value::as_object);
        for (key, child) in object {
            let child_path = format!("{path}.{key}");
            if let Some(child_schema) = properties.and_then(|p| p.get(key)) {
                validate(child, child_schema, &child_path, errors);
            } else if let Some(extra) = schema.get("additionalProperties") {
                validate(child, extra, &child_path, errors);
            }
        }
    }
    if let Some(array) = value.as_array() {
        if let Some(items) = schema.get("items") {
            for (i, child) in array.iter().enumerate() {
                validate(child, items, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

fn assert_valid_snapshot(raw: &str) -> Value {
    let value: Value = serde_json::from_str(raw).expect("exporter output parses as JSON");
    let mut errors = Vec::new();
    validate(&value, &schema(), "$", &mut errors);
    assert!(errors.is_empty(), "schema violations: {errors:#?}");
    value
}

#[test]
fn obs_json_validates_against_checked_in_schema() {
    let output = brokerctl(&["obs", "--json"]);
    assert!(output.status.success(), "{output:?}");
    let value = assert_valid_snapshot(&String::from_utf8(output.stdout).unwrap());

    // A clean recommend+sync run populates all three metric families.
    let counters = get(&value, "counters").as_object().unwrap();
    assert!(counters.contains_key("broker.sync.calls"));
    assert!(counters.contains_key("optimizer.exhaustive.variants"));
    assert!(get(&value, "histograms")
        .as_object()
        .unwrap()
        .contains_key("broker.sync.attempts"));
    assert!(get(&value, "gauges")
        .as_object()
        .unwrap()
        .contains_key("broker.degraded"));
}

#[test]
fn obs_json_under_chaos_still_validates() {
    let output = brokerctl(&["obs", "--json", "--chaos", "3"]);
    assert!(output.status.success(), "{output:?}");
    let value = assert_valid_snapshot(&String::from_utf8(output.stdout).unwrap());
    // Chaos produces incidents, which surface in the event ring.
    assert!(!get(&value, "events").as_array().unwrap().is_empty());
}

#[test]
fn obs_prometheus_follows_exposition_format() {
    let output = brokerctl(&["obs", "--prom"]);
    assert!(output.status.success(), "{output:?}");
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("# TYPE uptime_broker_sync_calls counter"));
    assert!(text.contains("# TYPE uptime_broker_sync_attempts histogram"));
    assert!(text.contains("uptime_broker_sync_attempts_bucket{le=\"+Inf\"}"));
    assert!(text.contains("uptime_broker_sync_attempts_sum"));
    assert!(text.contains("uptime_broker_sync_attempts_count"));
    // Every non-comment line is `name{labels} value` with a sane name.
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        assert!(line.starts_with("uptime_"), "bad series name: {line}");
        assert!(
            line.split_whitespace().count() == 2,
            "bad sample line: {line}"
        );
    }
}

#[test]
fn health_json_carries_schema_version() {
    let output = brokerctl(&["health", "--json"]);
    let value: Value =
        serde_json::from_str(&String::from_utf8(output.stdout).unwrap()).expect("health JSON");
    assert_eq!(*get(&value, "schema_version"), serde_json::json!(1));
    assert!(get(&value, "health").as_object().is_some());
    assert!(get(&value, "incidents").as_array().is_some());
}

#[test]
fn health_json_validates_against_checked_in_schema() {
    // The richer validator from `uptime_serve::schema` understands the
    // `enum` and strict `additionalProperties: false` keywords this
    // schema relies on.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/health.schema.json"
    );
    let health_schema: Value =
        serde_json::from_str(&std::fs::read_to_string(path).expect("schema file readable"))
            .expect("schema file is valid JSON");
    for seed in ["2", "9"] {
        let output = brokerctl(&["health", "--json", "--chaos", seed]);
        let value: Value =
            serde_json::from_str(&String::from_utf8(output.stdout).unwrap()).expect("health JSON");
        uptime_serve::schema::assert_valid(&value, &health_schema);
    }
    // Clean run too: no chaos, exit code 0, still schema-conformant.
    let output = brokerctl(&["health", "--json"]);
    assert!(output.status.success());
    let value: Value =
        serde_json::from_str(&String::from_utf8(output.stdout).unwrap()).expect("health JSON");
    uptime_serve::schema::assert_valid(&value, &health_schema);
}

#[test]
fn help_documents_exit_codes() {
    let output = brokerctl(&["help"]);
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("Exit codes"));
    for code in ["0", "1", "2", "3"] {
        assert!(
            text.lines().any(|l| l.trim().starts_with(code)),
            "exit code {code} undocumented"
        );
    }
}

#[test]
fn obs_watch_emits_counter_delta_lines() {
    let output = brokerctl(&["obs", "--watch", "0", "--iters", "2"]);
    assert!(output.status.success(), "{output:?}");
    let text = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one JSON line per tick: {text}");
    for (i, line) in lines.iter().enumerate() {
        let value: Value = serde_json::from_str(line).expect("tick line is JSON");
        assert_eq!(
            *get(&value, "tick"),
            serde_json::json!((i + 1) as u64),
            "{line}"
        );
        let deltas = get(&value, "deltas").as_object().expect("deltas object");
        // Every tick drives one recommend, so its counter moves by
        // exactly one; deltas are growth-only and strictly positive.
        assert_eq!(
            deltas.get("broker.recommend.calls"),
            Some(&serde_json::json!(1u64)),
            "{line}"
        );
        assert!(
            deltas.values().all(|v| v.as_u64().is_some_and(|n| n > 0)),
            "deltas must be positive integers: {line}"
        );
    }
}
