//! Property-based tests: the telemetry estimator must recover exactly the
//! parameters implied by hand-constructed traces.

use proptest::prelude::*;
use uptime_broker::TelemetryEstimator;
use uptime_sim::{SimDuration, SimTime, Trace, TraceEventKind};

/// Disjoint (start, len) outage intervals within a horizon.
fn outage_plan() -> impl Strategy<Value = (Vec<(u64, u64)>, u64)> {
    (
        prop::collection::vec((1u64..40_000, 1u64..40_000), 0..20),
        400_000u64..4_000_000,
    )
        .prop_map(|(pairs, horizon)| {
            let mut cursor = 0u64;
            let mut intervals = Vec::new();
            for (gap, len) in pairs {
                let start = cursor + gap;
                intervals.push((start, len));
                cursor = start + len;
            }
            (intervals, horizon.max(cursor + 1))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// P̂ and f̂ computed from a constructed single-node trace equal the
    /// interval arithmetic exactly.
    #[test]
    fn estimator_recovers_constructed_trace((intervals, horizon_ms) in outage_plan()) {
        let mut trace = Trace::new();
        let mut total_down = 0u64;
        for &(start, len) in &intervals {
            trace.record(SimTime::from_millis(start), 0, TraceEventKind::NodeDown { node: 0 });
            trace.record(
                SimTime::from_millis(start + len),
                0,
                TraceEventKind::NodeUp { node: 0 },
            );
            total_down += len;
        }
        let span = SimDuration::from_millis(horizon_ms);
        let est = TelemetryEstimator::new().estimate(&trace, 0, 1, span);

        let expected_p = total_down as f64 / horizon_ms as f64;
        prop_assert!((est.down_probability().value() - expected_p).abs() < 1e-9);

        let node_years = horizon_ms as f64 / (525_600.0 * 60_000.0);
        let expected_f = intervals.len() as f64 / node_years;
        prop_assert!((est.failures_per_year().value() - expected_f).abs() < 1e-6);

        // The reconstructed record merges losslessly with itself.
        let record = est.to_reliability_record();
        let merged = record.merge(&record);
        prop_assert!((merged.down_probability().value() - record.down_probability().value()).abs() < 1e-12);
        prop_assert!((merged.node_years_observed() - 2.0 * record.node_years_observed()).abs() < 1e-9);
    }

    /// Failover estimation averages constructed windows exactly.
    #[test]
    fn estimator_recovers_failover_windows(
        windows in prop::collection::vec((1u64..50_000, 1u64..10_000), 1..12)
    ) {
        let mut trace = Trace::new();
        let mut cursor = 0u64;
        let mut total = 0u64;
        for &(gap, len) in &windows {
            let start = cursor + gap;
            trace.record(SimTime::from_millis(start), 0, TraceEventKind::FailoverStart);
            trace.record(
                SimTime::from_millis(start + len),
                0,
                TraceEventKind::FailoverEnd,
            );
            cursor = start + len;
            total += len;
        }
        let est = TelemetryEstimator::new().estimate(
            &trace,
            0,
            2,
            SimDuration::from_millis(cursor + 1),
        );
        let expected_mean_min = (total as f64 / windows.len() as f64) / 60_000.0;
        let got = est.failover_time().expect("windows were observed").value();
        prop_assert!((got - expected_mean_min).abs() < 1e-9, "got {got} want {expected_mean_min}");
    }
}
