//! Property-based tests: the telemetry estimator must recover exactly the
//! parameters implied by hand-constructed traces, and the estimation +
//! validation pipeline must never panic on corrupted provider batches.

use proptest::prelude::*;
use uptime_broker::{validate_batch, ProviderTelemetry, TelemetryEstimator};
use uptime_sim::{SimDuration, SimTime, Trace, TraceEventKind};

/// Disjoint (start, len) outage intervals within a horizon.
fn outage_plan() -> impl Strategy<Value = (Vec<(u64, u64)>, u64)> {
    (
        prop::collection::vec((1u64..40_000, 1u64..40_000), 0..20),
        400_000u64..4_000_000,
    )
        .prop_map(|(pairs, horizon)| {
            let mut cursor = 0u64;
            let mut intervals = Vec::new();
            for (gap, len) in pairs {
                let start = cursor + gap;
                intervals.push((start, len));
                cursor = start + len;
            }
            (intervals, horizon.max(cursor + 1))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// P̂ and f̂ computed from a constructed single-node trace equal the
    /// interval arithmetic exactly.
    #[test]
    fn estimator_recovers_constructed_trace((intervals, horizon_ms) in outage_plan()) {
        let mut trace = Trace::new();
        let mut total_down = 0u64;
        for &(start, len) in &intervals {
            trace.record(SimTime::from_millis(start), 0, TraceEventKind::NodeDown { node: 0 });
            trace.record(
                SimTime::from_millis(start + len),
                0,
                TraceEventKind::NodeUp { node: 0 },
            );
            total_down += len;
        }
        let span = SimDuration::from_millis(horizon_ms);
        let est = TelemetryEstimator::new().estimate(&trace, 0, 1, span);

        let expected_p = total_down as f64 / horizon_ms as f64;
        prop_assert!((est.down_probability().value() - expected_p).abs() < 1e-9);

        let node_years = horizon_ms as f64 / (525_600.0 * 60_000.0);
        let expected_f = intervals.len() as f64 / node_years;
        prop_assert!((est.failures_per_year().value() - expected_f).abs() < 1e-6);

        // The reconstructed record merges losslessly with itself.
        let record = est.to_reliability_record();
        let merged = record.merge(&record);
        prop_assert!((merged.down_probability().value() - record.down_probability().value()).abs() < 1e-12);
        prop_assert!((merged.node_years_observed() - 2.0 * record.node_years_observed()).abs() < 1e-9);
    }

    /// Failover estimation averages constructed windows exactly.
    #[test]
    fn estimator_recovers_failover_windows(
        windows in prop::collection::vec((1u64..50_000, 1u64..10_000), 1..12)
    ) {
        let mut trace = Trace::new();
        let mut cursor = 0u64;
        let mut total = 0u64;
        for &(gap, len) in &windows {
            let start = cursor + gap;
            trace.record(SimTime::from_millis(start), 0, TraceEventKind::FailoverStart);
            trace.record(
                SimTime::from_millis(start + len),
                0,
                TraceEventKind::FailoverEnd,
            );
            cursor = start + len;
            total += len;
        }
        let est = TelemetryEstimator::new().estimate(
            &trace,
            0,
            2,
            SimDuration::from_millis(cursor + 1),
        );
        let expected_mean_min = (total as f64 / windows.len() as f64) / 60_000.0;
        let got = est.failover_time().expect("windows were observed").value();
        prop_assert!((got - expected_mean_min).abs() < 1e-9, "got {got} want {expected_mean_min}");
    }
}

/// Arbitrary — possibly nonsensical — trace events: out-of-range indices,
/// unpaired downs/ups, orphan failovers, any timestamp order the `Trace`
/// recorder accepts.
fn arbitrary_events() -> impl Strategy<Value = Vec<(u64, usize, u8, usize)>> {
    prop::collection::vec((0u64..5_000_000, 0usize..6, 0u8..4, 0usize..6), 0..40)
}

fn build_trace(events: &[(u64, usize, u8, usize)]) -> Trace {
    let mut trace = Trace::new();
    // Trace::record keeps insertion order; sort by time so construction
    // itself is legal, leaving all *semantic* corruption intact.
    let mut sorted = events.to_vec();
    sorted.sort_by_key(|e| e.0);
    for &(at, cluster, kind, node) in &sorted {
        let kind = match kind {
            0 => TraceEventKind::NodeDown { node },
            1 => TraceEventKind::NodeUp { node },
            2 => TraceEventKind::FailoverStart,
            _ => TraceEventKind::FailoverEnd,
        };
        trace.record(SimTime::from_millis(at), cluster, kind);
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The estimator never panics on corrupted input, whatever garbage a
    /// provider delivers — unpaired events, wild indices, orphan windows.
    #[test]
    fn estimator_never_panics_on_garbage(
        events in arbitrary_events(),
        cluster in 0usize..4,
        nodes in 1u32..5,
        span_ms in 1u64..10_000_000,
    ) {
        let trace = build_trace(&events);
        let est = TelemetryEstimator::new().estimate(
            &trace,
            cluster,
            nodes,
            SimDuration::from_millis(span_ms),
        );
        // Estimates stay in their domains even on garbage.
        let p = est.down_probability().value();
        prop_assert!((0.0..=1.0).contains(&p), "P̂ = {p}");
        prop_assert!(est.failures_per_year().value() >= 0.0);
        prop_assert!(est.node_years() >= 0.0);
    }

    /// The validator never panics either, and always accepts what an
    /// honest single-node capture produces — so chaos mutations of honest
    /// captures (truncation, duplication) are the *only* things it flags.
    #[test]
    fn validator_never_panics_and_accepts_honest_captures(
        events in arbitrary_events(),
        (intervals, horizon_ms) in outage_plan(),
    ) {
        // Garbage: must return a verdict, never panic.
        let garbage = ProviderTelemetry {
            trace: build_trace(&events),
            nodes_per_cluster: 2,
            clusters: 3,
            span: SimDuration::from_millis(5_000_000),
        };
        let _ = validate_batch(&garbage);

        // Honest capture: always accepted.
        let mut trace = Trace::new();
        for &(start, len) in &intervals {
            trace.record(SimTime::from_millis(start), 0, TraceEventKind::NodeDown { node: 0 });
            trace.record(
                SimTime::from_millis(start + len),
                0,
                TraceEventKind::NodeUp { node: 0 },
            );
        }
        let honest = ProviderTelemetry {
            trace,
            nodes_per_cluster: 1,
            clusters: 1,
            span: SimDuration::from_millis(horizon_ms),
        };
        prop_assert_eq!(validate_batch(&honest), Ok(()));

        // Truncating the capture mid-outage orphans a NodeUp; duplicating
        // a NodeDown double-fails the node. Both must be flagged.
        if !intervals.is_empty() {
            let mut truncated = honest.clone();
            let events: Vec<_> = truncated.trace.events()[1..].to_vec();
            let mut rebuilt = Trace::new();
            for e in events {
                rebuilt.record(e.at, e.cluster, e.kind);
            }
            truncated.trace = rebuilt;
            prop_assert!(validate_batch(&truncated).is_err(), "orphan NodeUp accepted");

            let mut duplicated = honest.clone();
            let mut rebuilt = Trace::new();
            let events = duplicated.trace.events().to_vec();
            rebuilt.record(events[0].at, events[0].cluster, events[0].kind);
            for e in &events {
                rebuilt.record(e.at, e.cluster, e.kind);
            }
            duplicated.trace = rebuilt;
            prop_assert!(validate_batch(&duplicated).is_err(), "double NodeDown accepted");
        }
    }
}
