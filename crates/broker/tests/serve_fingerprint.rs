//! Properties of the serving layer's cache key and invalidation signal:
//!
//! * `canonical_fingerprint` hashes *parsed* requests, so semantically
//!   equal JSON spellings (float formatting, omitted-vs-explicit default
//!   fields) key identically, while every semantic field — including
//!   tier order, which is load-bearing for the chain model — changes the
//!   key;
//! * the telemetry epoch moves exactly when the knowledge base absorbs a
//!   batch (`P̂`/`f̂`/rate inputs change) and never on reads or rejected
//!   batches, so epoch-equality is a sound cache-validity test.

use proptest::prelude::*;
use uptime_broker::{canonical_fingerprint, BrokerService, ProviderTelemetry, SolutionRequest};
use uptime_catalog::{case_study, CloudId, ComponentKind, HaMethodId};
use uptime_core::sla::PenaltyTier;
use uptime_core::{PenaltyClause, RoundingPolicy};
use uptime_sim::{SimDuration, SimTime, Trace, TraceEventKind};

/// Name pool for generated cloud / as-is identifiers (the vendored
/// proptest has no string strategies; indices into this pool stand in).
const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

const KINDS: [ComponentKind; 6] = [
    ComponentKind::Compute,
    ComponentKind::Storage,
    ComponentKind::NetworkGateway,
    ComponentKind::Database,
    ComponentKind::LoadBalancer,
    ComponentKind::Cache,
];

/// A structured recipe for a `SolutionRequest`, built so proptest can
/// both construct the request and re-spell its JSON.
#[derive(Debug, Clone)]
struct Recipe {
    tiers: Vec<usize>,
    sla_percent: f64,
    per_hour: bool,
    rate: f64,
    tier_rates: Vec<(f64, f64)>,
    rounding: u8,
    clouds: Vec<String>,
    as_is: Option<Vec<String>>,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        prop::collection::vec(0usize..KINDS.len(), 1..5),
        90.0f64..99.99,
        any::<bool>(),
        0.01f64..10_000.0,
        prop::collection::vec((1.0f64..100.0, 0.01f64..1_000.0), 1..4),
        0u8..3,
        prop::collection::vec(0usize..NAMES.len(), 0..3),
        (
            any::<bool>(),
            prop::collection::vec(0usize..NAMES.len(), 4..5),
        ),
    )
        .prop_map(
            |(tiers, sla_percent, per_hour, rate, raw_tiers, rounding, clouds, as_is)| {
                let clouds = clouds.into_iter().map(|i| NAMES[i].to_owned()).collect();
                // An as-is inventory must name exactly one method per tier.
                let as_is = if as_is.0 {
                    Some(
                        as_is.1[..tiers.len()]
                            .iter()
                            .map(|&i| NAMES[i].to_owned())
                            .collect(),
                    )
                } else {
                    None
                };
                // Tiered clauses need strictly ascending cumulative bounds.
                let mut cursor = 0.0;
                let tier_rates = raw_tiers
                    .into_iter()
                    .map(|(span, rate)| {
                        cursor += span;
                        (cursor, rate)
                    })
                    .collect();
                Recipe {
                    tiers,
                    sla_percent,
                    per_hour,
                    rate,
                    tier_rates,
                    rounding,
                    clouds,
                    as_is,
                }
            },
        )
}

fn build(recipe: &Recipe) -> SolutionRequest {
    let mut builder = SolutionRequest::builder()
        .tiers(recipe.tiers.iter().map(|&i| KINDS[i]))
        .sla_percent(recipe.sla_percent)
        .expect("strategy keeps sla in range");
    builder = if recipe.per_hour {
        builder
            .penalty_per_hour(recipe.rate)
            .expect("strategy keeps rate positive")
    } else {
        builder.penalty(PenaltyClause::Tiered {
            tiers: recipe
                .tier_rates
                .iter()
                .map(|&(up_to_hours, rate)| PenaltyTier { up_to_hours, rate })
                .collect(),
        })
    };
    builder = builder.rounding(match recipe.rounding {
        0 => RoundingPolicy::Exact,
        1 => RoundingPolicy::NearestHour,
        _ => RoundingPolicy::CeilHour,
    });
    for cloud in &recipe.clouds {
        builder = builder.cloud(CloudId::new(cloud.clone()));
    }
    if let Some(methods) = &recipe.as_is {
        builder = builder.as_is(methods.iter().map(|m| HaMethodId::new(m.clone())));
    }
    builder.build().expect("strategy builds valid requests")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The fingerprint is a pure function of the parsed request: a JSON
    /// round-trip (which re-spells floats and re-orders nothing
    /// semantic) keys identically.
    #[test]
    fn fingerprint_survives_json_round_trip(recipe in recipe()) {
        let request = build(&recipe);
        let reparsed: SolutionRequest =
            serde_json::from_value(&serde_json::to_value(&request)).expect("round-trips");
        prop_assert_eq!(&request, &reparsed);
        prop_assert_eq!(
            canonical_fingerprint("recommend", &request),
            canonical_fingerprint("recommend", &reparsed)
        );
        // ... but the same request under a different endpoint keys apart.
        prop_assert_ne!(
            canonical_fingerprint("recommend", &request),
            canonical_fingerprint("metacloud", &request)
        );
    }

    /// Every semantic mutation moves the fingerprint: SLA, penalty rate,
    /// rounding, cloud whitelist, and as-is inventory are all part of the
    /// key; tier *order* is preserved (the chain model is order-aware).
    #[test]
    fn fingerprint_separates_semantic_mutations(recipe in recipe()) {
        let base = build(&recipe);
        let fp = canonical_fingerprint("recommend", &base);

        let mut sla_moved = recipe.clone();
        sla_moved.sla_percent = (sla_moved.sla_percent + 0.001).min(99.999);
        prop_assert_ne!(fp, canonical_fingerprint("recommend", &build(&sla_moved)));

        let mut rate_moved = recipe.clone();
        rate_moved.rate += 0.5;
        rate_moved.tier_rates[0].1 += 0.5;
        prop_assert_ne!(fp, canonical_fingerprint("recommend", &build(&rate_moved)));

        let mut rounding_moved = recipe.clone();
        rounding_moved.rounding = (rounding_moved.rounding + 1) % 3;
        prop_assert_ne!(fp, canonical_fingerprint("recommend", &build(&rounding_moved)));

        let mut cloud_added = recipe.clone();
        cloud_added.clouds.push("zzz-extra".into());
        prop_assert_ne!(fp, canonical_fingerprint("recommend", &build(&cloud_added)));

        let mut as_is_moved = recipe.clone();
        as_is_moved.as_is = match as_is_moved.as_is {
            None => Some(vec!["zzz-extra".to_owned(); recipe.tiers.len()]),
            Some(mut methods) => {
                methods[0] = format!("{}-moved", methods[0]);
                Some(methods)
            }
        };
        prop_assert_ne!(fp, canonical_fingerprint("recommend", &build(&as_is_moved)));

        if recipe.tiers.len() >= 2 && recipe.tiers[0] != recipe.tiers[1] {
            let mut swapped = recipe.clone();
            swapped.tiers.swap(0, 1);
            // Tier order is semantic and must be preserved in the key.
            prop_assert_ne!(fp, canonical_fingerprint("recommend", &build(&swapped)));
        }
    }
}

/// JSON spellings the wire can legitimately produce for the *same*
/// request: scientific notation floats, omitted defaultable fields, and
/// explicitly-spelled defaults all parse to one fingerprint.
#[test]
fn json_spelling_variants_key_identically() {
    let canonical: SolutionRequest = serde_json::from_str(
        r#"{
            "tiers": ["Compute", "Storage", "NetworkGateway"],
            "sla": {"target": 0.98},
            "penalty": {"PerHour": {"rate": 100.0}},
            "rounding": "CeilHour",
            "clouds": []
        }"#,
    )
    .expect("canonical spelling parses");
    let variants = [
        // Scientific-notation floats.
        r#"{
            "tiers": ["Compute", "Storage", "NetworkGateway"],
            "sla": {"target": 9.8e-1},
            "penalty": {"PerHour": {"rate": 1e2}},
            "rounding": "CeilHour",
            "clouds": []
        }"#,
        // Defaultable fields omitted entirely.
        r#"{
            "tiers": ["Compute", "Storage", "NetworkGateway"],
            "sla": {"target": 0.98},
            "penalty": {"PerHour": {"rate": 100}}
        }"#,
    ];
    let fp = canonical_fingerprint("recommend", &canonical);
    for text in variants {
        let variant: SolutionRequest = serde_json::from_str(text).expect("variant parses");
        assert_eq!(variant, canonical, "spellings parse to the same request");
        assert_eq!(fp, canonical_fingerprint("recommend", &variant));
    }
}

// ---------------------------------------------------------------------------
// Telemetry-epoch soundness
// ---------------------------------------------------------------------------

/// An honest single-node capture built from disjoint outage intervals —
/// always passes validation and (for modest downtime) the plausibility
/// gate.
fn honest_batch(intervals: &[(u64, u64)], horizon_ms: u64) -> ProviderTelemetry {
    let mut trace = Trace::new();
    for &(start, len) in intervals {
        trace.record(
            SimTime::from_millis(start),
            0,
            TraceEventKind::NodeDown { node: 0 },
        );
        trace.record(
            SimTime::from_millis(start + len),
            0,
            TraceEventKind::NodeUp { node: 0 },
        );
    }
    ProviderTelemetry {
        trace,
        nodes_per_cluster: 1,
        clusters: 1,
        span: SimDuration::from_millis(horizon_ms),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The epoch moves by exactly one per absorbed batch — whatever the
    /// batch contents — and not at all on reads, unknown clouds, or
    /// structurally-rejected batches. Epoch-equality therefore certifies
    /// that `P̂`/`f̂`/`t̂` inputs are unchanged.
    #[test]
    fn epoch_moves_exactly_on_absorbs(
        plans in prop::collection::vec(
            (prop::collection::vec((1u64..200_000, 1u64..5_000), 0..6), 0u8..2),
            1..6,
        ),
    ) {
        let store = case_study::catalog();
        let broker = BrokerService::new(store.clone());
        let clouds: Vec<CloudId> = store.cloud_ids().cloned().collect();
        prop_assert!(!clouds.is_empty());
        prop_assert_eq!(broker.telemetry_epoch(), 0);

        let request = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0).unwrap()
            .penalty_per_hour(100.0).unwrap()
            .build().unwrap();

        let mut expected = 0u64;
        for (i, (intervals, cloud_pick)) in plans.iter().enumerate() {
            let cloud = &clouds[*cloud_pick as usize % clouds.len()];
            // Spread intervals so each batch is a year-scale observation:
            // the implied P̂ stays tiny and plausible.
            let horizon = 40_000_000 + (i as u64) * 1_000_000;
            let batch = honest_batch(intervals, horizon);
            if broker
                .ingest_component_telemetry(cloud, ComponentKind::Compute, &batch)
                .is_ok()
            {
                expected += 1;
            }
            prop_assert_eq!(broker.telemetry_epoch(), expected);

            // Reads never move the epoch.
            let _ = broker.recommend(&request);
            prop_assert_eq!(broker.telemetry_epoch(), expected);
        }

        // A structurally-invalid batch (orphan NodeUp) is quarantined and
        // must leave the epoch untouched.
        let mut trace = Trace::new();
        trace.record(SimTime::from_millis(5), 0, TraceEventKind::NodeUp { node: 0 });
        let bad = ProviderTelemetry {
            trace,
            nodes_per_cluster: 1,
            clusters: 1,
            span: SimDuration::from_millis(1_000_000),
        };
        prop_assert!(broker
            .ingest_component_telemetry(&clouds[0], ComponentKind::Compute, &bad)
            .is_err());
        prop_assert_eq!(broker.telemetry_epoch(), expected);

        // An unknown cloud is rejected before the catalog write.
        let good = honest_batch(&[], 40_000_000);
        prop_assert!(broker
            .ingest_component_telemetry(
                &CloudId::new("no-such-cloud"),
                ComponentKind::Compute,
                &good,
            )
            .is_err());
        prop_assert_eq!(broker.telemetry_epoch(), expected);
    }
}
