//! The crash-only contract, end to end: a `brokerctl serve --state-dir`
//! daemon is SIGKILLed mid-stream, its state directory is mangled by a
//! seeded disk fault, and a restarted daemon must answer recommend,
//! epoch and incident queries **bit-identically** to an uninterrupted
//! in-process reference broker driven through the same surviving
//! telemetry — for every fault in the `DiskChaos` repertoire (seeds
//! 0–4: clean stop, torn tail, short write, bit flip, missing
//! snapshot).
//!
//! Also pins the on-disk contracts: every record payload in a real
//! journal and the snapshot manifest must validate against the
//! checked-in JSON schemas.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use serde::Value;
use uptime_broker::{
    BrokerService, DurabilityConfig, GroundTruth, ServingBroker, SimulatedProvider, SolutionRequest,
};
use uptime_catalog::{case_study, CatalogStore, CloudId, ComponentKind};
use uptime_durability::{decode_all, DiskChaos, StateDir};
use uptime_serve::ServeBackend;

/// Awaited sync rounds before the kill; one more is fired un-awaited.
const ROUNDS: u64 = 3;

fn scratch_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("uptime-recovery-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn case_study_request() -> SolutionRequest {
    SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(case_study::SLA_PERCENT)
        .expect("valid SLA")
        .penalty_per_hour(case_study::PENALTY_PER_HOUR)
        .expect("valid penalty")
        .build()
        .expect("valid request")
}

/// Mirrors `brokerctl`'s provider registration: one clean simulated
/// provider per catalog cloud, ground truth from the catalog's own
/// records. Returns each cloud's observed component kinds in catalog
/// order — the daemon's sync targets.
fn register_providers(
    broker: &BrokerService,
    store: &CatalogStore,
) -> Vec<(CloudId, Vec<ComponentKind>)> {
    let mut targets = Vec::new();
    for id in store.cloud_ids() {
        let profile = store.cloud(id).expect("listed id resolves");
        let mut provider = SimulatedProvider::new(id.clone(), profile.display_name());
        let mut kinds = Vec::new();
        for kind in profile.observed_components() {
            let record = profile.reliability(kind).expect("observed");
            provider = provider.with_ground_truth(
                kind,
                GroundTruth {
                    down_probability: record.down_probability(),
                    failures_per_year: record.failures_per_year(),
                },
            );
            kinds.push(kind);
        }
        broker.register_provider(Box::new(provider));
        targets.push((id.clone(), kinds));
    }
    targets
}

/// The per-round seed the test sends in each sync frame's body.
fn round_seed(fault_seed: u64, round: u64) -> u64 {
    90_000 + fault_seed * 101 + round * 7919
}

/// The flattened `sync_telemetry` call plan a daemon executes when fed
/// [`ROUNDS`]`+1` sync frames — one `(cloud, kind, seed)` per epoch
/// bump, in exact order (mirrors `ServingBroker::sync_body`).
fn sync_plan(
    targets: &[(CloudId, Vec<ComponentKind>)],
    fault_seed: u64,
) -> Vec<(CloudId, ComponentKind, u64)> {
    let mut plan = Vec::new();
    for round in 0..=ROUNDS {
        let seed = round_seed(fault_seed, round);
        for (cloud, kinds) in targets {
            for (k, kind) in kinds.iter().enumerate() {
                plan.push((cloud.clone(), *kind, seed.wrapping_add(k as u64 * 31)));
            }
        }
    }
    plan
}

struct Daemon {
    child: Child,
    addr: String,
    // Kept open so the daemon's prints never hit a closed pipe.
    stdout: BufReader<std::process::ChildStdout>,
}

fn spawn_daemon(state_dir: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_brokerctl"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--state-dir",
            state_dir.to_str().expect("utf-8 path"),
            "--snapshot-every",
            "5",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut addr = None;
    for _ in 0..32 {
        let mut line = String::new();
        if stdout.read_line(&mut line).expect("daemon stdout") == 0 {
            break;
        }
        if let Some(rest) = line.split("listening on ").nth(1) {
            addr = Some(rest.split_whitespace().next().expect("addr").to_owned());
            break;
        }
    }
    Daemon {
        child,
        addr: addr.expect("daemon printed its listen address"),
        stdout,
    }
}

impl Daemon {
    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("client read timeout");
        stream
    }

    fn shutdown(mut self) {
        let mut stream = self.connect();
        let _ = rpc(&mut stream, r#"{"id":99,"endpoint":"shutdown","body":{}}"#);
        let _ = self.child.wait();
        // Drain any farewell prints.
        let mut rest = String::new();
        use std::io::Read;
        let _ = self.stdout.read_to_string(&mut rest);
    }
}

fn rpc(stream: &mut TcpStream, line: &str) -> Value {
    stream.write_all(line.as_bytes()).expect("write frame");
    stream.write_all(b"\n").expect("write newline");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    serde_json::from_str(&response).expect("response parses")
}

fn get<'a>(value: &'a Value, key: &str) -> &'a Value {
    value
        .get(key)
        .unwrap_or_else(|| panic!("missing key `{key}` in {value}"))
}

/// One full kill-mangle-recover cycle under the given disk-fault seed.
fn kill_and_recover_under_fault(fault_seed: u64) {
    let dir = scratch_dir(&format!("fault{fault_seed}"));
    let store = case_study::catalog();

    // Phase 1: a durable daemon absorbs telemetry, then dies by SIGKILL
    // with one sync still in flight.
    let daemon = spawn_daemon(&dir);
    let mut stream = daemon.connect();
    for round in 0..ROUNDS {
        let frame = format!(
            r#"{{"id":{round},"endpoint":"sync","body":{{"seed":{}}}}}"#,
            round_seed(fault_seed, round)
        );
        let response = rpc(&mut stream, &frame);
        assert_eq!(
            get(get(&response, "body"), "rejected").as_u64(),
            Some(0),
            "clean providers never reject"
        );
    }
    let in_flight = format!(
        r#"{{"id":{ROUNDS},"endpoint":"sync","body":{{"seed":{}}}}}"#,
        round_seed(fault_seed, ROUNDS)
    );
    stream.write_all(in_flight.as_bytes()).expect("write frame");
    stream.write_all(b"\n").expect("write newline");
    std::thread::sleep(Duration::from_millis(30));
    let mut child = daemon.child;
    child.kill().expect("SIGKILL the daemon");
    let _ = child.wait();
    drop(stream);

    // Phase 2: mangle the state directory with the seeded disk fault.
    let state_dir = StateDir::create(&dir).expect("state dir exists");
    let fault = DiskChaos::new(fault_seed)
        .mangle(&state_dir)
        .expect("mangle");

    // Phase 3: a dry-run recovery discovers what survived — without
    // touching the files the restarted daemon will read.
    let probe = BrokerService::new(store.clone());
    let report = probe.verify_recovery(&dir).expect("verify recovery");
    assert!(
        !report.repaired,
        "--verify-style dry run leaves the journal alone"
    );
    let survivors = report.epoch;
    let expected_incidents = u64::from(report.truncation.is_some());

    // Phase 4: the uninterrupted reference — same catalog, same
    // providers, driven through exactly the surviving call prefix.
    let reference = BrokerService::new(store.clone());
    let targets = register_providers(&reference, &store);
    let plan = sync_plan(&targets, fault_seed);
    assert!(
        (survivors as usize) <= plan.len(),
        "recovered epoch {survivors} cannot exceed the {} calls driven",
        plan.len()
    );
    for (cloud, kind, seed) in plan.iter().take(survivors as usize) {
        reference
            .sync_telemetry(cloud, *kind, 20, 5.0, *seed)
            .expect("clean sync absorbs");
    }
    assert_eq!(reference.telemetry_epoch(), survivors);
    let request_body = serde_json::to_value(&case_study_request());
    let ref_backend = ServingBroker::new(Arc::new(reference));
    let ref_recommendation = ref_backend
        .handle("recommend", &request_body)
        .expect("reference recommend");

    // Phase 5: restart the real daemon from the mangled directory and
    // compare every externally observable answer bit for bit.
    let daemon = spawn_daemon(&dir);
    let mut stream = daemon.connect();
    let health = rpc(&mut stream, r#"{"id":1,"endpoint":"health","body":{}}"#);
    let health_body = get(&health, "body");
    assert_eq!(
        get(health_body, "epoch").as_u64(),
        Some(survivors),
        "fault {fault} (seed {fault_seed}): epoch must match the reference"
    );
    assert_eq!(
        get(get(health_body, "health"), "incident_count").as_u64(),
        Some(expected_incidents),
        "fault {fault} (seed {fault_seed}): exactly one JournalTruncated incident per torn tail"
    );

    let recommend_frame = format!(
        r#"{{"id":2,"endpoint":"recommend","body":{}}}"#,
        serde_json::to_string(&request_body).expect("request serializes")
    );
    let recommend = rpc(&mut stream, &recommend_frame);
    assert_eq!(
        get(&recommend, "code").as_u64(),
        Some(200),
        "fault {fault} (seed {fault_seed}): recovered daemon recommends"
    );
    assert_eq!(
        get(&recommend, "body"),
        &ref_recommendation,
        "fault {fault} (seed {fault_seed}): recommendation must be bit-identical"
    );
    assert_eq!(
        get(&recommend, "epoch").as_u64(),
        Some(survivors),
        "fault {fault} (seed {fault_seed}): answer computed under the recovered epoch"
    );

    drop(stream);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_recover_is_bit_identical_across_disk_faults() {
    // Seeds 0–4 cover the whole DiskChaos fault repertoire.
    for fault_seed in 0..5 {
        kill_and_recover_under_fault(fault_seed);
    }
}

/// Every payload in a real journal written by a durable broker must
/// validate against `schemas/journal_record.schema.json`, and the
/// snapshot manifest against `schemas/snapshot_manifest.schema.json`.
#[test]
fn journal_and_manifest_match_checked_in_schemas() {
    let dir = scratch_dir("schemas");
    let store = case_study::catalog();
    let (broker, _) = BrokerService::new(store.clone())
        .with_durability(DurabilityConfig::new(&dir))
        .expect("durability attaches");
    let targets = register_providers(&broker, &store);
    for (cloud, kinds) in &targets {
        for (k, kind) in kinds.iter().enumerate() {
            broker
                .sync_telemetry(cloud, *kind, 20, 5.0, 4242 + k as u64)
                .expect("clean sync absorbs");
        }
    }
    broker.snapshot_now().expect("snapshot persists");

    let load_schema = |name: &str| -> Value {
        let path = format!("{}/../../schemas/{name}", env!("CARGO_MANIFEST_DIR"));
        serde_json::from_str(&std::fs::read_to_string(path).expect("schema file readable"))
            .expect("schema is valid JSON")
    };

    let record_schema = load_schema("journal_record.schema.json");
    let journal = std::fs::read(dir.join("journal.log")).expect("journal readable");
    let decoded = decode_all(&journal);
    assert!(decoded.truncation.is_none(), "live journal is whole");
    assert!(!decoded.payloads.is_empty(), "journal has records");
    for payload in &decoded.payloads {
        let entry: Value = serde_json::from_slice(payload).expect("payload is JSON");
        uptime_serve::schema::assert_valid(&entry, &record_schema);
    }

    let manifest_schema = load_schema("snapshot_manifest.schema.json");
    let manifest: Value = serde_json::from_str(
        &std::fs::read_to_string(dir.join("snapshot.manifest")).expect("manifest readable"),
    )
    .expect("manifest is JSON");
    uptime_serve::schema::assert_valid(&manifest, &manifest_schema);

    let _ = std::fs::remove_dir_all(&dir);
}
