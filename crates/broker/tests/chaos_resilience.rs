//! End-to-end chaos test: a [`BrokerService`] fronting a misbehaving
//! provider must stay useful.
//!
//! With the aggressive fault mix (≥20 % of calls disrupted) the broker
//! must (a) still converge its catalog toward the provider's ground
//! truth, (b) never absorb a quarantined batch, (c) keep serving
//! recommendations — degraded-annotated while the breaker is open — and
//! (d) behave identically for identical seeds.

use uptime_broker::{
    BreakerState, BrokerError, BrokerService, ChaosConfig, ChaosProvider, GroundTruth,
    IncidentCategory, SimulatedProvider,
};
use uptime_catalog::{case_study, ComponentKind};
use uptime_core::{FailuresPerYear, Probability};

const GROUND_TRUTH_P: f64 = 0.10;
const ROUNDS: u64 = 15;

fn chaotic_broker(config: ChaosConfig) -> BrokerService {
    let provider = SimulatedProvider::new(case_study::cloud_id(), "chaotic sim").with_ground_truth(
        ComponentKind::Storage,
        GroundTruth {
            down_probability: Probability::new(GROUND_TRUTH_P).unwrap(),
            failures_per_year: FailuresPerYear::new(4.0).unwrap(),
        },
    );
    let broker = BrokerService::new(case_study::catalog());
    broker.register_provider(Box::new(ChaosProvider::new(provider, config)));
    broker
}

fn storage_p(broker: &BrokerService) -> f64 {
    broker
        .catalog_snapshot()
        .cloud(&case_study::cloud_id())
        .unwrap()
        .reliability(ComponentKind::Storage)
        .unwrap()
        .down_probability()
        .value()
}

fn paper_request() -> uptime_broker::SolutionRequest {
    uptime_broker::SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(98.0)
        .unwrap()
        .penalty_per_hour(100.0)
        .unwrap()
        .cloud(case_study::cloud_id())
        .build()
        .unwrap()
}

/// Drives `ROUNDS` sync rounds and returns a per-round outcome tag.
fn drive(broker: &BrokerService, seed: u64) -> Vec<String> {
    (0..ROUNDS)
        .map(|round| {
            match broker.sync_telemetry(
                &case_study::cloud_id(),
                ComponentKind::Storage,
                40,
                10.0,
                seed.wrapping_mul(1000) + round,
            ) {
                Ok(est) => format!("ok:{:.6}", est.down_probability().value()),
                Err(err) => format!("err:{err}"),
            }
        })
        .collect()
}

#[test]
fn broker_converges_despite_aggressive_chaos() {
    let broker = chaotic_broker(ChaosConfig::aggressive(42));
    let before = storage_p(&broker);
    assert!((before - 0.05).abs() < 1e-9, "case-study prior");

    let outcomes = drive(&broker, 42);
    let absorbed = outcomes.iter().filter(|o| o.starts_with("ok:")).count();
    let rejected = outcomes.len() - absorbed;
    assert!(
        absorbed >= 5,
        "need enough clean batches to converge, got {absorbed}: {outcomes:?}"
    );
    assert!(
        rejected >= 1,
        "the aggressive mix must actually disrupt something: {outcomes:?}"
    );

    // Catalog converged toward the 10 % ground truth.
    let after = storage_p(&broker);
    assert!(
        (after - GROUND_TRUTH_P).abs() < 0.02,
        "catalog P̂ = {after}, want ≈ {GROUND_TRUTH_P}"
    );

    // Bookkeeping matches the outcome tally exactly: nothing quarantined
    // was absorbed, nothing absorbed was quarantined.
    let health = broker.health();
    assert_eq!(health.providers[0].batches_absorbed, absorbed as u64);
    let provider_faults = broker
        .incidents()
        .iter()
        .filter(|i| i.category == IncidentCategory::ProviderFault)
        .count();
    assert_eq!(
        health.providers[0].batches_quarantined as usize + provider_faults,
        rejected,
        "every failed round is either a quarantine or a provider fault"
    );
}

#[test]
fn quarantined_batches_never_reach_the_catalog() {
    // Every single batch is corrupted: the catalog must not move at all.
    let broker = chaotic_broker(ChaosConfig::quiet(7).with_corrupt_rate(1.0));
    let before = storage_p(&broker);
    let outcomes = drive(&broker, 7);
    assert!(
        outcomes
            .iter()
            .all(|o| o.contains("telemetry batch rejected")),
        "{outcomes:?}"
    );
    assert_eq!(storage_p(&broker), before, "catalog must be untouched");
    let health = broker.health();
    assert_eq!(health.providers[0].batches_absorbed, 0);
    assert_eq!(health.providers[0].batches_quarantined, ROUNDS);
    assert!(health.degraded, "a fully-quarantined stream is degraded");
}

#[test]
fn open_breaker_degrades_recommendations_but_keeps_answering() {
    // Every harvest times out: retries exhaust, the breaker trips, and
    // recommendations keep flowing from the stale catalog, annotated.
    let broker = chaotic_broker(ChaosConfig::quiet(3).with_harvest_timeout_rate(1.0));
    for round in 0..4u64 {
        let err = broker
            .sync_telemetry(
                &case_study::cloud_id(),
                ComponentKind::Storage,
                40,
                10.0,
                round,
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                BrokerError::Timeout { .. } | BrokerError::CircuitOpen { .. }
            ),
            "{err}"
        );
    }
    let health = broker.health();
    assert_eq!(health.providers[0].state, BreakerState::Open);
    assert!(health.degraded);
    assert!(broker
        .incidents()
        .iter()
        .any(|i| i.category == IncidentCategory::BreakerOpened));

    let rec = broker.recommend(&paper_request()).unwrap();
    assert!(rec.is_degraded());
    assert_eq!(
        rec.degraded().unwrap().stale_clouds,
        vec![case_study::cloud_id()]
    );
    // The degraded answer is still the exact Fig. 10 answer.
    assert_eq!(rec.clouds()[0].best().option_number(), 3);
    assert_eq!(
        rec.clouds()[0].best().evaluation().tco().total().value(),
        1250.0
    );

    let meta = broker.recommend_metacloud(&paper_request()).unwrap();
    assert!(meta.is_degraded());
}

#[test]
fn identical_seeds_identical_behavior() {
    let run = |seed: u64| {
        let broker = chaotic_broker(ChaosConfig::aggressive(seed));
        let outcomes = drive(&broker, seed);
        let incidents: Vec<(u64, IncidentCategory)> = broker
            .incidents()
            .iter()
            .map(|i| (i.seq, i.category))
            .collect();
        let health = broker.health();
        (
            outcomes,
            incidents,
            format!("{:.12}", storage_p(&broker)),
            serde_json::to_string(&health).unwrap(),
        )
    };
    let a = run(1234);
    let b = run(1234);
    assert_eq!(a, b, "identical seeds must replay identically");
    let c = run(5678);
    assert_ne!(
        a.0, c.0,
        "different seeds should produce a different fault schedule"
    );
}
