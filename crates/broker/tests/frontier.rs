//! End-to-end checks of the PR 9 SLO frontier path (`solve_slo` and the
//! `frontier` serve endpoint):
//!
//! * both search engines answer bit-identically, on serial chains AND
//!   archetype composition spaces;
//! * the served endpoint's bytes equal a direct `solve_slo` call, and
//!   stay bit-identical across a telemetry-epoch bump that does not
//!   touch the requested cloud (the report carries no epoch);
//! * hard constraints shape the frontier (cost caps truncate it) and an
//!   unsatisfiable spec surfaces `BrokerError::SloInfeasible`;
//! * soft objectives pick the recommended point.

use std::sync::Arc;

use serde::{Deserialize, Value};
use uptime_broker::{
    BrokerError, BrokerService, FrontierRequest, ProviderTelemetry, SearchEngine, ServingBroker,
    SolutionRequest,
};
use uptime_catalog::{case_study, extended, ComponentKind};
use uptime_serve::ServeBackend;
use uptime_sim::{SimDuration, SimTime, Trace, TraceEventKind};
use uptime_slo::SloSpec;

fn spec(json: &str) -> SloSpec {
    SloSpec::from_json_str(json).unwrap()
}

/// A paper-tier request against the case-study cloud with the given spec.
fn paper_request(slo: &str) -> FrontierRequest {
    FrontierRequest::from_spec(
        SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .penalty_per_hour(100.0)
            .unwrap(),
        spec(slo),
    )
    .unwrap()
}

const BASIC_SPEC: &str = r#"{ "objectives": [
    { "metric": "uptime", "threshold": 92.0, "mode": "hard" },
    { "metric": "cost", "threshold": 1000.0, "mode": "soft", "weight": 1.0 }
] }"#;

#[test]
fn engines_answer_bit_identically_serial_and_archetype() {
    let serial = paper_request(BASIC_SPEC);
    let archetype = FrontierRequest::from_spec(
        SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .penalty_per_hour(100.0)
            .unwrap()
            .topology("zonal"),
        spec(BASIC_SPEC),
    )
    .unwrap();

    for request in [&serial, &archetype] {
        let exhaustive = BrokerService::new(case_study::catalog())
            .with_engine(SearchEngine::Exhaustive)
            .solve_slo(request)
            .unwrap();
        let bnb = BrokerService::new(case_study::catalog())
            .with_engine(SearchEngine::BranchBound)
            .solve_slo(request)
            .unwrap();
        // Engine label and search stats differ by construction;
        // everything the customer acts on — the serialized point lists
        // and recommendations — must be byte-equal.
        assert_eq!(exhaustive.clouds().len(), bnb.clouds().len());
        for (a, b) in exhaustive.clouds().iter().zip(bnb.clouds()) {
            assert_eq!(a.cloud(), b.cloud());
            assert_eq!(a.recommended_index(), b.recommended_index());
            assert_eq!(
                serde_json::to_value(a.points()),
                serde_json::to_value(b.points()),
                "engines disagreed (topology: {:?})",
                request.base().topology()
            );
        }
    }
}

#[test]
fn paper_frontier_points_and_recommendation() {
    let report = BrokerService::new(case_study::catalog())
        .solve_slo(&paper_request(BASIC_SPEC))
        .unwrap();
    assert_eq!(report.schema_version(), 1);
    assert_eq!(report.target_uptime_percent(), 92.0);
    let cloud = &report.clouds()[0];
    // The paper's unconstrained frontier is $0 / $350 / $1350 / $3550;
    // the 92% hard floor keeps all four (the free option sits at 92.17%).
    let costs: Vec<f64> = cloud.points().iter().map(|p| p.cost_per_month()).collect();
    assert_eq!(costs, vec![0.0, 350.0, 1350.0, 3550.0]);
    for (i, point) in cloud.points().iter().enumerate() {
        assert_eq!(point.rank(), i + 1);
        assert_eq!(point.labels().len(), 3);
        assert_eq!(point.method_ids().len(), 3);
    }
    // Soft cost cap $1000: $0 and $350 score 0; the tie resolves to the
    // cheaper point, the free deployment.
    let pick = cloud.recommended().unwrap();
    assert_eq!(pick.cost_per_month(), 0.0);
    assert_eq!(pick.soft_score(), 0.0);
    let best = report.best().unwrap();
    assert_eq!(best.1.cost_per_month(), 0.0);
}

#[test]
fn hard_cost_cap_truncates_the_frontier() {
    let capped = paper_request(
        r#"{ "objectives": [
            { "metric": "uptime", "threshold": 92.0, "mode": "hard" },
            { "metric": "cost", "threshold": 500.0, "mode": "hard" }
        ] }"#,
    );
    let report = BrokerService::new(case_study::catalog())
        .solve_slo(&capped)
        .unwrap();
    let costs: Vec<f64> = report.clouds()[0]
        .points()
        .iter()
        .map(|p| p.cost_per_month())
        .collect();
    assert_eq!(costs, vec![0.0, 350.0], "points above the cap must drop");
}

#[test]
fn unsatisfiable_spec_is_a_typed_infeasibility() {
    let impossible = paper_request(
        r#"{ "objectives": [
            { "metric": "uptime", "threshold": 99.999, "mode": "hard" },
            { "metric": "cost", "threshold": 1.0, "mode": "hard" }
        ] }"#,
    );
    let err = BrokerService::new(case_study::catalog())
        .solve_slo(&impossible)
        .unwrap_err();
    let BrokerError::SloInfeasible { reason } = err else {
        panic!("expected SloInfeasible, got {err}");
    };
    assert!(reason.contains("99.999"), "{reason}");
    assert!(reason.contains("$1"), "{reason}");
}

/// A year-scale single-node observation with one short outage: always
/// structurally valid and plausible, so absorbing it bumps the epoch.
fn honest_batch() -> ProviderTelemetry {
    let mut trace = Trace::new();
    trace.record(
        SimTime::from_millis(50_000),
        0,
        TraceEventKind::NodeDown { node: 0 },
    );
    trace.record(
        SimTime::from_millis(52_000),
        0,
        TraceEventKind::NodeUp { node: 0 },
    );
    ProviderTelemetry {
        trace,
        nodes_per_cluster: 1,
        clusters: 1,
        span: SimDuration::from_millis(40_000_000),
    }
}

#[test]
fn served_frontier_is_bit_identical_across_an_epoch_bump() {
    // Multi-cloud catalog; the request pins the nimbus cloud, and the
    // epoch bump lands telemetry on stratus — the requested cloud's
    // inputs are untouched, so the bytes must not move.
    let service = Arc::new(BrokerService::new(extended::hybrid_catalog()));
    let backend = ServingBroker::new(Arc::clone(&service));

    let body = serde_json::json!({
        "tiers": ["Compute", "Storage", "NetworkGateway"],
        "penalty": { "PerHour": { "rate": 100.0 } },
        "clouds": [extended::nimbus_id().as_str()],
        "slo": { "objectives": [
            { "metric": "uptime", "threshold": 92.0, "mode": "hard" },
            { "metric": "failover", "threshold": 120.0, "mode": "soft", "weight": 0.5 }
        ] },
    });
    let request = FrontierRequest::from_value(&body).unwrap();

    let direct_before = serde_json::to_value(&service.solve_slo(&request).unwrap());
    let served_before = backend.handle("frontier", &body).unwrap();
    assert_eq!(served_before, direct_before, "served bytes == direct bytes");

    let epoch_before = backend.epoch();
    service
        .ingest_component_telemetry(
            &extended::stratus_id(),
            ComponentKind::Compute,
            &honest_batch(),
        )
        .unwrap();
    assert_eq!(backend.epoch(), epoch_before + 1, "the epoch must move");

    let served_after = backend.handle("frontier", &body).unwrap();
    let direct_after = serde_json::to_value(&service.solve_slo(&request).unwrap());
    assert_eq!(
        served_after, served_before,
        "an epoch bump that leaves the requested cloud untouched must not change the answer"
    );
    assert_eq!(served_after, direct_after);

    // The fingerprint is epoch-free too: the cache key never moves.
    assert_eq!(
        backend.fingerprint("frontier", &body).unwrap(),
        backend.fingerprint("frontier", &body).unwrap()
    );
}

fn load_schema(name: &str) -> Value {
    let path = format!("{}/../../schemas/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    serde_json::from_str(&text).expect("schema parses")
}

#[test]
fn slo_specs_validate_against_the_checked_in_schema() {
    let schema = load_schema("slo_spec.schema.json");
    // Everything the parser accepts must validate — including the
    // serialized normal form (`to_value` always spells out epsilon
    // and soft weights).
    for accepted in [
        BASIC_SPEC,
        r#"{ "objectives": [ { "metric": "uptime", "threshold": 99.0 } ] }"#,
        r#"{ "epsilon": 1e-6, "objectives": [
            { "metric": "uptime", "threshold": 99.5, "mode": "hard" },
            { "metric": "cost", "threshold": 2000.0, "mode": "soft", "weight": 2.0 },
            { "metric": "failover", "threshold": 5.0, "mode": "soft" }
        ] }"#,
    ] {
        let parsed = spec(accepted);
        uptime_serve::schema::assert_valid(&serde_json::from_str(accepted).unwrap(), &schema);
        uptime_serve::schema::assert_valid(&parsed.to_value(), &schema);
    }
    // And what the parser rejects on shape grounds, the schema rejects too.
    let violations = |text: &str| {
        let mut errors = Vec::new();
        let value: Value = serde_json::from_str(text).unwrap();
        uptime_serve::schema::validate(&value, &schema, "$", &mut errors);
        errors
    };
    for rejected in [
        r#"{ }"#,
        r#"{ "objectives": [ { "metric": "latency", "threshold": 1.0 } ] }"#,
        r#"{ "objectives": [ { "metric": "uptime" } ] }"#,
        r#"{ "objectives": [ { "metric": "uptime", "threshold": 99.0, "bogus": 1 } ] }"#,
        r#"{ "objectives": [ { "metric": "uptime", "threshold": 99.0 } ], "extra": true }"#,
    ] {
        assert!(
            !violations(rejected).is_empty(),
            "schema accepted {rejected}"
        );
        assert!(
            SloSpec::from_json_str(rejected).is_err(),
            "parser accepted {rejected}"
        );
    }
}

#[test]
fn live_reports_validate_against_the_response_schema() {
    let schema = load_schema("frontier_response.schema.json");
    for engine in [SearchEngine::Exhaustive, SearchEngine::BranchBound] {
        let report = BrokerService::new(case_study::catalog())
            .with_engine(engine)
            .solve_slo(&paper_request(BASIC_SPEC))
            .unwrap();
        uptime_serve::schema::assert_valid(&serde_json::to_value(&report), &schema);
    }
    // A cloud with an empty frontier (hard floor met by no point on one
    // cloud of a multi-cloud request) still validates: points [], null
    // recommended_index.
    let report = BrokerService::new(extended::hybrid_catalog())
        .solve_slo(&paper_request(BASIC_SPEC))
        .unwrap();
    uptime_serve::schema::assert_valid(&serde_json::to_value(&report), &schema);
}

#[test]
fn frontier_report_round_trips_through_json() {
    let report = BrokerService::new(case_study::catalog())
        .solve_slo(&paper_request(BASIC_SPEC))
        .unwrap();
    let wire = serde_json::to_value(&report);
    assert_eq!(
        wire.get("schema_version").and_then(Value::as_u64),
        Some(1),
        "schema_version must be on the wire"
    );
    let back = uptime_broker::FrontierReport::from_value(&wire).unwrap();
    assert_eq!(back, report);
}
