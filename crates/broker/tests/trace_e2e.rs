//! End-to-end tracing acceptance: a daemon with chaos-delayed telemetry
//! harvests and a cold-cache recommend, interrogated through the real
//! `brokerctl trace` client over loopback TCP.
//!
//! Proves the PR 8 contract: the span tree attributes wall-clock time to
//! the stage that actually spent it (the deterministic harvest delay
//! dominates the sync trace), the export validates against the published
//! `schemas/trace.schema.json`, and the CLI renders the same tree.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::Command;
use std::sync::Arc;

use serde_json::Value;
use uptime_broker::{
    BrokerService, ChaosConfig, ChaosProvider, GroundTruth, ServingBroker, SimulatedProvider,
    SolutionRequest,
};
use uptime_catalog::{case_study, CloudId, ComponentKind};
use uptime_obs::{FlightRecorder, MetricsRegistry, TraceConfig};
use uptime_serve::{RequestFrame, ResponseFrame, Server, ServerConfig, ServerHandle};

/// Per-harvest deterministic delay: with three observed components, one
/// `sync` round spends at least 3 × this in `broker.sync.harvest`.
const HARVEST_DELAY_MS: u64 = 20;

/// A daemon over the case-study catalog whose single provider sleeps a
/// fixed [`HARVEST_DELAY_MS`] inside every telemetry harvest — otherwise
/// chaos-free, so syncs succeed and the trace is about *time*, not faults.
fn start_daemon() -> (ServerHandle, Arc<FlightRecorder>) {
    let store = case_study::catalog();
    let broker = Arc::new(BrokerService::new(store.clone()));
    let mut targets: Vec<(CloudId, Vec<ComponentKind>)> = Vec::new();
    for id in store.cloud_ids() {
        let profile = store.cloud(id).expect("listed id resolves");
        let mut provider = SimulatedProvider::new(id.clone(), profile.display_name());
        let mut kinds = Vec::new();
        for kind in profile.observed_components() {
            let record = profile.reliability(kind).expect("observed");
            provider = provider.with_ground_truth(
                kind,
                GroundTruth {
                    down_probability: record.down_probability(),
                    failures_per_year: record.failures_per_year(),
                },
            );
            kinds.push(kind);
        }
        broker.register_provider(Box::new(ChaosProvider::new(
            provider,
            ChaosConfig::quiet(7).with_harvest_delay_ms(HARVEST_DELAY_MS),
        )));
        targets.push((id.clone(), kinds));
    }

    let trace = TraceConfig::default();
    let recorder = Arc::new(FlightRecorder::new(trace));
    let backend = Arc::new(
        ServingBroker::new(broker)
            .with_sync_targets(targets)
            .with_flight_recorder(Arc::clone(&recorder)),
    );
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 32,
        trace,
        flight_recorder: Some(Arc::clone(&recorder)),
        ..ServerConfig::default()
    };
    let handle =
        Server::start(backend, config, Arc::new(MetricsRegistry::new())).expect("daemon binds");
    (handle, recorder)
}

fn call(addr: std::net::SocketAddr, frame: &RequestFrame) -> ResponseFrame {
    let stream = TcpStream::connect(addr).expect("daemon accepts");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut text = serde_json::to_string(frame).expect("frame serializes");
    text.push('\n');
    writer.write_all(text.as_bytes()).expect("send frame");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    serde_json::from_str(&line).expect("response frame parses")
}

fn recommend_frame(id: u64) -> RequestFrame {
    let request = SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(98.0)
        .expect("valid sla")
        .penalty_per_hour(100.0)
        .expect("valid rate")
        .build()
        .expect("valid request");
    RequestFrame::new(id, "recommend", serde_json::to_value(&request))
}

fn brokerctl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_brokerctl"))
        .args(args)
        .output()
        .expect("brokerctl runs")
}

fn get<'a>(value: &'a Value, key: &str) -> &'a Value {
    value
        .get(key)
        .unwrap_or_else(|| panic!("missing key `{key}` in {value}"))
}

#[test]
fn slowest_trace_attributes_time_to_the_delayed_harvest() {
    let (mut handle, _recorder) = start_daemon();
    let addr = handle.local_addr();

    // A cold-cache recommend (fast) and one sync round (slow: every
    // harvest sleeps HARVEST_DELAY_MS).
    assert_eq!(call(addr, &recommend_frame(1)).code, 200);
    let sync = call(
        addr,
        &RequestFrame::new(2, "sync", serde_json::json!({"seed": 11})),
    );
    assert_eq!(sync.code, 200, "{:?}", sync.error);

    // `brokerctl trace --slowest 1` against the live daemon: the sync
    // trace wins, and its tree must blame the harvest stage.
    let addr_text = addr.to_string();
    let output = brokerctl(&["trace", "--addr", &addr_text, "--slowest", "1", "--json"]);
    assert!(output.status.success(), "{output:?}");
    let export: Value = serde_json::from_slice(&output.stdout).expect("export parses");

    let schema_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/trace.schema.json"
    );
    let schema: Value =
        serde_json::from_str(&std::fs::read_to_string(schema_path).expect("schema readable"))
            .expect("schema parses");
    uptime_serve::schema::assert_valid(&export, &schema);

    let traces = get(&export, "traces").as_array().expect("traces array");
    assert_eq!(traces.len(), 1, "--slowest 1 returns exactly one trace");
    let slowest = &traces[0];
    assert_eq!(get(slowest, "endpoint").as_str(), Some("sync"));
    let total_ns = get(slowest, "total_ns").as_u64().expect("total_ns");

    let spans = get(slowest, "spans").as_array().expect("spans");
    let harvest_ns: u64 = spans
        .iter()
        .filter(|s| get(s, "name").as_str() == Some("broker.sync.harvest"))
        .map(|s| get(s, "duration_ns").as_u64().unwrap_or(0))
        .sum();
    let floor_ns = 3 * HARVEST_DELAY_MS * 1_000_000;
    assert!(
        harvest_ns >= floor_ns,
        "harvest spans {harvest_ns}ns below the injected {floor_ns}ns"
    );
    assert!(
        harvest_ns * 2 >= total_ns,
        "harvest {harvest_ns}ns should dominate the {total_ns}ns trace"
    );

    // The human rendering names the same guilty stage.
    let human = brokerctl(&["trace", "--addr", &addr_text, "--slowest", "1"]);
    assert!(human.status.success(), "{human:?}");
    let text = String::from_utf8(human.stdout).expect("utf8");
    assert!(text.contains("endpoint=sync"), "{text}");
    assert!(text.contains("broker.sync.harvest"), "{text}");

    handle.shutdown();
}

#[test]
fn cold_recommend_trace_reaches_the_optimizer() {
    let (mut handle, recorder) = start_daemon();
    let addr = handle.local_addr();
    assert_eq!(call(addr, &recommend_frame(1)).code, 200);

    let traces = recorder.snapshot();
    let recommend = traces
        .iter()
        .find(|t| t.endpoint == "recommend")
        .expect("recommend trace recorded");
    let names: Vec<&str> = recommend.spans.iter().map(|s| s.name).collect();
    for expected in [
        "serve.request",
        "serve.execute",
        "broker.recommend",
        "optimizer.exhaustive.search",
    ] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }

    handle.shutdown();
}

#[test]
fn trace_cli_reports_disabled_tracing_cleanly() {
    let store = case_study::catalog();
    let broker = Arc::new(BrokerService::new(store));
    let backend = Arc::new(ServingBroker::new(broker));
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        trace: TraceConfig::disabled(),
        ..ServerConfig::default()
    };
    let mut handle =
        Server::start(backend, config, Arc::new(MetricsRegistry::new())).expect("daemon binds");
    let addr_text = handle.local_addr().to_string();
    let output = brokerctl(&["trace", "--addr", &addr_text]);
    assert!(!output.status.success(), "disabled tracing is an error");
    let stderr = String::from_utf8(output.stderr).expect("utf8");
    assert!(stderr.contains("disabled"), "{stderr}");
    handle.shutdown();
}
