//! Broker error type, aggregating the pipeline's failure modes.

use std::fmt;

use uptime_catalog::{CatalogError, CloudId};
use uptime_optimizer::SpaceError;
use uptime_sim::SimError;

/// Errors surfaced by the brokered service.
#[derive(Debug)]
#[non_exhaustive]
pub enum BrokerError {
    /// Request validation failed.
    InvalidRequest {
        /// Human-readable reason.
        reason: String,
    },
    /// The request referenced a cloud the broker does not front.
    UnknownCloud {
        /// The cloud id.
        id: CloudId,
    },
    /// The search produced no candidate deployments.
    NoCandidates,
    /// Knowledge-base lookup failed.
    Catalog(CatalogError),
    /// Search-space construction failed.
    Space(SpaceError),
    /// Core model validation failed.
    Model(uptime_core::ModelError),
    /// Simulation (telemetry or audit) failed.
    Sim(SimError),
    /// Provisioning was attempted against the wrong provider.
    ProviderMismatch {
        /// Cloud the plan targets.
        plan_cloud: CloudId,
        /// Cloud of the provider asked to execute it.
        provider_cloud: CloudId,
    },
    /// A provider call failed transiently (retry may succeed).
    ProviderUnavailable {
        /// The cloud whose provider faulted.
        cloud: CloudId,
        /// Human-readable fault description.
        reason: String,
    },
    /// A provider call exceeded its deadline.
    Timeout {
        /// The operation that timed out.
        operation: String,
    },
    /// The circuit breaker for a provider is open; the call was not made.
    CircuitOpen {
        /// The cloud whose breaker is open.
        cloud: CloudId,
    },
    /// A telemetry batch failed validation or plausibility gating and was
    /// quarantined instead of absorbed.
    TelemetryRejected {
        /// Why the batch was rejected.
        reason: String,
    },
    /// An SLO spec failed to parse or validate (frontier intake).
    SloSpec {
        /// The typed parse/validation failure, rendered.
        reason: String,
    },
    /// No deployment satisfies the SLO spec's hard constraints on any
    /// requested cloud: the frontier is empty everywhere.
    SloInfeasible {
        /// Which hard constraint combination admitted nothing.
        reason: String,
    },
    /// The durability subsystem (journal, snapshot, or recovery) failed.
    /// On the absorb path this means the write-ahead append did not
    /// complete, so the batch was NOT absorbed — the journal never lags
    /// the in-memory state.
    Durability {
        /// Human-readable failure description.
        reason: String,
    },
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            BrokerError::UnknownCloud { id } => write!(f, "broker does not front cloud `{id}`"),
            BrokerError::NoCandidates => write!(f, "no candidate deployments found"),
            BrokerError::Catalog(e) => write!(f, "catalog error: {e}"),
            BrokerError::Space(e) => write!(f, "search space error: {e}"),
            BrokerError::Model(e) => write!(f, "model error: {e}"),
            BrokerError::Sim(e) => write!(f, "simulation error: {e}"),
            BrokerError::ProviderMismatch {
                plan_cloud,
                provider_cloud,
            } => write!(
                f,
                "plan targets cloud `{plan_cloud}` but provider is `{provider_cloud}`"
            ),
            BrokerError::ProviderUnavailable { cloud, reason } => {
                write!(f, "provider for cloud `{cloud}` unavailable: {reason}")
            }
            BrokerError::Timeout { operation } => write!(f, "operation `{operation}` timed out"),
            BrokerError::CircuitOpen { cloud } => {
                write!(f, "circuit breaker open for cloud `{cloud}`")
            }
            BrokerError::TelemetryRejected { reason } => {
                write!(f, "telemetry batch rejected: {reason}")
            }
            BrokerError::SloSpec { reason } => {
                write!(f, "invalid slo spec: {reason}")
            }
            BrokerError::SloInfeasible { reason } => {
                write!(f, "slo infeasible: {reason}")
            }
            BrokerError::Durability { reason } => {
                write!(f, "durability failure: {reason}")
            }
        }
    }
}

impl std::error::Error for BrokerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BrokerError::Catalog(e) => Some(e),
            BrokerError::Space(e) => Some(e),
            BrokerError::Model(e) => Some(e),
            BrokerError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for BrokerError {
    fn from(e: CatalogError) -> Self {
        BrokerError::Catalog(e)
    }
}

impl From<SpaceError> for BrokerError {
    fn from(e: SpaceError) -> Self {
        BrokerError::Space(e)
    }
}

impl From<uptime_core::ModelError> for BrokerError {
    fn from(e: uptime_core::ModelError) -> Self {
        BrokerError::Model(e)
    }
}

impl From<SimError> for BrokerError {
    fn from(e: SimError) -> Self {
        BrokerError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let e = BrokerError::InvalidRequest {
            reason: "no tiers".into(),
        };
        assert_eq!(e.to_string(), "invalid request: no tiers");
        assert!(e.source().is_none());

        let e = BrokerError::from(SimError::NoTrials);
        assert!(e.to_string().contains("simulation error"));
        assert!(e.source().is_some());

        let e = BrokerError::from(uptime_core::ModelError::EmptySystem);
        assert!(e.source().is_some());

        let e = BrokerError::ProviderMismatch {
            plan_cloud: CloudId::new("a"),
            provider_cloud: CloudId::new("b"),
        };
        assert!(e.to_string().contains('a') && e.to_string().contains('b'));
    }

    #[test]
    fn resilience_variants_display() {
        use std::error::Error;
        let e = BrokerError::ProviderUnavailable {
            cloud: CloudId::new("softlayer"),
            reason: "injected fault".into(),
        };
        assert_eq!(
            e.to_string(),
            "provider for cloud `softlayer` unavailable: injected fault"
        );
        assert!(e.source().is_none());

        let e = BrokerError::Timeout {
            operation: "harvest_component_telemetry".into(),
        };
        assert_eq!(
            e.to_string(),
            "operation `harvest_component_telemetry` timed out"
        );
        assert!(e.source().is_none());

        let e = BrokerError::CircuitOpen {
            cloud: CloudId::new("softlayer"),
        };
        assert_eq!(e.to_string(), "circuit breaker open for cloud `softlayer`");
        assert!(e.source().is_none());

        let e = BrokerError::TelemetryRejected {
            reason: "orphan NodeUp".into(),
        };
        assert_eq!(e.to_string(), "telemetry batch rejected: orphan NodeUp");
        assert!(e.source().is_none());
    }

    #[test]
    fn slo_variants_display() {
        use std::error::Error;
        let e = BrokerError::SloSpec {
            reason: "weight must be finite".into(),
        };
        assert_eq!(e.to_string(), "invalid slo spec: weight must be finite");
        assert!(e.source().is_none());

        let e = BrokerError::SloInfeasible {
            reason: "uptime >= 99.999% under $10/month".into(),
        };
        assert_eq!(
            e.to_string(),
            "slo infeasible: uptime >= 99.999% under $10/month"
        );
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<BrokerError>();
    }
}
