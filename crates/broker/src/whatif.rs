//! What-if analysis on top of the recommendation pipeline.
//!
//! Two questions a client asks after seeing Fig. 10:
//!
//! 1. *"How sure are you?"* — [`BrokerService::uptime_bounds`] propagates
//!    the evidence behind the catalog's reliability records into bounds on
//!    an option's uptime and TCO (paper §IV's skew risk, quantified).
//! 2. *"What if we negotiated a different SLA?"* —
//!    [`BrokerService::sla_sweep`] re-prices the whole option space across
//!    a range of targets and reports the crossover points.

use serde::{Deserialize, Serialize};
use uptime_catalog::{CloudId, ComponentKind};
use uptime_core::confidence::{
    tco_interval, uptime_interval, ConfidenceLevel, ProbabilityInterval,
};
use uptime_core::{MoneyPerMonth, RoundingPolicy, SystemSpec};
use uptime_optimizer::{sweep, SearchSpace, SlaSweep};

use crate::error::BrokerError;
use crate::recommendation::RankedOption;
use crate::request::SolutionRequest;
use crate::service::BrokerService;

/// Evidence-aware bounds for one deployment option.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UptimeBounds {
    /// Point estimate of `U_s`.
    pub point: uptime_core::Probability,
    /// Sound uptime interval at the requested confidence level.
    pub uptime: ProbabilityInterval,
    /// Best-case monthly TCO (uptime at its upper bound).
    pub tco_best: MoneyPerMonth,
    /// Worst-case monthly TCO (uptime at its lower bound).
    pub tco_worst: MoneyPerMonth,
}

impl BrokerService {
    /// Propagates per-component evidence (node-years behind each
    /// reliability record) into bounds on an option's uptime and TCO.
    ///
    /// # Errors
    ///
    /// Returns catalog errors when the cloud, a component record, or a
    /// method no longer resolves.
    pub fn uptime_bounds(
        &self,
        request: &SolutionRequest,
        cloud: &CloudId,
        option: &RankedOption,
        level: ConfidenceLevel,
    ) -> Result<UptimeBounds, BrokerError> {
        let catalog = self.catalog_snapshot();
        let profile = catalog
            .cloud(cloud)
            .ok_or_else(|| BrokerError::UnknownCloud { id: cloud.clone() })?;

        let mut clusters = Vec::with_capacity(request.tiers().len());
        let mut intervals = Vec::with_capacity(request.tiers().len());
        for (kind, method_id) in request.tiers().iter().zip(option.method_ids()) {
            let record = profile.reliability(*kind).ok_or(
                uptime_catalog::CatalogError::MissingReliability {
                    cloud: cloud.clone(),
                    component: *kind,
                },
            )?;
            intervals.push(ProbabilityInterval::wald(
                record.down_probability(),
                record.node_years_observed(),
                level,
            ));
            clusters.push(catalog.cluster_spec(cloud, *kind, method_id)?);
        }
        let system = SystemSpec::new(clusters)?;
        let uptime = uptime_interval(&system, &intervals);
        let model = request.tco_model();
        let ha_cost = option.evaluation().tco().ha_cost();
        let (tco_best, tco_worst) = tco_interval(&model, ha_cost, uptime);
        Ok(UptimeBounds {
            point: system.uptime().availability(),
            uptime,
            tco_best,
            tco_worst,
        })
    }

    /// Sweeps SLA targets over one cloud's option space.
    ///
    /// # Errors
    ///
    /// Returns catalog/space errors for unresolvable clouds or tiers.
    pub fn sla_sweep(
        &self,
        cloud: &CloudId,
        tiers: &[ComponentKind],
        penalty: &uptime_core::PenaltyClause,
        rounding: RoundingPolicy,
        targets: &[f64],
    ) -> Result<SlaSweep, BrokerError> {
        let catalog = self.catalog_snapshot();
        let space = SearchSpace::from_catalog(&catalog, cloud, tiers)?;
        Ok(sweep::sla_sweep(&space, penalty, rounding, targets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_catalog::case_study;
    use uptime_core::PenaltyClause;

    fn service() -> BrokerService {
        BrokerService::new(case_study::catalog())
    }

    fn request() -> SolutionRequest {
        SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn bounds_bracket_the_point_estimate() {
        let svc = service();
        let req = request();
        let rec = svc.recommend(&req).unwrap();
        let cloud = &rec.clouds()[0];
        for option in cloud.options() {
            let bounds = svc
                .uptime_bounds(&req, cloud.cloud(), option, ConfidenceLevel::P95)
                .unwrap();
            assert!(
                bounds.uptime.contains(bounds.point),
                "#{}: {:?}",
                option.option_number(),
                bounds
            );
            assert!(bounds.tco_best <= bounds.tco_worst);
            assert!(
                (bounds.point.value() - option.evaluation().uptime().availability().value()).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn more_confidence_widens_bounds() {
        let svc = service();
        let req = request();
        let rec = svc.recommend(&req).unwrap();
        let cloud = &rec.clouds()[0];
        let option = cloud.best();
        let p90 = svc
            .uptime_bounds(&req, cloud.cloud(), option, ConfidenceLevel::P90)
            .unwrap();
        let p99 = svc
            .uptime_bounds(&req, cloud.cloud(), option, ConfidenceLevel::P99)
            .unwrap();
        assert!(p99.uptime.width() > p90.uptime.width());
    }

    #[test]
    fn unknown_cloud_rejected() {
        let svc = service();
        let req = request();
        let rec = svc.recommend(&req).unwrap();
        let option = rec.clouds()[0].best().clone();
        let err = svc
            .uptime_bounds(&req, &CloudId::new("ghost"), &option, ConfidenceLevel::P95)
            .unwrap_err();
        assert!(matches!(err, BrokerError::UnknownCloud { .. }));
    }

    #[test]
    fn service_level_sweep_matches_direct() {
        let svc = service();
        let penalty = PenaltyClause::per_hour(100.0).unwrap();
        let via_service = svc
            .sla_sweep(
                &case_study::cloud_id(),
                &ComponentKind::paper_tiers(),
                &penalty,
                RoundingPolicy::CeilHour,
                &[98.0],
            )
            .unwrap();
        assert_eq!(via_service.points()[0].best_tco.value(), 1250.0);
    }
}
