//! Declarative SLO intake and frontier reports (PR 9).
//!
//! Instead of a single SLA number, a customer hands the broker an
//! [`SloSpec`] — a conjunction of hard and weighted-soft objectives over
//! uptime, monthly cost, and failover budget — wrapped in a
//! [`FrontierRequest`] naming the tiers, penalty clause, and clouds.
//! The broker answers with a [`FrontierReport`]: per cloud, the exact
//! Pareto frontier of feasible deployments (extracted by
//! [`uptime_optimizer::pareto_bnb`]) with each point scored against the
//! spec's soft objectives, plus which point the broker recommends.
//!
//! The wire shape deliberately omits an `sla` field: the TCO penalty
//! model prices against the spec's strictest uptime objective, so the
//! SLA is derived, never stated twice. The report likewise carries no
//! epoch or timestamp — frontier answers are a pure function of the
//! catalog contents and the request, which is what lets the serving
//! layer's fingerprint cache hand out bit-identical bytes across epoch
//! bumps that don't change the catalog.

use serde::{DeError, Deserialize, Serialize, Value};
use uptime_catalog::{CloudId, HaMethodId};
use uptime_optimizer::{FrontierConstraints, ParetoStats};
use uptime_slo::SloSpec;

use crate::error::BrokerError;
use crate::request::SolutionRequest;

/// Version tag stamped into every [`FrontierReport`].
pub const FRONTIER_SCHEMA_VERSION: u32 = 1;

/// A frontier request: the solution-request envelope (tiers, penalty,
/// optional rounding/clouds/topology) plus a declarative [`SloSpec`]
/// under the `slo` key. The SLA is derived from the spec's strictest
/// uptime objective rather than carried as a separate field.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierRequest {
    base: SolutionRequest,
    spec: SloSpec,
}

impl FrontierRequest {
    /// Builds a frontier request from an already-validated envelope and
    /// spec. The envelope's SLA should price the same target the spec
    /// declares — [`FrontierRequest::from_value`] guarantees that by
    /// construction; use it (or [`FrontierRequest::from_spec`]) unless
    /// you need a deliberately divergent penalty model.
    #[must_use]
    pub fn new(base: SolutionRequest, spec: SloSpec) -> Self {
        FrontierRequest { base, spec }
    }

    /// Builds a request whose penalty model prices exactly the spec's
    /// strictest uptime objective: the canonical pairing every wire
    /// request deserializes to.
    ///
    /// # Errors
    ///
    /// [`BrokerError::InvalidRequest`] when the envelope is structurally
    /// invalid (no tiers, missing penalty, as-is with topology).
    pub fn from_spec(
        builder: crate::request::SolutionRequestBuilder,
        spec: SloSpec,
    ) -> Result<Self, BrokerError> {
        let base = builder.sla_percent(spec.uptime_target_percent())?.build()?;
        Ok(FrontierRequest { base, spec })
    }

    /// The solution-request envelope (tiers, penalty model, clouds,
    /// topology).
    #[must_use]
    pub fn base(&self) -> &SolutionRequest {
        &self.base
    }

    /// The declarative SLO spec.
    #[must_use]
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// The spec's strictest hard thresholds as search-space box
    /// constraints for the frontier engines.
    #[must_use]
    pub fn constraints(&self) -> FrontierConstraints {
        let bounds = self.spec.hard_bounds();
        FrontierConstraints {
            max_cost: bounds.max_cost,
            min_uptime: bounds.min_uptime,
            max_failover_minutes: bounds.max_failover_minutes,
        }
    }
}

impl Serialize for FrontierRequest {
    fn to_value(&self) -> Value {
        // Reuse the envelope's own serialization so the wire shape can
        // never drift from `SolutionRequest`'s, then swap the derived
        // `sla` (and the unsupported `as_is`) for the spec.
        let Value::Object(mut map) = serde_json::to_value(&self.base) else {
            unreachable!("solution requests serialize as objects");
        };
        map.remove("sla");
        map.remove("as_is");
        map.insert("slo".into(), self.spec.to_value());
        Value::Object(map)
    }
}

impl Deserialize for FrontierRequest {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let object = value
            .as_object()
            .ok_or_else(|| DeError::expected("a frontier-request object", value))?;
        let spec = SloSpec::from_value(object.get("slo").unwrap_or(&Value::Null))
            .map_err(|e| DeError::custom(format!("invalid slo spec: {e}")).in_field("slo"))?;

        // Re-parse the envelope through `SolutionRequest`'s own
        // deserializer with the derived SLA patched in, so tier/penalty/
        // cloud validation lives in exactly one place.
        let mut envelope = object.clone();
        envelope.remove("slo");
        envelope.remove("as_is");
        envelope.insert(
            "sla".into(),
            serde_json::json!({ "target": spec.uptime_target_percent() / 100.0 }),
        );
        let base = SolutionRequest::from_value(&Value::Object(envelope))?;
        Ok(FrontierRequest { base, spec })
    }
}

/// One deployment on a cloud's feasible cost/uptime frontier, scored
/// against the request's soft objectives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    rank: usize,
    labels: Vec<String>,
    method_ids: Vec<HaMethodId>,
    cost_per_month: f64,
    uptime_percent: f64,
    failover_minutes_per_month: f64,
    tco_total: f64,
    expects_penalty: bool,
    soft_score: f64,
}

impl FrontierPoint {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        labels: Vec<String>,
        method_ids: Vec<HaMethodId>,
        cost_per_month: f64,
        uptime_percent: f64,
        failover_minutes_per_month: f64,
        tco_total: f64,
        expects_penalty: bool,
        soft_score: f64,
    ) -> Self {
        FrontierPoint {
            rank,
            labels,
            method_ids,
            cost_per_month,
            uptime_percent,
            failover_minutes_per_month,
            tco_total,
            expects_penalty,
            soft_score,
        }
    }

    /// 1-based position in the cost-ascending frontier.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Human-readable HA-method label per tier (or per archetype leaf).
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Catalog method id per tier (or per archetype leaf).
    #[must_use]
    pub fn method_ids(&self) -> &[HaMethodId] {
        &self.method_ids
    }

    /// Monthly HA spend, $/month.
    #[must_use]
    pub fn cost_per_month(&self) -> f64 {
        self.cost_per_month
    }

    /// Modeled availability, percent.
    #[must_use]
    pub fn uptime_percent(&self) -> f64 {
        self.uptime_percent
    }

    /// Expected failover downtime, minutes/month.
    #[must_use]
    pub fn failover_minutes_per_month(&self) -> f64 {
        self.failover_minutes_per_month
    }

    /// Full TCO ($/month) under the derived penalty model.
    #[must_use]
    pub fn tco_total(&self) -> f64 {
        self.tco_total
    }

    /// Whether the penalty model expects SLA slippage at this point.
    #[must_use]
    pub fn expects_penalty(&self) -> bool {
        self.expects_penalty
    }

    /// Weighted soft-objective violation score; `0.0` means every soft
    /// objective is met. Lower is better.
    #[must_use]
    pub fn soft_score(&self) -> f64 {
        self.soft_score
    }
}

/// One cloud's feasible frontier plus the search instrumentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudFrontier {
    cloud: CloudId,
    points: Vec<FrontierPoint>,
    recommended_index: Option<usize>,
    stats: ParetoStats,
}

impl CloudFrontier {
    pub(crate) fn new(cloud: CloudId, points: Vec<FrontierPoint>, stats: ParetoStats) -> Self {
        // Recommend the lowest soft score; ties resolve to the cheaper
        // (earlier) point because the frontier is cost-ascending.
        let recommended_index = points
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.soft_score()
                    .total_cmp(&b.soft_score())
                    .then(a.cost_per_month().total_cmp(&b.cost_per_month()))
            })
            .map(|(i, _)| i);
        CloudFrontier {
            cloud,
            points,
            recommended_index,
            stats,
        }
    }

    /// The cloud this frontier was extracted on.
    #[must_use]
    pub fn cloud(&self) -> &CloudId {
        &self.cloud
    }

    /// Feasible frontier points, cost-ascending with strictly rising
    /// uptime. Empty exactly when the hard constraints admit nothing on
    /// this cloud.
    #[must_use]
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// Index into [`CloudFrontier::points`] of the broker's pick: the
    /// minimum soft-objective violation, ties to the cheaper point.
    #[must_use]
    pub fn recommended_index(&self) -> Option<usize> {
        self.recommended_index
    }

    /// The recommended point itself.
    #[must_use]
    pub fn recommended(&self) -> Option<&FrontierPoint> {
        self.recommended_index.map(|i| &self.points[i])
    }

    /// Frontier-search instrumentation (tree shape, pruning, threads).
    #[must_use]
    pub fn stats(&self) -> &ParetoStats {
        &self.stats
    }
}

/// The broker's answer to a [`FrontierRequest`].
///
/// Deliberately epoch-free: equal requests against an unchanged catalog
/// serialize to identical bytes even across serving-epoch bumps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierReport {
    schema_version: u32,
    engine: String,
    epsilon: f64,
    target_uptime_percent: f64,
    clouds: Vec<CloudFrontier>,
}

impl FrontierReport {
    pub(crate) fn new(
        engine: &str,
        epsilon: f64,
        target_uptime_percent: f64,
        clouds: Vec<CloudFrontier>,
    ) -> Self {
        FrontierReport {
            schema_version: FRONTIER_SCHEMA_VERSION,
            engine: engine.to_owned(),
            epsilon,
            target_uptime_percent,
            clouds,
        }
    }

    /// The report format version ([`FRONTIER_SCHEMA_VERSION`]).
    #[must_use]
    pub fn schema_version(&self) -> u32 {
        self.schema_version
    }

    /// Which frontier engine answered (`"exhaustive"` or `"bnb"`).
    /// Both produce bit-identical points.
    #[must_use]
    pub fn engine(&self) -> &str {
        &self.engine
    }

    /// The epsilon-dominance margin the search pruned with.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The derived SLA target (strictest uptime objective), percent.
    #[must_use]
    pub fn target_uptime_percent(&self) -> f64 {
        self.target_uptime_percent
    }

    /// Per-cloud frontiers, in catalog order (or request order when the
    /// request named clouds).
    #[must_use]
    pub fn clouds(&self) -> &[CloudFrontier] {
        &self.clouds
    }

    /// The overall best pick across clouds: the recommended point with
    /// the lowest `(soft_score, cost)`, with its cloud.
    #[must_use]
    pub fn best(&self) -> Option<(&CloudId, &FrontierPoint)> {
        self.clouds
            .iter()
            .filter_map(|c| c.recommended().map(|p| (c.cloud(), p)))
            .min_by(|(_, a), (_, b)| {
                a.soft_score()
                    .total_cmp(&b.soft_score())
                    .then(a.cost_per_month().total_cmp(&b.cost_per_month()))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_catalog::ComponentKind;

    fn spec() -> SloSpec {
        SloSpec::from_json_str(
            r#"{ "objectives": [
                { "metric": "uptime", "threshold": 98.0, "mode": "hard" },
                { "metric": "cost", "threshold": 1500.0, "mode": "soft", "weight": 2.0 }
            ] }"#,
        )
        .unwrap()
    }

    fn request() -> FrontierRequest {
        FrontierRequest::from_spec(
            SolutionRequest::builder()
                .tiers(ComponentKind::paper_tiers())
                .penalty_per_hour(100.0)
                .unwrap(),
            spec(),
        )
        .unwrap()
    }

    #[test]
    fn sla_is_derived_from_spec() {
        let r = request();
        assert_eq!(r.base().sla().as_percent(), 98.0);
        let c = r.constraints();
        assert_eq!(c.min_uptime, Some(0.98));
        assert_eq!(c.max_cost, None, "soft cost objective must not prune");
    }

    #[test]
    fn wire_round_trip() {
        let r = request();
        let wire = serde_json::to_value(&r);
        let Value::Object(map) = &wire else {
            panic!("frontier requests serialize as objects")
        };
        assert!(!map.contains_key("sla"), "sla is derived, never carried");
        assert!(map.contains_key("slo"));
        let back = FrontierRequest::from_value(&wire).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn bad_spec_is_a_typed_field_error() {
        let wire = serde_json::json!({
            "tiers": ["compute"],
            "penalty": { "PerHour": { "rate": 100.0 } },
            "slo": { "objectives": [] },
        });
        let err = FrontierRequest::from_value(&wire).unwrap_err();
        assert!(err.to_string().contains("slo"), "{err}");
    }

    #[test]
    fn recommended_index_prefers_low_score_then_cost() {
        let p = |rank: usize, cost: f64, score: f64| {
            FrontierPoint::new(rank, vec![], vec![], cost, 99.0, 1.0, cost, false, score)
        };
        let cloud = CloudFrontier::new(
            CloudId::new("x"),
            vec![p(1, 0.0, 3.0), p(2, 100.0, 1.0), p(3, 200.0, 1.0)],
            ParetoStats::default(),
        );
        assert_eq!(cloud.recommended_index(), Some(1), "tie goes to cheaper");
        let empty = CloudFrontier::new(CloudId::new("x"), vec![], ParetoStats::default());
        assert_eq!(empty.recommended_index(), None);
    }
}
