//! Recommendation artifacts: what the broker hands back.

use serde::{Deserialize, Serialize};
use uptime_catalog::{CloudId, HaMethodId};
use uptime_core::MoneyPerMonth;
use uptime_optimizer::{Evaluation, SearchStats};

/// One fully-described solution option (a row of the paper's Fig. 10).
///
/// Options are numbered the way the paper numbers them: ascending by how
/// many components are clustered, then by the assignment's mixed-radix
/// value (so the case study's options come out exactly #1–#8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedOption {
    option_number: usize,
    labels: Vec<String>,
    method_ids: Vec<HaMethodId>,
    tier_costs: Vec<MoneyPerMonth>,
    evaluation: Evaluation,
    meets_sla: bool,
}

impl RankedOption {
    /// Assembles an option.
    #[must_use]
    pub fn new(
        option_number: usize,
        labels: Vec<String>,
        method_ids: Vec<HaMethodId>,
        tier_costs: Vec<MoneyPerMonth>,
        evaluation: Evaluation,
        meets_sla: bool,
    ) -> Self {
        RankedOption {
            option_number,
            labels,
            method_ids,
            tier_costs,
            evaluation,
            meets_sla,
        }
    }

    /// Monthly `C_HA` contribution of each tier, in serial order.
    #[must_use]
    pub fn tier_costs(&self) -> &[MoneyPerMonth] {
        &self.tier_costs
    }

    /// Paper-style option number (1-based).
    #[must_use]
    pub fn option_number(&self) -> usize {
        self.option_number
    }

    /// HA method display names, one per tier.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// HA method ids, one per tier.
    #[must_use]
    pub fn method_ids(&self) -> &[HaMethodId] {
        &self.method_ids
    }

    /// The full evaluation (uptime + TCO).
    #[must_use]
    pub fn evaluation(&self) -> &Evaluation {
        &self.evaluation
    }

    /// Whether the modeled uptime satisfies the contractual SLA.
    #[must_use]
    pub fn meets_sla(&self) -> bool {
        self.meets_sla
    }
}

/// The evaluated options for one cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudRecommendation {
    cloud: CloudId,
    options: Vec<RankedOption>,
    best_index: usize,
    min_risk_index: Option<usize>,
    as_is_index: Option<usize>,
    stats: SearchStats,
}

impl CloudRecommendation {
    /// Assembles a cloud recommendation.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or an index is out of range; the
    /// service constructs these from non-empty search outcomes.
    #[must_use]
    pub fn new(
        cloud: CloudId,
        options: Vec<RankedOption>,
        best_index: usize,
        min_risk_index: Option<usize>,
        as_is_index: Option<usize>,
        stats: SearchStats,
    ) -> Self {
        assert!(!options.is_empty(), "cloud recommendation needs options");
        assert!(best_index < options.len());
        CloudRecommendation {
            cloud,
            options,
            best_index,
            min_risk_index,
            as_is_index,
            stats,
        }
    }

    /// The cloud these options are priced on.
    #[must_use]
    pub fn cloud(&self) -> &CloudId {
        &self.cloud
    }

    /// Every option, in paper numbering order.
    #[must_use]
    pub fn options(&self) -> &[RankedOption] {
        &self.options
    }

    /// The minimum-TCO option (the paper's `OptCh`).
    #[must_use]
    pub fn best(&self) -> &RankedOption {
        &self.options[self.best_index]
    }

    /// The cheapest option with no expected penalty, if any meets the SLA.
    #[must_use]
    pub fn min_risk(&self) -> Option<&RankedOption> {
        self.min_risk_index.map(|i| &self.options[i])
    }

    /// The customer's as-is option, when the request declared one.
    #[must_use]
    pub fn as_is(&self) -> Option<&RankedOption> {
        self.as_is_index.map(|i| &self.options[i])
    }

    /// Search instrumentation.
    #[must_use]
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// The cheapest-TCO option whose HA spend fits a monthly budget cap —
    /// the "we can only spend $X on redundancy" constraint clients bring.
    /// Returns `None` when even the free baseline exceeds the cap (i.e.
    /// never, unless the space has no zero-cost candidate).
    #[must_use]
    pub fn best_within_budget(&self, ha_budget: MoneyPerMonth) -> Option<&RankedOption> {
        self.options
            .iter()
            .filter(|o| o.evaluation().tco().ha_cost() <= ha_budget)
            .min_by_key(|o| o.evaluation().tco().total())
    }

    /// The highest-uptime option whose HA spend fits the budget cap.
    #[must_use]
    pub fn max_uptime_within_budget(&self, ha_budget: MoneyPerMonth) -> Option<&RankedOption> {
        self.options
            .iter()
            .filter(|o| o.evaluation().tco().ha_cost() <= ha_budget)
            .max_by_key(|o| o.evaluation().uptime().availability())
    }

    /// Fractional savings versus the as-is TCO — the paper's 62 % headline.
    ///
    /// Fig. 10 compares the as-is deployment ($3550, penalty-free) with the
    /// framework's *penalty-free* recommendation ($1350, option #5), not
    /// with the absolute min-TCO option #3: when the customer's current
    /// deployment meets the SLA, the like-for-like replacement is the
    /// cheapest option that also meets it. When the as-is violates the
    /// SLA, the comparison target is the overall best.
    #[must_use]
    pub fn savings_vs_as_is(&self) -> Option<f64> {
        let as_is = self.as_is()?;
        let as_is_tco = as_is.evaluation().tco().total();
        if as_is_tco.value() == 0.0 {
            return None;
        }
        let target = if as_is.meets_sla() {
            self.min_risk().unwrap_or_else(|| self.best())
        } else {
            self.best()
        };
        Some(1.0 - target.evaluation().tco().total() / as_is_tco)
    }
}

/// How a degraded answer came to be degraded.
///
/// When a provider's circuit breaker is open or its telemetry stream is
/// quarantined, the broker still answers — from the last known-good
/// catalog — but annotates the answer so the client can weigh staleness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedMode {
    /// Clouds whose answers rest on a stale catalog.
    pub stale_clouds: Vec<CloudId>,
    /// Telemetry batches quarantined across those clouds.
    pub quarantined_batches: u64,
    /// Human-readable explanation.
    pub note: String,
}

/// The broker's full answer, across every considered cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    clouds: Vec<CloudRecommendation>,
    degraded: Option<DegradedMode>,
}

impl Recommendation {
    /// Assembles a recommendation.
    #[must_use]
    pub fn new(clouds: Vec<CloudRecommendation>) -> Self {
        Recommendation {
            clouds,
            degraded: None,
        }
    }

    /// Annotates the answer as degraded.
    #[must_use]
    pub fn with_degraded(mut self, degraded: DegradedMode) -> Self {
        self.degraded = Some(degraded);
        self
    }

    /// Degradation metadata, when the answer rests on a stale catalog.
    #[must_use]
    pub fn degraded(&self) -> Option<&DegradedMode> {
        self.degraded.as_ref()
    }

    /// Whether the answer is served in degraded mode.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// Per-cloud recommendations.
    #[must_use]
    pub fn clouds(&self) -> &[CloudRecommendation] {
        &self.clouds
    }

    /// The cloud recommendation containing the globally cheapest option.
    #[must_use]
    pub fn best_cloud(&self) -> Option<&CloudRecommendation> {
        self.clouds
            .iter()
            .min_by_key(|c| c.best().evaluation().tco().total())
    }

    /// The globally minimum-TCO option.
    #[must_use]
    pub fn best(&self) -> Option<&RankedOption> {
        self.best_cloud().map(CloudRecommendation::best)
    }

    /// The globally cheapest penalty-free option, if any cloud has one.
    #[must_use]
    pub fn min_risk(&self) -> Option<(&CloudId, &RankedOption)> {
        self.clouds
            .iter()
            .filter_map(|c| c.min_risk().map(|o| (c.cloud(), o)))
            .min_by_key(|(_, o)| o.evaluation().tco().total())
    }

    /// The globally cheapest TCO value.
    #[must_use]
    pub fn best_tco(&self) -> Option<MoneyPerMonth> {
        self.best().map(|o| o.evaluation().tco().total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_catalog::{case_study, ComponentKind};
    use uptime_optimizer::SearchSpace;

    fn option(n: usize, assignment: &[usize]) -> RankedOption {
        let space = SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap();
        let model = case_study::tco_model();
        let e = Evaluation::evaluate(&space, &model, assignment);
        let meets = model.sla().is_met_by(e.uptime().availability());
        let costs = assignment
            .iter()
            .zip(space.components())
            .map(|(&idx, comp)| comp.candidates()[idx].monthly_cost())
            .collect();
        RankedOption::new(
            n,
            e.labels(&space).iter().map(|s| (*s).to_owned()).collect(),
            vec![HaMethodId::new("x"); 3],
            costs,
            e,
            meets,
        )
    }

    fn cloud_rec() -> CloudRecommendation {
        // Options 1 (no HA), 3 (storage), 5 (storage+network), 8 (all).
        let options = vec![
            option(1, &[0, 0, 0]),
            option(3, &[0, 1, 0]),
            option(5, &[0, 1, 1]),
            option(8, &[1, 1, 1]),
        ];
        CloudRecommendation::new(
            case_study::cloud_id(),
            options,
            1,       // best = option #3
            Some(2), // min risk = option #5
            Some(3), // as-is = option #8
            SearchStats {
                evaluated: 8,
                skipped: 0,
            },
        )
    }

    #[test]
    fn accessors() {
        let rec = cloud_rec();
        assert_eq!(rec.cloud().as_str(), "softlayer");
        assert_eq!(rec.options().len(), 4);
        assert_eq!(rec.best().option_number(), 3);
        assert_eq!(rec.min_risk().unwrap().option_number(), 5);
        assert_eq!(rec.as_is().unwrap().option_number(), 8);
        assert_eq!(rec.stats().evaluated, 8);
        assert!(rec.best().labels().contains(&"RAID 1".to_owned()));
    }

    #[test]
    fn savings_match_paper_62_percent() {
        let rec = cloud_rec();
        // As-is (#8) meets the SLA, so the like-for-like target is the
        // penalty-free option #5 at $1350: 1 − 1350/3550 ≈ 62 %.
        let savings = rec.savings_vs_as_is().unwrap();
        assert!((savings - (1.0 - 1350.0 / 3550.0)).abs() < 1e-12);
        assert!((savings - 0.62).abs() < 0.005, "≈62 %, got {savings}");
    }

    #[test]
    fn budget_constrained_selection() {
        let rec = cloud_rec();
        let money = |v: f64| uptime_core::MoneyPerMonth::new(v).unwrap();
        // $500 budget: only options #1 ($0) and #3 ($350) qualify; #3 wins
        // on TCO and on uptime.
        let best = rec.best_within_budget(money(500.0)).unwrap();
        assert_eq!(best.option_number(), 3);
        let top = rec.max_uptime_within_budget(money(500.0)).unwrap();
        assert_eq!(top.option_number(), 3);
        // $2000 budget admits #5: still min TCO at #3 but max uptime at #5.
        assert_eq!(
            rec.best_within_budget(money(2000.0))
                .unwrap()
                .option_number(),
            3
        );
        assert_eq!(
            rec.max_uptime_within_budget(money(2000.0))
                .unwrap()
                .option_number(),
            5
        );
        // Unlimited budget: max uptime is the full-HA option #8.
        assert_eq!(
            rec.max_uptime_within_budget(money(1e9))
                .unwrap()
                .option_number(),
            8
        );
    }

    #[test]
    fn meets_sla_flags() {
        let rec = cloud_rec();
        assert!(!rec.options()[0].meets_sla());
        assert!(!rec.options()[1].meets_sla());
        assert!(rec.options()[2].meets_sla());
        assert!(rec.options()[3].meets_sla());
    }

    #[test]
    fn recommendation_aggregates_across_clouds() {
        let rec = Recommendation::new(vec![cloud_rec()]);
        assert_eq!(rec.clouds().len(), 1);
        assert_eq!(rec.best().unwrap().option_number(), 3);
        assert_eq!(rec.best_tco().unwrap().value(), 1250.0);
        let (cloud, opt) = rec.min_risk().unwrap();
        assert_eq!(cloud.as_str(), "softlayer");
        assert_eq!(opt.option_number(), 5);
    }

    #[test]
    fn empty_recommendation() {
        let rec = Recommendation::new(vec![]);
        assert!(rec.best().is_none());
        assert!(rec.min_risk().is_none());
        assert!(rec.best_tco().is_none());
    }

    #[test]
    fn savings_none_without_as_is() {
        let mut rec = cloud_rec();
        rec.as_is_index = None;
        assert!(rec.savings_vs_as_is().is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let rec = Recommendation::new(vec![cloud_rec()]);
        let json = serde_json::to_string(&rec).unwrap();
        let back: Recommendation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn degraded_annotation() {
        let rec = Recommendation::new(vec![cloud_rec()]);
        assert!(!rec.is_degraded());
        assert!(rec.degraded().is_none());

        let rec = rec.with_degraded(DegradedMode {
            stale_clouds: vec![case_study::cloud_id()],
            quarantined_batches: 3,
            note: "circuit breaker open".into(),
        });
        assert!(rec.is_degraded());
        let meta = rec.degraded().unwrap();
        assert_eq!(meta.stale_clouds.len(), 1);
        assert_eq!(meta.quarantined_batches, 3);
        // Degradation survives serialization.
        let json = serde_json::to_string(&rec).unwrap();
        let back: Recommendation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
        assert!(back.is_degraded());
    }
}
