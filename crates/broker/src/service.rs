//! The brokered service itself.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use uptime_catalog::{CatalogStore, CloudId, ComponentKind, HaMethodId};
use uptime_durability::{Journal, SnapshotStore, StateDir, HEADER_LEN};
use uptime_optimizer::{
    branch_bound, composition, composition_bnb, exhaustive, pareto_bnb, Archetype,
    CompositionEvaluator, CompositionSpace, Evaluation, FrontierOutcome, Objective, SearchSpace,
    SearchStats,
};
use uptime_slo::PointMetrics;

use crate::durability::{
    DurabilityConfig, DurabilityInner, DurabilityState, JournalEntry, PersistentState,
    RecoveryReport, ReportedTruncation, JOURNAL_SCHEMA_VERSION, SNAPSHOT_SCHEMA_VERSION,
};
use crate::error::BrokerError;
use crate::planner::{DeploymentPlan, ProvisionStep};
use crate::provider::{CloudProvider, ProviderTelemetry};
use crate::recommendation::{CloudRecommendation, DegradedMode, RankedOption, Recommendation};
use crate::request::SolutionRequest;
use crate::resilience::{BreakerState, CircuitBreaker, RetryPolicy};
use crate::slo::{CloudFrontier, FrontierPoint, FrontierReport, FrontierRequest};
use crate::telemetry::{validate_batch, EstimatedParameters, QuarantinePolicy, TelemetryEstimator};

/// Consecutive quarantined batches after which a provider's catalog view
/// is considered stale for degraded-mode purposes.
const QUARANTINE_STALE_STREAK: u32 = 3;

/// Per-provider control-plane state: the provider itself plus the
/// resilience bookkeeping the broker keeps about it.
struct ProviderSlot {
    provider: Box<dyn CloudProvider + Send + Sync>,
    breaker: CircuitBreaker,
    quarantined_streak: u32,
    batches_absorbed: u64,
    batches_quarantined: u64,
}

/// Default number of incidents the bounded incident ring retains.
pub const DEFAULT_INCIDENT_CAPACITY: usize = 1024;

/// What went wrong, as recorded in the incident log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentCategory {
    /// A telemetry batch failed structural validation.
    TelemetryRejected,
    /// A structurally valid batch carried an implausible estimate.
    ImplausibleEstimate,
    /// A provider call failed even after retries.
    ProviderFault,
    /// A provider's circuit breaker tripped open.
    BreakerOpened,
    /// A provider's circuit breaker closed again after a successful probe.
    BreakerRecovered,
    /// Recovery found the journal's tail torn or corrupt and truncated
    /// replay at the last valid record.
    JournalTruncated,
    /// A write-ahead journal append failed; the batch was NOT absorbed.
    DurabilityFault,
}

/// One entry in the broker's incident log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Monotonic sequence number (order of occurrence).
    pub seq: u64,
    /// The cloud involved.
    pub cloud: CloudId,
    /// What kind of incident this is.
    pub category: IncidentCategory,
    /// Human-readable detail.
    pub detail: String,
    /// The provider breaker's virtual tick when a state transition was
    /// logged. Set for [`IncidentCategory::BreakerOpened`] and
    /// [`IncidentCategory::BreakerRecovered`] so the incident log carries
    /// the same timeline the `obs` breaker counters summarize.
    pub breaker_tick: Option<u64>,
    /// The breaker state *after* the transition, when one occurred.
    pub breaker_state: Option<BreakerState>,
}

/// A bounded incident log: a capped ring buffer with a dedicated
/// monotonic sequence counter, so `incident_count` and per-incident
/// seqs stay correct after old entries are evicted.
#[derive(Debug)]
pub(crate) struct IncidentRing {
    entries: VecDeque<Incident>,
    capacity: usize,
    /// Seq the next incident gets; doubles as the lifetime total.
    next_seq: u64,
}

impl IncidentRing {
    fn new(capacity: usize) -> IncidentRing {
        IncidentRing {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 0,
        }
    }

    /// Rebuilds a ring from snapshot state. The restored `next_seq` is
    /// clamped up so it can never run behind the retained entries.
    fn restore(entries: Vec<Incident>, next_seq: u64, capacity: usize) -> IncidentRing {
        let mut ring = IncidentRing::new(capacity);
        let floor = entries.iter().map(|i| i.seq + 1).max().unwrap_or(0);
        ring.next_seq = next_seq.max(floor);
        for incident in entries {
            ring.entries.push_back(incident);
            if ring.entries.len() > ring.capacity {
                ring.entries.pop_front();
            }
        }
        ring
    }

    /// Appends an incident, assigning it the next sequence number and
    /// evicting the oldest entry when at capacity.
    fn push(&mut self, make: impl FnOnce(u64) -> Incident) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(make(seq));
        if self.entries.len() > self.capacity {
            self.entries.pop_front();
        }
        seq
    }

    /// Lifetime incident count (monotonic; unaffected by eviction).
    fn total(&self) -> u64 {
        self.next_seq
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn to_vec(&self) -> Vec<Incident> {
        self.entries.iter().cloned().collect()
    }
}

/// Control-plane health of one fronted provider.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProviderHealth {
    /// The cloud this provider fronts.
    pub cloud: CloudId,
    /// The provider's display name.
    pub display_name: String,
    /// Current circuit-breaker state.
    pub state: BreakerState,
    /// Consecutive provider-call failures observed.
    pub consecutive_failures: u32,
    /// How many times the breaker has tripped open.
    pub times_opened: u64,
    /// Consecutive telemetry batches quarantined.
    pub quarantined_streak: u32,
    /// Batches absorbed into the catalog.
    pub batches_absorbed: u64,
    /// Batches quarantined instead of absorbed.
    pub batches_quarantined: u64,
}

/// A point-in-time health report for the whole broker.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BrokerHealth {
    /// Per-provider health, ordered by cloud id.
    pub providers: Vec<ProviderHealth>,
    /// Total incidents logged since startup.
    pub incident_count: u64,
    /// Total telemetry batches quarantined across providers.
    pub quarantined_batches: u64,
    /// Whether recommendations are currently served degraded.
    pub degraded: bool,
}

/// Which optimizer backend [`BrokerService::recommend`] and
/// [`BrokerService::recommend_metacloud`] run on — `brokerctl`'s
/// `--engine` flag.
///
/// [`SearchEngine::Exhaustive`] materializes every HA permutation so the
/// recommendation carries the paper's full Fig. 10 option table.
/// [`SearchEngine::BranchBound`] runs the tight-bound work-stealing
/// parallel branch-and-bound
/// ([`uptime_optimizer::branch_bound::search_with_threads`]): exactly the
/// same `MinTco` winner, but the option table is trimmed to the winner
/// (plus the as-is option when one is declared) because the engine never
/// visits — let alone materializes — most of the space. Use it when the
/// space is too large to enumerate; the recommendation's search stats
/// then show how much of the space the bound discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchEngine {
    /// Factorized full enumeration; complete ranked option tables.
    #[default]
    Exhaustive,
    /// Tight-bound parallel branch-and-bound; winner-only option tables.
    BranchBound,
}

impl std::str::FromStr for SearchEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exhaustive" | "full" => Ok(SearchEngine::Exhaustive),
            "bnb" | "branch-bound" => Ok(SearchEngine::BranchBound),
            other => Err(format!(
                "unknown engine `{other}` (expected `exhaustive` or `bnb`)"
            )),
        }
    }
}

impl fmt::Display for SearchEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SearchEngine::Exhaustive => "exhaustive",
            SearchEngine::BranchBound => "bnb",
        })
    }
}

/// The uptime-optimizing brokered service of the paper's Fig. 2.
///
/// Holds the broker's knowledge base behind a read-write lock so that
/// telemetry ingestion (writes) can interleave with recommendation
/// requests (reads) — the long-running service shape the paper envisages.
///
/// Beyond the knowledge base, the service optionally fronts live
/// [`CloudProvider`]s. Provider calls go through a [`RetryPolicy`] and a
/// per-provider [`CircuitBreaker`]; harvested telemetry passes structural
/// validation and a [`QuarantinePolicy`] plausibility gate before being
/// absorbed. When a provider is unreachable or its telemetry is
/// quarantined, recommendations keep flowing from the last known-good
/// catalog, annotated with [`DegradedMode`].
pub struct BrokerService {
    catalog: RwLock<CatalogStore>,
    providers: RwLock<BTreeMap<CloudId, ProviderSlot>>,
    incidents: RwLock<IncidentRing>,
    retry: RetryPolicy,
    quarantine: QuarantinePolicy,
    breaker_template: CircuitBreaker,
    engine: SearchEngine,
    recorder: Arc<dyn uptime_obs::Recorder>,
    /// Bumped on every successful telemetry absorb; serving-layer caches
    /// key their entries by this and so are invalidated by any absorb.
    epoch: std::sync::atomic::AtomicU64,
    /// Write-ahead journal + snapshot endpoint; `None` runs in-memory
    /// only (the pre-PR 6 behavior).
    durability: Option<DurabilityState>,
}

impl fmt::Debug for BrokerService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokerService")
            .field("providers", &self.providers.read().len())
            .field("incidents", &self.incidents.read().len())
            .field("retry", &self.retry)
            .field("quarantine", &self.quarantine)
            .finish_non_exhaustive()
    }
}

impl BrokerService {
    /// Creates a service fronting the given knowledge base.
    #[must_use]
    pub fn new(catalog: CatalogStore) -> Self {
        BrokerService {
            catalog: RwLock::new(catalog),
            providers: RwLock::new(BTreeMap::new()),
            incidents: RwLock::new(IncidentRing::new(DEFAULT_INCIDENT_CAPACITY)),
            retry: RetryPolicy::default(),
            quarantine: QuarantinePolicy::default(),
            breaker_template: CircuitBreaker::default(),
            engine: SearchEngine::default(),
            recorder: Arc::new(uptime_obs::NoopRecorder),
            epoch: std::sync::atomic::AtomicU64::new(0),
            durability: None,
        }
    }

    /// Caps the incident ring at `capacity` entries (existing entries and
    /// the sequence counter are preserved; the oldest overflow is
    /// evicted). The default is [`DEFAULT_INCIDENT_CAPACITY`].
    #[must_use]
    pub fn with_incident_capacity(self, capacity: usize) -> Self {
        {
            let mut incidents = self.incidents.write();
            *incidents = IncidentRing::restore(incidents.to_vec(), incidents.total(), capacity);
        }
        self
    }

    /// The telemetry epoch: how many telemetry batches this service has
    /// absorbed into its knowledge base. Any recommendation computed at
    /// epoch `e` is stale once the epoch moves past `e` — serving-layer
    /// caches compare entry epochs against this value on every lookup.
    #[must_use]
    pub fn telemetry_epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Attaches a metrics recorder; every sync, ingest, and recommend call
    /// reports `broker.*` metrics through it. The default is the no-op
    /// recorder, which costs nothing.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn uptime_obs::Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Selects the optimizer backend recommendations run on. The default
    /// is [`SearchEngine::Exhaustive`]; see [`SearchEngine`] for the
    /// trade-off.
    #[must_use]
    pub fn with_engine(mut self, engine: SearchEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The optimizer backend recommendations run on.
    #[must_use]
    pub fn engine(&self) -> SearchEngine {
        self.engine
    }

    /// The recorder recommendations report `broker.*` metrics through.
    pub(crate) fn obs_recorder(&self) -> &dyn uptime_obs::Recorder {
        &*self.recorder
    }

    /// Replaces the retry policy applied to provider calls.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the telemetry plausibility gate.
    #[must_use]
    pub fn with_quarantine_policy(mut self, quarantine: QuarantinePolicy) -> Self {
        self.quarantine = quarantine;
        self
    }

    /// Replaces the circuit-breaker template cloned for each provider
    /// registered afterwards.
    #[must_use]
    pub fn with_circuit_breaker(mut self, breaker: CircuitBreaker) -> Self {
        self.breaker_template = breaker;
        self
    }

    /// Registers a live provider for its cloud, replacing any previous
    /// provider for the same cloud (breaker state starts fresh).
    pub fn register_provider(&self, provider: Box<dyn CloudProvider + Send + Sync>) {
        let cloud = provider.id().clone();
        let slot = ProviderSlot {
            provider,
            breaker: self.breaker_template.clone(),
            quarantined_streak: 0,
            batches_absorbed: 0,
            batches_quarantined: 0,
        };
        self.providers.write().insert(cloud, slot);
    }

    /// A snapshot of the current knowledge base.
    #[must_use]
    pub fn catalog_snapshot(&self) -> CatalogStore {
        self.catalog.read().clone()
    }

    /// A snapshot of the retained incident log, in order of occurrence.
    /// The ring is bounded: after eviction this holds the most recent
    /// entries, while [`BrokerHealth::incident_count`] stays lifetime-
    /// accurate.
    #[must_use]
    pub fn incidents(&self) -> Vec<Incident> {
        self.incidents.read().to_vec()
    }

    fn log_incident(
        &self,
        cloud: &CloudId,
        category: IncidentCategory,
        detail: String,
        transition: Option<(u64, BreakerState)>,
    ) {
        self.recorder.event("broker.incident", &detail);
        self.incidents.write().push(|seq| Incident {
            seq,
            cloud: cloud.clone(),
            category,
            detail,
            breaker_tick: transition.map(|(tick, _)| tick),
            breaker_state: transition.map(|(_, state)| state),
        });
    }

    /// Harvests component telemetry from the registered provider for
    /// `cloud` — through the retry policy and circuit breaker — and
    /// absorbs it via [`Self::ingest_component_telemetry`].
    ///
    /// # Errors
    ///
    /// * [`BrokerError::ProviderUnavailable`] when no provider is
    ///   registered for `cloud`, or the provider kept faulting after
    ///   retries.
    /// * [`BrokerError::CircuitOpen`] when the breaker rejects the call.
    /// * [`BrokerError::Timeout`] when the last retry timed out.
    /// * [`BrokerError::TelemetryRejected`] when the harvested batch was
    ///   quarantined instead of absorbed.
    pub fn sync_telemetry(
        &self,
        cloud: &CloudId,
        kind: ComponentKind,
        fleet: u32,
        years: f64,
        seed: u64,
    ) -> Result<EstimatedParameters, BrokerError> {
        self.sync_telemetry_traced(
            cloud,
            kind,
            fleet,
            years,
            seed,
            &uptime_obs::TraceSpan::disabled(),
        )
    }

    /// [`Self::sync_telemetry`] under a request trace: hangs a
    /// `broker.sync` span — with `broker.sync.harvest` and absorb children
    /// attributing time to the provider call vs the catalog merge — below
    /// `parent`. Identical behaviour otherwise.
    ///
    /// # Errors
    ///
    /// Same as [`Self::sync_telemetry`].
    pub fn sync_telemetry_traced(
        &self,
        cloud: &CloudId,
        kind: ComponentKind,
        fleet: u32,
        years: f64,
        seed: u64,
        parent: &uptime_obs::TraceSpan,
    ) -> Result<EstimatedParameters, BrokerError> {
        let rec = &*self.recorder;
        let _span = uptime_obs::span!(rec, "broker.sync");
        let trace_span = parent.child("broker.sync");
        // Harvest phase: providers lock only (never held across the
        // catalog lock taken during ingestion).
        let telemetry = {
            let mut harvest_span = trace_span.child("broker.sync.harvest");
            let mut providers = self.providers.write();
            let slot =
                providers
                    .get_mut(cloud)
                    .ok_or_else(|| BrokerError::ProviderUnavailable {
                        cloud: cloud.clone(),
                        reason: "no provider registered".into(),
                    })?;
            if !slot.breaker.allow() {
                rec.counter_add("broker.breaker.rejected", 1);
                return Err(BrokerError::CircuitOpen {
                    cloud: cloud.clone(),
                });
            }
            let was = slot.breaker.state();
            let outcome = self.retry.run(
                seed,
                |e: &BrokerError| {
                    matches!(
                        e,
                        BrokerError::ProviderUnavailable { .. } | BrokerError::Timeout { .. }
                    )
                },
                |_attempt| {
                    slot.provider
                        .harvest_component_telemetry(kind, fleet, years, seed)
                },
            );
            rec.observe("broker.sync.attempts", f64::from(outcome.attempts));
            rec.observe("broker.sync.backoff_ms", outcome.virtual_elapsed_ms as f64);
            rec.counter_add(
                "broker.sync.retries",
                u64::from(outcome.attempts.saturating_sub(1)),
            );
            harvest_span.attr_u64("attempts", u64::from(outcome.attempts));
            match outcome.result {
                Ok(telemetry) => {
                    slot.breaker.record_success();
                    let tick = slot.breaker.tick();
                    if was != BreakerState::Closed {
                        drop(providers);
                        rec.counter_add("broker.breaker.recovered", 1);
                        self.log_incident(
                            cloud,
                            IncidentCategory::BreakerRecovered,
                            "probe harvest succeeded; breaker closed".into(),
                            Some((tick, BreakerState::Closed)),
                        );
                    }
                    telemetry
                }
                Err(err) => {
                    let opened_before = slot.breaker.times_opened();
                    slot.breaker.record_failure();
                    let tripped = slot.breaker.times_opened() > opened_before;
                    let tick = slot.breaker.tick();
                    drop(providers);
                    rec.counter_add("broker.sync.failed", 1);
                    self.log_incident(
                        cloud,
                        IncidentCategory::ProviderFault,
                        format!(
                            "harvest failed after {} attempt(s): {err}",
                            outcome.attempts
                        ),
                        None,
                    );
                    if tripped {
                        rec.counter_add("broker.breaker.opened", 1);
                        self.log_incident(
                            cloud,
                            IncidentCategory::BreakerOpened,
                            "consecutive provider faults tripped the breaker".into(),
                            Some((tick, BreakerState::Open)),
                        );
                    }
                    return Err(err);
                }
            }
        };
        self.ingest_component_telemetry_traced(cloud, kind, &telemetry, &trace_span)
    }

    /// Absorbs harvested component telemetry into the knowledge base:
    /// validates the batch, estimates `P̂`/`f̂` from the trace, checks the
    /// estimate against the plausibility gate, and evidence-merges it into
    /// the cloud's reliability record for that component.
    ///
    /// Returns the estimate that was absorbed.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::UnknownCloud`] if the broker does not front
    ///   `cloud`.
    /// * [`BrokerError::TelemetryRejected`] if the batch failed structural
    ///   validation or the plausibility gate; the batch is quarantined and
    ///   logged, and the catalog is left untouched.
    pub fn ingest_component_telemetry(
        &self,
        cloud: &CloudId,
        kind: ComponentKind,
        telemetry: &ProviderTelemetry,
    ) -> Result<EstimatedParameters, BrokerError> {
        self.ingest_component_telemetry_traced(
            cloud,
            kind,
            telemetry,
            &uptime_obs::TraceSpan::disabled(),
        )
    }

    /// [`Self::ingest_component_telemetry`] under a request trace: hangs a
    /// `broker.absorb` span — with a `broker.journal.append` child around
    /// the write-ahead — below `parent`. Identical behaviour otherwise.
    ///
    /// # Errors
    ///
    /// Same as [`Self::ingest_component_telemetry`].
    pub fn ingest_component_telemetry_traced(
        &self,
        cloud: &CloudId,
        kind: ComponentKind,
        telemetry: &ProviderTelemetry,
        parent: &uptime_obs::TraceSpan,
    ) -> Result<EstimatedParameters, BrokerError> {
        let mut absorb_span = parent.child("broker.absorb");
        absorb_span.attr_u64("clusters", u64::from(telemetry.clusters));
        if let Err(reason) = validate_batch(telemetry) {
            self.note_quarantine(cloud, IncidentCategory::TelemetryRejected, &reason);
            return Err(BrokerError::TelemetryRejected { reason });
        }

        let estimator = TelemetryEstimator::new();
        // Estimate each observed cluster (a fleet of singletons) and merge.
        let records: Vec<_> = (0..telemetry.clusters as usize)
            .map(|c| {
                estimator.estimate(
                    &telemetry.trace,
                    c,
                    telemetry.nodes_per_cluster,
                    telemetry.span,
                )
            })
            .collect();
        let merged_record = records
            .iter()
            .map(EstimatedParameters::to_reliability_record)
            .reduce(|a, b| a.merge(&b))
            .ok_or(BrokerError::NoCandidates)?;
        let merged_estimate = records
            .into_iter()
            .reduce(|a, b| merge_estimates(&a, &b))
            .expect("records non-empty");

        {
            let mut catalog = self.catalog.write();
            let profile = catalog
                .cloud_mut(cloud)
                .ok_or_else(|| BrokerError::UnknownCloud { id: cloud.clone() })?;
            if let Some(existing) = profile.reliability(kind) {
                if let Err(reason) = self.quarantine.plausible(existing, &merged_estimate) {
                    drop(catalog);
                    self.note_quarantine(cloud, IncidentCategory::ImplausibleEstimate, &reason);
                    return Err(BrokerError::TelemetryRejected { reason });
                }
            }

            // Write-ahead: the distilled absorb reaches the journal before
            // it commits. Every epoch bump happens under this write lock,
            // so the post-absorb epoch is exactly current + 1. A failed
            // append aborts the absorb — the journal never lags the
            // in-memory state.
            if let Some(durability) = &self.durability {
                let _journal_span = absorb_span.child("broker.journal.append");
                let epoch_after = self.epoch.load(std::sync::atomic::Ordering::Acquire) + 1;
                let entry = JournalEntry {
                    schema_version: JOURNAL_SCHEMA_VERSION,
                    cloud: cloud.clone(),
                    kind,
                    epoch_after,
                    estimate: merged_estimate.clone(),
                    record: merged_record,
                };
                if let Err(reason) = self.append_journal(durability, &entry) {
                    drop(catalog);
                    self.recorder.counter_add("broker.journal.append_failed", 1);
                    self.log_incident(
                        cloud,
                        IncidentCategory::DurabilityFault,
                        format!("journal append failed, batch not absorbed: {reason}"),
                        None,
                    );
                    return Err(BrokerError::Durability { reason });
                }
            }

            profile.absorb_reliability(kind, merged_record);

            // The knowledge base moved: everything computed before this
            // absorb is now stale. Bump while still holding the write lock
            // so a reader observing the new epoch observes the new records.
            self.epoch.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
        }
        self.maybe_snapshot();

        // The batch made it into the catalog: clear the quarantine streak.
        if let Some(slot) = self.providers.write().get_mut(cloud) {
            slot.quarantined_streak = 0;
            slot.batches_absorbed += 1;
        }
        self.recorder.counter_add("broker.quarantine.accepted", 1);
        Ok(merged_estimate)
    }

    /// Records a quarantined batch against the provider slot (if any) and
    /// the incident log.
    fn note_quarantine(&self, cloud: &CloudId, category: IncidentCategory, reason: &str) {
        if let Some(slot) = self.providers.write().get_mut(cloud) {
            slot.quarantined_streak += 1;
            slot.batches_quarantined += 1;
        }
        self.recorder.counter_add("broker.quarantine.rejected", 1);
        self.log_incident(cloud, category, reason.to_owned(), None);
    }

    /// Degradation metadata for the given clouds, or `None` when every
    /// involved provider is healthy (or unmanaged).
    #[must_use]
    pub fn degraded_mode(&self, clouds: &[CloudId]) -> Option<DegradedMode> {
        let providers = self.providers.read();
        let mut stale_clouds = Vec::new();
        let mut quarantined_batches = 0;
        for cloud in clouds {
            let Some(slot) = providers.get(cloud) else {
                continue;
            };
            let breaker_open = slot.breaker.state() != BreakerState::Closed;
            let telemetry_stale = slot.quarantined_streak >= QUARANTINE_STALE_STREAK;
            if breaker_open || telemetry_stale {
                stale_clouds.push(cloud.clone());
                quarantined_batches += slot.batches_quarantined;
            }
        }
        if stale_clouds.is_empty() {
            return None;
        }
        let names: Vec<&str> = stale_clouds.iter().map(CloudId::as_str).collect();
        Some(DegradedMode {
            note: format!(
                "answers for {} rest on the last known-good catalog \
                 (provider unreachable or telemetry quarantined)",
                names.join(", ")
            ),
            stale_clouds,
            quarantined_batches,
        })
    }

    /// A point-in-time health report across every registered provider.
    #[must_use]
    pub fn health(&self) -> BrokerHealth {
        let providers = self.providers.read();
        let provider_health: Vec<ProviderHealth> = providers
            .iter()
            .map(|(cloud, slot)| ProviderHealth {
                cloud: cloud.clone(),
                display_name: slot.provider.display_name().to_owned(),
                state: slot.breaker.state(),
                consecutive_failures: slot.breaker.consecutive_failures(),
                times_opened: slot.breaker.times_opened(),
                quarantined_streak: slot.quarantined_streak,
                batches_absorbed: slot.batches_absorbed,
                batches_quarantined: slot.batches_quarantined,
            })
            .collect();
        let quarantined_batches = provider_health.iter().map(|p| p.batches_quarantined).sum();
        let degraded = provider_health.iter().any(|p| {
            p.state != BreakerState::Closed || p.quarantined_streak >= QUARANTINE_STALE_STREAK
        });
        drop(providers);
        BrokerHealth {
            providers: provider_health,
            incident_count: self.incidents.read().total(),
            quarantined_batches,
            degraded,
        }
    }

    /// Runs the paper's full pipeline: enumerate every HA permutation on
    /// every requested cloud, price them, and assemble the recommendation.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::UnknownCloud`] for a requested cloud the broker
    ///   does not front.
    /// * [`BrokerError::InvalidRequest`] when a declared as-is method does
    ///   not exist for its tier.
    /// * Catalog/space errors for missing prices or reliability records.
    pub fn recommend(&self, request: &SolutionRequest) -> Result<Recommendation, BrokerError> {
        self.recommend_traced(request, &uptime_obs::TraceSpan::disabled())
    }

    /// [`Self::recommend`] under a request trace: hangs a
    /// `broker.recommend` span — with engine-level children carrying the
    /// search counters — below `parent`. Identical answer bytes; the only
    /// difference is what lands in the flight recorder.
    ///
    /// # Errors
    ///
    /// Same as [`Self::recommend`].
    pub fn recommend_traced(
        &self,
        request: &SolutionRequest,
        parent: &uptime_obs::TraceSpan,
    ) -> Result<Recommendation, BrokerError> {
        if let Some(topology) = request.topology() {
            return self.recommend_archetype(request, topology, parent);
        }
        let rec = &*self.recorder;
        let _span = uptime_obs::span!(rec, "broker.recommend");
        let trace_span = parent.child("broker.recommend");
        let catalog = self.catalog.read();
        let clouds = resolve_clouds(&catalog, request)?;

        let model = request.tco_model();
        let mut cloud_recs = Vec::with_capacity(clouds.len());
        for cloud in clouds {
            let space = SearchSpace::from_catalog(&catalog, &cloud, request.tiers())?;
            // Method ids per tier, in the same order the space was built.
            let method_ids: Vec<Vec<HaMethodId>> = request
                .tiers()
                .iter()
                .map(|kind| {
                    catalog
                        .methods_for(*kind)
                        .iter()
                        .map(|m| m.id().clone())
                        .collect()
                })
                .collect();

            let as_is_assignment = match request.as_is() {
                Some(methods) => Some(resolve_as_is(&method_ids, methods)?),
                None => None,
            };

            let (outcome, ordered) = match self.engine {
                SearchEngine::Exhaustive => {
                    let outcome = exhaustive::search_recorded(
                        &space,
                        &model,
                        Objective::MinTco,
                        rec,
                        &trace_span,
                    );
                    // Paper numbering: ascending cardinality, then
                    // mixed-radix value.
                    let mut ordered: Vec<Evaluation> = outcome.evaluations().to_vec();
                    ordered.sort_by_key(|e| {
                        (e.cardinality(), assignment_value(&space, e.assignment()))
                    });
                    (outcome, ordered)
                }
                SearchEngine::BranchBound => {
                    // Streaming: the engine proves the winner without
                    // visiting most of the space, so the option table is
                    // trimmed to the winner plus the declared as-is.
                    let outcome = branch_bound::search_with_threads_recorded(
                        &space,
                        &model,
                        0,
                        rec,
                        &trace_span,
                    );
                    let winner = outcome.best().ok_or(BrokerError::NoCandidates)?.clone();
                    let mut ordered = vec![winner];
                    if let Some(assignment) = &as_is_assignment {
                        if assignment.as_slice() != ordered[0].assignment() {
                            ordered.push(Evaluation::evaluate(&space, &model, assignment));
                        }
                    }
                    (outcome, ordered)
                }
            };

            let mut options = Vec::with_capacity(ordered.len());
            let mut best_index = 0;
            let mut min_risk_index: Option<usize> = None;
            let mut as_is_index: Option<usize> = None;
            for (i, e) in ordered.iter().enumerate() {
                let meets = model.sla().is_met_by(e.uptime().availability());
                let ids = e
                    .assignment()
                    .iter()
                    .zip(&method_ids)
                    .map(|(&idx, tier)| tier[idx].clone())
                    .collect();
                let labels = e.labels(&space).iter().map(|s| (*s).to_owned()).collect();
                let tier_costs = e
                    .assignment()
                    .iter()
                    .zip(space.components())
                    .map(|(&idx, comp)| comp.candidates()[idx].monthly_cost())
                    .collect();
                options.push(RankedOption::new(
                    i + 1,
                    labels,
                    ids,
                    tier_costs,
                    (*e).clone(),
                    meets,
                ));

                if e.tco().total() < ordered[best_index].tco().total() {
                    best_index = i;
                }
                if meets {
                    let better = match min_risk_index {
                        Some(j) => e.tco().total() < ordered[j].tco().total(),
                        None => true,
                    };
                    if better {
                        min_risk_index = Some(i);
                    }
                }
                if as_is_assignment.as_deref() == Some(e.assignment()) {
                    as_is_index = Some(i);
                }
            }

            cloud_recs.push(CloudRecommendation::new(
                cloud,
                options,
                best_index,
                min_risk_index,
                as_is_index,
                outcome.stats(),
            ));
        }
        drop(catalog);
        Ok(self.finish_recommendation(cloud_recs))
    }

    /// The archetype-topology variant of [`BrokerService::recommend`]:
    /// replicates the paper tiers into the requested series–parallel
    /// shape (see [`Archetype`]) and searches the composition space —
    /// exhaustively with a full Fig.-10-style option table, or by exact
    /// branch-and-bound with the table trimmed to the proven winner.
    fn recommend_archetype(
        &self,
        request: &SolutionRequest,
        topology: &str,
        parent: &uptime_obs::TraceSpan,
    ) -> Result<Recommendation, BrokerError> {
        let rec = &*self.recorder;
        let _span = uptime_obs::span!(rec, "broker.recommend.archetype");
        let trace_span = parent.child("broker.recommend.archetype");
        let archetype: Archetype =
            topology
                .parse()
                .map_err(|err: uptime_optimizer::archetypes::UnknownArchetype| {
                    BrokerError::InvalidRequest {
                        reason: err.to_string(),
                    }
                })?;
        if request.as_is().is_some() {
            // As-is methods name one candidate per *serial tier*; an
            // archetype space has per-leaf candidates in a different
            // arity, so the Fig. 10 savings comparison has no referent.
            return Err(BrokerError::InvalidRequest {
                reason: "as-is comparison is not supported with a topology archetype".into(),
            });
        }
        let catalog = self.catalog.read();
        let clouds = resolve_clouds(&catalog, request)?;

        let model = request.tco_model();
        let mut cloud_recs = Vec::with_capacity(clouds.len());
        for cloud in clouds {
            let space = archetype.space(&catalog, &cloud)?;
            let method_ids = leaf_method_ids(&catalog, &space);
            let (ordered, stats) = match self.engine {
                SearchEngine::Exhaustive => {
                    if space.assignment_count() <= ARCHETYPE_TABLE_CAP {
                        // Small enough to rank every variant the way the
                        // paper numbers them: ascending cardinality, then
                        // mixed-radix value.
                        let mut table_span = trace_span.child("optimizer.composition.table");
                        let evaluator = CompositionEvaluator::new(&space, &model);
                        let mut cursor = evaluator.cursor();
                        let mut ordered = vec![cursor.evaluation()];
                        while cursor.advance() {
                            ordered.push(cursor.evaluation());
                        }
                        let stats = SearchStats {
                            evaluated: ordered.len() as u64,
                            skipped: 0,
                        };
                        ordered.sort_by_key(|e| {
                            (
                                e.cardinality(),
                                composition_assignment_value(&space, e.assignment()),
                            )
                        });
                        table_span.attr_u64("variants", stats.evaluated);
                        (ordered, stats)
                    } else {
                        let outcome = composition::search_recorded(
                            &space,
                            &model,
                            Objective::MinTco,
                            rec,
                            &trace_span,
                        );
                        let best = outcome.best().cloned().ok_or(BrokerError::NoCandidates)?;
                        (vec![best], outcome.stats())
                    }
                }
                SearchEngine::BranchBound => {
                    let outcome = composition_bnb::search_with_threads_recorded(
                        &space,
                        &model,
                        0,
                        rec,
                        &trace_span,
                    );
                    let best = outcome.best().cloned().ok_or(BrokerError::NoCandidates)?;
                    (vec![best], outcome.stats())
                }
            };

            let mut options = Vec::with_capacity(ordered.len());
            let mut best_index = 0;
            let mut min_risk_index: Option<usize> = None;
            for (i, e) in ordered.iter().enumerate() {
                let meets = model.sla().is_met_by(e.uptime().availability());
                let ids = e
                    .assignment()
                    .iter()
                    .zip(&method_ids)
                    .map(|(&idx, leaf)| leaf[idx].clone())
                    .collect();
                let labels = e
                    .assignment()
                    .iter()
                    .zip(space.leaves())
                    .map(|(&idx, leaf)| leaf.candidates()[idx].label().to_owned())
                    .collect();
                let tier_costs = e
                    .assignment()
                    .iter()
                    .zip(space.leaves())
                    .map(|(&idx, leaf)| leaf.candidates()[idx].monthly_cost())
                    .collect();
                options.push(RankedOption::new(
                    i + 1,
                    labels,
                    ids,
                    tier_costs,
                    (*e).clone(),
                    meets,
                ));

                if e.tco().total() < ordered[best_index].tco().total() {
                    best_index = i;
                }
                if meets {
                    let better = match min_risk_index {
                        Some(j) => e.tco().total() < ordered[j].tco().total(),
                        None => true,
                    };
                    if better {
                        min_risk_index = Some(i);
                    }
                }
            }

            cloud_recs.push(CloudRecommendation::new(
                cloud,
                options,
                best_index,
                min_risk_index,
                None,
                stats,
            ));
        }
        drop(catalog);
        Ok(self.finish_recommendation(cloud_recs))
    }

    /// Answers a declarative SLO request with the exact feasible
    /// cost/uptime Pareto frontier per cloud (PR 9): the spec's hard
    /// objectives become box constraints for
    /// [`uptime_optimizer::pareto_bnb`], the soft objectives score every
    /// returned point, and the broker recommends the point with the
    /// lowest weighted violation.
    ///
    /// Both engines answer bit-identically: `Exhaustive` runs the
    /// full-enumeration fast-path sweep, `BranchBound` the
    /// epsilon-dominance branch-and-bound. A `topology` on the request
    /// routes to the archetype's series–parallel composition space.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::SloInfeasible`] when no deployment satisfies the
    ///   hard constraints on *any* requested cloud. (A cloud that is
    ///   individually infeasible while others are not is reported with
    ///   an empty frontier instead.)
    /// * Otherwise the same failures as [`Self::recommend`].
    pub fn solve_slo(&self, request: &FrontierRequest) -> Result<FrontierReport, BrokerError> {
        self.solve_slo_traced(request, &uptime_obs::TraceSpan::disabled())
    }

    /// [`Self::solve_slo`] under a request trace: hangs a
    /// `broker.frontier` span — with `optimizer.pareto.search` children
    /// carrying the tree-shape counters — below `parent`. Identical
    /// answer bytes.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve_slo`].
    pub fn solve_slo_traced(
        &self,
        request: &FrontierRequest,
        parent: &uptime_obs::TraceSpan,
    ) -> Result<FrontierReport, BrokerError> {
        let rec = &*self.recorder;
        let _span = uptime_obs::span!(rec, "broker.frontier");
        let trace_span = parent.child("broker.frontier");
        let spec = request.spec();
        let constraints = request.constraints();
        let epsilon = spec.epsilon();
        let catalog = self.catalog.read();
        let clouds = resolve_clouds(&catalog, request.base())?;
        let model = request.base().tco_model();

        let mut cloud_fronts = Vec::with_capacity(clouds.len());
        for cloud in clouds {
            let frontier = if let Some(topology) = request.base().topology() {
                let archetype: Archetype = topology.parse().map_err(
                    |err: uptime_optimizer::archetypes::UnknownArchetype| {
                        BrokerError::InvalidRequest {
                            reason: err.to_string(),
                        }
                    },
                )?;
                let space = archetype.space(&catalog, &cloud)?;
                let method_ids = leaf_method_ids(&catalog, &space);
                let outcome = match self.engine {
                    SearchEngine::Exhaustive => pareto_bnb::composition_sweep_recorded(
                        &space,
                        &model,
                        &constraints,
                        epsilon,
                        rec,
                        &trace_span,
                    ),
                    SearchEngine::BranchBound => {
                        pareto_bnb::composition_search_with_threads_recorded(
                            &space,
                            &model,
                            &constraints,
                            epsilon,
                            0,
                            rec,
                            &trace_span,
                        )
                    }
                };
                let points = frontier_points(&outcome, request, |assignment| {
                    assignment
                        .iter()
                        .zip(space.leaves())
                        .zip(&method_ids)
                        .map(|((&idx, leaf), ids)| {
                            (leaf.candidates()[idx].label().to_owned(), ids[idx].clone())
                        })
                        .collect()
                });
                CloudFrontier::new(cloud, points, *outcome.stats())
            } else {
                let space = SearchSpace::from_catalog(&catalog, &cloud, request.base().tiers())?;
                let method_ids: Vec<Vec<HaMethodId>> = request
                    .base()
                    .tiers()
                    .iter()
                    .map(|kind| {
                        catalog
                            .methods_for(*kind)
                            .iter()
                            .map(|m| m.id().clone())
                            .collect()
                    })
                    .collect();
                let outcome = match self.engine {
                    SearchEngine::Exhaustive => pareto_bnb::sweep_recorded(
                        &space,
                        &model,
                        &constraints,
                        epsilon,
                        rec,
                        &trace_span,
                    ),
                    SearchEngine::BranchBound => pareto_bnb::search_with_threads_recorded(
                        &space,
                        &model,
                        &constraints,
                        epsilon,
                        0,
                        rec,
                        &trace_span,
                    ),
                };
                let points = frontier_points(&outcome, request, |assignment| {
                    assignment
                        .iter()
                        .zip(space.components())
                        .zip(&method_ids)
                        .map(|((&idx, comp), ids)| {
                            (comp.candidates()[idx].label().to_owned(), ids[idx].clone())
                        })
                        .collect()
                });
                CloudFrontier::new(cloud, points, *outcome.stats())
            };
            cloud_fronts.push(frontier);
        }
        drop(catalog);

        rec.counter_add("broker.frontier.clouds", cloud_fronts.len() as u64);
        if cloud_fronts.iter().all(|c| c.points().is_empty()) {
            rec.counter_add("broker.frontier.infeasible", 1);
            return Err(BrokerError::SloInfeasible {
                reason: infeasibility_reason(&constraints),
            });
        }
        Ok(FrontierReport::new(
            &self.engine.to_string(),
            epsilon,
            spec.uptime_target_percent(),
            cloud_fronts,
        ))
    }

    /// Shared tail of every recommend path: emit metrics and annotate the
    /// answer when any involved provider is serving from a stale catalog.
    fn finish_recommendation(&self, cloud_recs: Vec<CloudRecommendation>) -> Recommendation {
        let rec = &*self.recorder;
        let answered: Vec<CloudId> = cloud_recs.iter().map(|c| c.cloud().clone()).collect();
        rec.counter_add("broker.recommend.clouds", answered.len() as u64);
        let mut recommendation = Recommendation::new(cloud_recs);
        if let Some(degraded) = self.degraded_mode(&answered) {
            recommendation = recommendation.with_degraded(degraded);
            rec.gauge_set("broker.degraded", 1.0);
            // Degraded-mode duration: how long each stale provider's
            // breaker has been non-closed, in admission-check ticks.
            let providers = self.providers.read();
            for (_, slot) in providers.iter() {
                if let Some(ticks) = slot.breaker.open_ticks() {
                    rec.observe("broker.breaker.open_ticks", ticks as f64);
                }
            }
        } else {
            rec.gauge_set("broker.degraded", 0.0);
        }
        recommendation
    }

    /// Turns a ranked option into a provisioning plan for its cloud.
    ///
    /// # Errors
    ///
    /// Returns catalog errors when a method id no longer resolves.
    pub fn plan(
        &self,
        cloud: &CloudId,
        tiers: &[ComponentKind],
        option: &RankedOption,
    ) -> Result<DeploymentPlan, BrokerError> {
        let catalog = self.catalog.read();
        let mut steps = Vec::with_capacity(option.method_ids().len());
        for (kind, method_id) in tiers.iter().zip(option.method_ids()) {
            let method = catalog.method(method_id.as_str()).ok_or_else(|| {
                BrokerError::Catalog(uptime_catalog::CatalogError::UnknownMethod {
                    id: method_id.clone(),
                })
            })?;
            steps.push(ProvisionStep::new(
                *kind,
                method_id.clone(),
                method.display_name(),
                method.shape().total_nodes,
            ));
        }
        Ok(DeploymentPlan::new(cloud.clone(), steps))
    }

    // ------------------------------------------------------------------
    // Durability: write-ahead journaling, snapshots, crash recovery.
    // Lock order everywhere: catalog → incidents → durability journal.
    // ------------------------------------------------------------------

    /// Attaches a state directory, first recovering whatever it holds:
    /// loads the snapshot (if valid), repairs the journal's tail, and
    /// replays post-snapshot records through the normal ingest pipeline.
    /// After this returns, every accepted batch is journaled before its
    /// absorb commits, and snapshots are taken per
    /// [`DurabilityConfig::snapshot_every`].
    ///
    /// Call this on a freshly seeded service, before registering
    /// providers or serving traffic.
    ///
    /// # Errors
    ///
    /// [`BrokerError::Durability`] when the state directory cannot be
    /// created, read, or repaired — never for mere corruption, which is
    /// recovered from and reported in the [`RecoveryReport`].
    pub fn with_durability(
        mut self,
        config: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), BrokerError> {
        if self.durability.is_some() {
            return Err(BrokerError::Durability {
                reason: "durability already attached".into(),
            });
        }
        let state_dir = StateDir::create(&config.state_dir).map_err(durability_err)?;
        let report = self.run_recovery(&state_dir, true)?;
        let journal =
            Journal::open(state_dir.journal_path(), config.fsync).map_err(durability_err)?;
        let store = SnapshotStore::new(state_dir).with_sync(config.fsync.guards_power_loss());
        self.durability = Some(DurabilityState {
            snapshot_every: config.snapshot_every,
            inner: Mutex::new(DurabilityInner {
                journal,
                store,
                absorbs_since_snapshot: 0,
            }),
        });
        Ok((self, report))
    }

    /// Dry-runs a recovery from `state_dir` against this (freshly
    /// seeded, durability-free) service without repairing the journal
    /// file: replays into memory and reports what a real recovery would
    /// do. This mutates the in-memory state — use a throwaway service.
    ///
    /// # Errors
    ///
    /// [`BrokerError::Durability`] on I/O failure, or when durability is
    /// already attached (a live journal must not be replayed onto).
    pub fn verify_recovery(&self, state_dir: &Path) -> Result<RecoveryReport, BrokerError> {
        if self.durability.is_some() {
            return Err(BrokerError::Durability {
                reason: "cannot verify-recover with durability attached".into(),
            });
        }
        let state_dir = StateDir::create(state_dir).map_err(durability_err)?;
        self.run_recovery(&state_dir, false)
    }

    /// The recovery core: snapshot restore + journal replay. `repair`
    /// physically truncates a torn journal tail (real recovery); without
    /// it the file is left untouched (`recover --verify`).
    fn run_recovery(
        &self,
        state_dir: &StateDir,
        repair: bool,
    ) -> Result<RecoveryReport, BrokerError> {
        let rec = &*self.recorder;
        let _span = uptime_obs::span!(rec, "broker.recover");

        // Phase 1: snapshot restore (replay accelerator, never required).
        let store = SnapshotStore::new(state_dir.clone());
        let mut snapshot_used = false;
        let mut snapshot_epoch = 0u64;
        let mut replay_from = 0u64;
        if let Some(loaded) = store.load().map_err(durability_err)? {
            match serde_json::from_slice::<PersistentState>(&loaded.payload) {
                Ok(state) if state.schema_version == SNAPSHOT_SCHEMA_VERSION => {
                    snapshot_used = true;
                    snapshot_epoch = state.epoch;
                    replay_from = loaded.manifest.journal_offset;
                    let capacity = self.incidents.read().capacity;
                    *self.catalog.write() = state.catalog;
                    *self.incidents.write() =
                        IncidentRing::restore(state.incidents, state.incident_next_seq, capacity);
                    self.raise_epoch_floor(state.epoch);
                    rec.counter_add("broker.recovery.snapshot_loaded", 1);
                }
                _ => {
                    // Checksums matched but the payload is from another
                    // era: fall back to a full journal replay.
                    rec.event(
                        "broker.recovery",
                        "snapshot payload unreadable; full journal replay",
                    );
                }
            }
        }

        // Phase 2: journal replay. Each distilled entry passes the same
        // plausibility gate the live batch did, then absorbs the exact
        // record the pre-crash broker committed (durability is not
        // attached yet, so nothing re-journals itself).
        let decoded = if repair {
            Journal::repair(state_dir.journal_path())
        } else {
            Journal::replay(state_dir.journal_path())
        }
        .map_err(durability_err)?;

        let mut offset = 0u64;
        let journal_records = decoded.payloads.len() as u64;
        let mut skipped_by_snapshot = 0u64;
        let mut replayed = 0u64;
        let mut quarantined = 0u64;
        let mut malformed = 0u64;
        let mut last_epoch_after = 0u64;
        for payload in &decoded.payloads {
            let start = offset;
            offset += (HEADER_LEN + payload.len()) as u64;
            if start < replay_from {
                skipped_by_snapshot += 1;
                continue;
            }
            let entry = match serde_json::from_slice::<JournalEntry>(payload) {
                Ok(entry) if entry.schema_version == JOURNAL_SCHEMA_VERSION => entry,
                _ => {
                    malformed += 1;
                    continue;
                }
            };
            last_epoch_after = last_epoch_after.max(entry.epoch_after);
            match self.apply_journal_entry(&entry) {
                Ok(()) => replayed += 1,
                Err(_) => quarantined += 1,
            }
        }
        // Epoch continuity: the restored epoch must be ≥ every epoch a
        // pre-crash client could have observed for the surviving records,
        // so serve-layer caches can never validate stale bodies.
        self.raise_epoch_floor(last_epoch_after);
        rec.counter_add("broker.recovery.replayed", replayed);
        rec.counter_add("broker.recovery.skipped", skipped_by_snapshot);
        rec.counter_add("broker.recovery.quarantined", quarantined);
        rec.counter_add("broker.recovery.malformed", malformed);

        let truncation = decoded.truncation.map(|t| ReportedTruncation {
            offset: t.offset,
            reason: t.reason.to_string(),
        });
        if let Some(trunc) = &truncation {
            rec.counter_add("broker.recovery.truncated", 1);
            self.log_incident(
                &CloudId::new("broker"),
                IncidentCategory::JournalTruncated,
                format!(
                    "journal replay stopped at byte {}: {}; tail discarded",
                    trunc.offset, trunc.reason
                ),
                None,
            );
        }

        Ok(RecoveryReport {
            state_dir: state_dir.root().display().to_string(),
            snapshot_used,
            snapshot_epoch,
            journal_bytes: decoded.valid_len,
            journal_records,
            skipped_by_snapshot,
            replayed,
            quarantined,
            malformed,
            truncation,
            repaired: repair,
            epoch: self.telemetry_epoch(),
            incident_count: self.incidents.read().total(),
        })
    }

    /// Applies one replayed journal entry: structural sanity on the raw
    /// `f64` evidence fields (the unit newtypes already validated their
    /// ranges during deserialization), the same plausibility gate the
    /// live batch passed, then the exact absorbed record. Rejections
    /// quarantine with an incident, exactly like a live rejection.
    fn apply_journal_entry(&self, entry: &JournalEntry) -> Result<(), BrokerError> {
        let node_years = entry.estimate.node_years();
        let evidence = entry.record.node_years_observed();
        if !node_years.is_finite() || node_years < 0.0 || !evidence.is_finite() || evidence < 0.0 {
            let reason = format!(
                "journal entry evidence insane: node_years = {node_years}, observed = {evidence}"
            );
            self.note_quarantine(&entry.cloud, IncidentCategory::TelemetryRejected, &reason);
            return Err(BrokerError::TelemetryRejected { reason });
        }

        let mut catalog = self.catalog.write();
        let profile = catalog
            .cloud_mut(&entry.cloud)
            .ok_or_else(|| BrokerError::UnknownCloud {
                id: entry.cloud.clone(),
            })?;
        if let Some(existing) = profile.reliability(entry.kind) {
            if let Err(reason) = self.quarantine.plausible(existing, &entry.estimate) {
                drop(catalog);
                self.note_quarantine(&entry.cloud, IncidentCategory::ImplausibleEstimate, &reason);
                return Err(BrokerError::TelemetryRejected { reason });
            }
        }
        profile.absorb_reliability(entry.kind, entry.record);
        self.epoch.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
        drop(catalog);
        self.recorder.counter_add("broker.quarantine.accepted", 1);
        Ok(())
    }

    /// Appends one entry to the write-ahead journal. Called with the
    /// catalog write lock held (catalog → journal lock order).
    fn append_journal(
        &self,
        durability: &DurabilityState,
        entry: &JournalEntry,
    ) -> Result<(), String> {
        let payload = entry.to_json();
        let mut inner = durability.inner.lock();
        inner
            .journal
            .append(payload.as_bytes())
            .map_err(|e| format!("append: {e}"))?;
        inner.absorbs_since_snapshot += 1;
        let stats = inner.journal.stats();
        drop(inner);
        self.recorder.counter_add("broker.journal.appends", 1);
        self.recorder
            .observe("broker.journal.bytes", stats.bytes as f64);
        self.recorder
            .observe("broker.journal.fsyncs", stats.fsyncs as f64);
        Ok(())
    }

    /// Takes an automatic snapshot when the cadence says one is due.
    /// Snapshot failures are reported but never fail the absorb that
    /// triggered them — the journal already holds the batch.
    fn maybe_snapshot(&self) {
        let Some(durability) = &self.durability else {
            return;
        };
        if durability.snapshot_every == 0
            || durability.inner.lock().absorbs_since_snapshot < durability.snapshot_every
        {
            return;
        }
        if let Err(err) = self.snapshot_now() {
            self.recorder
                .event("broker.snapshot.failed", &err.to_string());
        }
    }

    /// Writes a snapshot of the current state now, regardless of cadence.
    ///
    /// # Errors
    ///
    /// [`BrokerError::Durability`] when no state dir is attached or the
    /// write fails.
    pub fn snapshot_now(&self) -> Result<(), BrokerError> {
        self.persist_snapshot(false)
    }

    /// Takes a snapshot and then physically truncates the journal —
    /// explicit admin compaction (`brokerctl recover --compact`). The
    /// snapshot is durable (written and fsynced) before any journal
    /// bytes are discarded, and the manifest is re-pointed at offset 0
    /// afterwards so post-compaction appends replay from the start.
    ///
    /// # Errors
    ///
    /// [`BrokerError::Durability`] when no state dir is attached or a
    /// write fails; a failure between steps never loses state (the
    /// journal is only reset after the covering snapshot is durable).
    pub fn compact_state(&self) -> Result<(), BrokerError> {
        self.persist_snapshot(true)
    }

    fn persist_snapshot(&self, compact: bool) -> Result<(), BrokerError> {
        let durability = self
            .durability
            .as_ref()
            .ok_or_else(|| BrokerError::Durability {
                reason: "no state directory attached".into(),
            })?;
        // Hold the catalog read lock across the whole operation: absorbs
        // (which hold the write lock) cannot interleave, so the captured
        // state and the journal offset refer to the same instant.
        let catalog = self.catalog.read();
        let incidents = self.incidents.read();
        let epoch = self.telemetry_epoch();
        let state = PersistentState {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            epoch,
            incident_next_seq: incidents.total(),
            incidents: incidents.to_vec(),
            catalog: catalog.clone(),
        };
        drop(incidents);
        let payload = serde_json::to_string(&state)
            .map_err(|e| BrokerError::Durability {
                reason: format!("snapshot encode: {e}"),
            })?
            .into_bytes();
        let mut inner = durability.inner.lock();
        let offset = inner.journal.len();
        inner
            .store
            .write(&payload, epoch, offset)
            .map_err(durability_err)?;
        if compact {
            // Crash-ordering: snapshot(offset) is durable ⇒ resetting is
            // safe; if we die before re-pointing the manifest, replay
            // skips everything below `offset` against an empty journal —
            // still exactly the snapshot state.
            inner.journal.reset().map_err(durability_err)?;
            inner
                .store
                .write(&payload, epoch, 0)
                .map_err(durability_err)?;
        }
        inner.absorbs_since_snapshot = 0;
        drop(inner);
        drop(catalog);
        self.recorder.counter_add("broker.journal.snapshots", 1);
        Ok(())
    }

    fn raise_epoch_floor(&self, floor: u64) {
        self.epoch
            .fetch_max(floor, std::sync::atomic::Ordering::AcqRel);
    }
}

fn durability_err(e: std::io::Error) -> BrokerError {
    BrokerError::Durability {
        reason: e.to_string(),
    }
}

/// Mixed-radix value of an assignment (last component least significant),
/// reproducing the paper's option numbering within a cardinality level.
fn assignment_value(space: &SearchSpace, assignment: &[usize]) -> u128 {
    let mut value: u128 = 0;
    for (idx, comp) in assignment.iter().zip(space.components()) {
        value = value * comp.len() as u128 + *idx as u128;
    }
    value
}

/// Largest archetype space the exhaustive engine still ranks in full;
/// beyond it, the option table is trimmed to the streamed winner. The six
/// survey shapes top out at 512 assignments, well under this.
const ARCHETYPE_TABLE_CAP: u128 = 4096;

/// Paper-style tie order for composition assignments: the mixed-radix
/// value over the space's leaves, mirroring [`assignment_value`].
fn composition_assignment_value(space: &CompositionSpace, assignment: &[usize]) -> u128 {
    let mut value: u128 = 0;
    for (idx, leaf) in assignment.iter().zip(space.leaves()) {
        value = value * leaf.len() as u128 + *idx as u128;
    }
    value
}

/// Per-leaf catalog method ids for an archetype space. Tier leaves follow
/// [`Archetype::space`]'s `{prefix}-{tier-label}` naming and preserve
/// `methods_for` order, so candidate `i` is that tier's `i`-th method.
/// Shared-domain pseudo-leaves exist only in the composition model, not
/// the catalog; their single candidate gets a synthetic id from its label.
fn leaf_method_ids(catalog: &CatalogStore, space: &CompositionSpace) -> Vec<Vec<HaMethodId>> {
    space
        .leaves()
        .iter()
        .map(|leaf| {
            let tier = ComponentKind::paper_tiers().into_iter().find(|kind| {
                leaf.name() == kind.label() || leaf.name().ends_with(&format!("-{}", kind.label()))
            });
            match tier {
                Some(kind) if catalog.methods_for(kind).len() == leaf.len() => catalog
                    .methods_for(kind)
                    .iter()
                    .map(|m| m.id().clone())
                    .collect(),
                _ => leaf
                    .candidates()
                    .iter()
                    .map(|c| HaMethodId::new(c.label()))
                    .collect(),
            }
        })
        .collect()
}

/// Resolves the clouds a request names (empty = every cloud the broker
/// fronts), rejecting unknown ids.
fn resolve_clouds(
    catalog: &CatalogStore,
    request: &SolutionRequest,
) -> Result<Vec<CloudId>, BrokerError> {
    let clouds: Vec<CloudId> = if request.clouds().is_empty() {
        catalog.cloud_ids().cloned().collect()
    } else {
        for id in request.clouds() {
            if catalog.cloud(id).is_none() {
                return Err(BrokerError::UnknownCloud { id: id.clone() });
            }
        }
        request.clouds().to_vec()
    };
    if clouds.is_empty() {
        return Err(BrokerError::NoCandidates);
    }
    Ok(clouds)
}

fn resolve_as_is(
    method_ids: &[Vec<HaMethodId>],
    declared: &[HaMethodId],
) -> Result<Vec<usize>, BrokerError> {
    declared
        .iter()
        .zip(method_ids)
        .map(|(want, tier)| {
            tier.iter()
                .position(|id| id == want)
                .ok_or_else(|| BrokerError::InvalidRequest {
                    reason: format!("as-is method `{want}` is not available for its tier"),
                })
        })
        .collect()
}

/// Materializes one cloud's frontier outcome into wire points:
/// `describe` maps an assignment to its `(label, method id)` per tier or
/// leaf, and every point is scored against the spec's soft objectives.
fn frontier_points(
    outcome: &FrontierOutcome,
    request: &FrontierRequest,
    describe: impl Fn(&[usize]) -> Vec<(String, HaMethodId)>,
) -> Vec<FrontierPoint> {
    outcome
        .points()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let cost = p.ha_cost().value();
            let uptime = p.uptime();
            let failover = p.failover_minutes_per_month();
            let soft_score =
                request
                    .spec()
                    .soft_score(&PointMetrics::new(cost, uptime.value(), failover));
            let (labels, method_ids): (Vec<String>, Vec<HaMethodId>) =
                describe(p.evaluation().assignment()).into_iter().unzip();
            FrontierPoint::new(
                i + 1,
                labels,
                method_ids,
                cost,
                uptime.as_percent(),
                failover,
                p.evaluation().tco().total().value(),
                p.evaluation().tco().expects_penalty(),
                soft_score,
            )
        })
        .collect()
}

/// Renders which hard-constraint combination admitted nothing, for the
/// [`BrokerError::SloInfeasible`] message.
fn infeasibility_reason(constraints: &uptime_optimizer::FrontierConstraints) -> String {
    let mut parts = Vec::new();
    if let Some(floor) = constraints.min_uptime {
        parts.push(format!("uptime >= {}%", floor * 100.0));
    }
    if let Some(cap) = constraints.max_cost {
        parts.push(format!("cost <= ${cap}/month"));
    }
    if let Some(budget) = constraints.max_failover_minutes {
        parts.push(format!("failover <= {budget} min/month"));
    }
    if parts.is_empty() {
        // Unconstrained infeasibility means the space itself was empty.
        "no candidate deployments exist".to_owned()
    } else {
        format!(
            "no deployment satisfies {} on any requested cloud",
            parts.join(" and ")
        )
    }
}

fn merge_estimates(a: &EstimatedParameters, b: &EstimatedParameters) -> EstimatedParameters {
    // Delegates the numeric merge to ReliabilityRecord, then rebuilds; the
    // failover estimate keeps whichever side observed one (preferring a).
    let merged = a.to_reliability_record().merge(&b.to_reliability_record());
    EstimatedParameters::from_parts(
        merged.down_probability(),
        merged.failures_per_year(),
        a.failover_time().or(b.failover_time()),
        merged.node_years_observed(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{CloudProvider, GroundTruth, SimulatedProvider};
    use crate::request::SolutionRequest;
    use uptime_catalog::case_study;
    use uptime_core::{FailuresPerYear, Probability};

    fn paper_request() -> SolutionRequest {
        SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .cloud(case_study::cloud_id())
            .as_is(vec![
                HaMethodId::new("vmware-ha-3p1"),
                HaMethodId::new("raid1"),
                HaMethodId::new("dual-gw"),
            ])
            .build()
            .unwrap()
    }

    fn service() -> BrokerService {
        BrokerService::new(case_study::catalog())
    }

    #[test]
    fn reproduces_paper_fig10() {
        let rec = service().recommend(&paper_request()).unwrap();
        let cloud = &rec.clouds()[0];
        assert_eq!(cloud.options().len(), 8);

        // Paper numbering and TCOs.
        let expected = [
            (1, 4300.0),
            (2, 4000.0),
            (3, 1250.0),
            (4, 5900.0),
            (5, 1350.0),
            (6, 5500.0),
            (7, 2850.0),
            (8, 3550.0),
        ];
        for (opt, (number, tco)) in cloud.options().iter().zip(expected) {
            assert_eq!(opt.option_number(), number);
            assert!(
                (opt.evaluation().tco().total().value() - tco).abs() < 0.5,
                "#{number}: got {} want {tco}",
                opt.evaluation().tco().total()
            );
        }

        assert_eq!(cloud.best().option_number(), 3);
        assert_eq!(cloud.min_risk().unwrap().option_number(), 5);
        assert_eq!(cloud.as_is().unwrap().option_number(), 8);
        let savings = cloud.savings_vs_as_is().unwrap();
        assert!((savings - 0.62).abs() < 0.005, "got {savings}");
    }

    fn archetype_request(name: &str) -> SolutionRequest {
        SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .cloud(case_study::cloud_id())
            .topology(name)
            .build()
            .unwrap()
    }

    #[test]
    fn zonal_archetype_reproduces_the_serial_table() {
        let rec = service().recommend(&archetype_request("zonal")).unwrap();
        let cloud = &rec.clouds()[0];
        // The zonal archetype *is* the paper's serial chain: same eight
        // options, same numbering, same winner.
        assert_eq!(cloud.options().len(), 8);
        assert_eq!(cloud.best().option_number(), 3);
        assert_eq!(cloud.best().evaluation().tco().total().value(), 1250.0);
        assert_eq!(cloud.min_risk().unwrap().option_number(), 5);
        // Zonal leaf names are the plain tier labels, so method ids come
        // straight from the catalog and the winner is provisionable.
        let plan = service()
            .plan(
                &case_study::cloud_id(),
                &ComponentKind::paper_tiers(),
                cloud.best(),
            )
            .unwrap();
        assert_eq!(plan.steps().len(), 3);
    }

    #[test]
    fn regional_archetype_searches_the_composition_space() {
        let rec = service().recommend(&archetype_request("regional")).unwrap();
        let cloud = &rec.clouds()[0];
        assert_eq!(cloud.stats().evaluated, 128);
        assert_eq!(cloud.options().len(), 128);
        // Every option carries one label/id/cost per composition leaf.
        assert_eq!(cloud.best().labels().len(), 10);
        assert_eq!(cloud.best().method_ids().len(), 10);
        assert_eq!(cloud.best().tier_costs().len(), 10);
        // The winner must agree with the optimizer's own search.
        let space = Archetype::Regional
            .space(&case_study::catalog(), &case_study::cloud_id())
            .unwrap();
        let model = archetype_request("regional").tco_model();
        let outcome = composition::search(&space, &model, Objective::MinTco);
        let best = outcome.best().unwrap();
        assert_eq!(cloud.best().evaluation().assignment(), best.assignment());
        assert_eq!(cloud.best().evaluation().tco().total(), best.tco().total());
    }

    #[test]
    fn bnb_engine_matches_exhaustive_archetype_winner() {
        for name in ["multi-zonal", "multi-region-active-active", "global"] {
            let ex = service().recommend(&archetype_request(name)).unwrap();
            let bnb = service()
                .with_engine(SearchEngine::BranchBound)
                .recommend(&archetype_request(name))
                .unwrap();
            let e = ex.clouds()[0].best();
            let b = bnb.clouds()[0].best();
            assert_eq!(
                b.evaluation().assignment(),
                e.evaluation().assignment(),
                "{name}"
            );
            assert_eq!(
                bnb.clouds()[0].options().len(),
                1,
                "{name}: BnB table is trimmed to the proven winner"
            );
        }
    }

    #[test]
    fn unknown_topology_rejected() {
        let err = service()
            .recommend(&archetype_request("orbital"))
            .unwrap_err();
        match err {
            BrokerError::InvalidRequest { reason } => {
                assert!(reason.contains("orbital"), "{reason}");
                assert!(reason.contains("zonal"), "lists the valid names: {reason}");
            }
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
    }

    #[test]
    fn archetype_with_as_is_rejected_at_recommend_time() {
        // Wire requests bypass the builder's validation, so recommend
        // itself must reject the combination.
        let serde::Value::Object(mut map) = serde_json::to_value(&paper_request()) else {
            panic!("requests serialize as objects");
        };
        map.insert(
            "topology".to_owned(),
            serde_json::to_value(&"regional".to_owned()),
        );
        let request = SolutionRequest::from_value(&serde::Value::Object(map)).unwrap();
        assert!(matches!(
            service().recommend(&request),
            Err(BrokerError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn metacloud_rejects_topology() {
        let err = service()
            .recommend_metacloud(&archetype_request("regional"))
            .unwrap_err();
        assert!(matches!(err, BrokerError::InvalidRequest { .. }));
    }

    #[test]
    fn branch_bound_engine_matches_exhaustive_winner() {
        let request = paper_request();
        let full = service().recommend(&request).unwrap();
        let bnb = service()
            .with_engine(SearchEngine::BranchBound)
            .recommend(&request)
            .unwrap();
        let full_cloud = &full.clouds()[0];
        let bnb_cloud = &bnb.clouds()[0];
        assert_eq!(
            full_cloud.best().evaluation(),
            bnb_cloud.best().evaluation(),
            "engines must agree on the winner bit-for-bit"
        );
        // Trimmed table: winner plus the declared as-is option.
        assert_eq!(bnb_cloud.options().len(), 2);
        assert!(bnb_cloud.as_is().is_some());
        assert_eq!(
            u128::from(bnb_cloud.stats().considered()),
            8,
            "streaming engine still accounts for the full space"
        );
    }

    #[test]
    fn branch_bound_engine_matches_metacloud_placement() {
        let catalog = uptime_catalog::extended::hybrid_catalog();
        let request = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .build()
            .unwrap();
        let full = BrokerService::new(catalog.clone())
            .recommend_metacloud(&request)
            .unwrap();
        let bnb = BrokerService::new(catalog)
            .with_engine(SearchEngine::BranchBound)
            .recommend_metacloud(&request)
            .unwrap();
        assert_eq!(full.evaluation(), bnb.evaluation());
        assert_eq!(full.placements(), bnb.placements());
    }

    #[test]
    fn engine_parses_and_displays() {
        assert_eq!("bnb".parse(), Ok(SearchEngine::BranchBound));
        assert_eq!("branch-bound".parse(), Ok(SearchEngine::BranchBound));
        assert_eq!("exhaustive".parse(), Ok(SearchEngine::Exhaustive));
        assert_eq!("full".parse(), Ok(SearchEngine::Exhaustive));
        assert!("quantum".parse::<SearchEngine>().is_err());
        assert_eq!(SearchEngine::BranchBound.to_string(), "bnb");
        assert_eq!(SearchEngine::default(), SearchEngine::Exhaustive);
    }

    #[test]
    fn option_numbering_matches_paper_descriptions() {
        let rec = service().recommend(&paper_request()).unwrap();
        let cloud = &rec.clouds()[0];
        let labels: Vec<Vec<&str>> = cloud
            .options()
            .iter()
            .map(|o| o.labels().iter().map(String::as_str).collect())
            .collect();
        assert_eq!(labels[0], ["None", "None", "None"]); // #1
        assert_eq!(labels[1], ["None", "None", "Dual Node GW Cluster"]); // #2
        assert_eq!(labels[2], ["None", "RAID 1", "None"]); // #3
        assert_eq!(labels[3], ["VMware HA (3+1)", "None", "None"]); // #4
        assert_eq!(labels[4], ["None", "RAID 1", "Dual Node GW Cluster"]); // #5
        assert_eq!(
            labels[5],
            ["VMware HA (3+1)", "None", "Dual Node GW Cluster"]
        ); // #6
        assert_eq!(labels[6], ["VMware HA (3+1)", "RAID 1", "None"]); // #7
        assert_eq!(
            labels[7],
            ["VMware HA (3+1)", "RAID 1", "Dual Node GW Cluster"]
        );
        // #8
    }

    #[test]
    fn unknown_cloud_rejected() {
        let request = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .cloud(CloudId::new("ghost"))
            .build()
            .unwrap();
        assert!(matches!(
            service().recommend(&request),
            Err(BrokerError::UnknownCloud { .. })
        ));
    }

    #[test]
    fn empty_clouds_means_all() {
        let request = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .build()
            .unwrap();
        let rec = service().recommend(&request).unwrap();
        assert_eq!(rec.clouds().len(), 1, "case-study catalog has one cloud");
    }

    #[test]
    fn bad_as_is_method_rejected() {
        let request = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .as_is(vec![
                HaMethodId::new("raid1"), // wrong tier: raid1 is storage
                HaMethodId::new("raid1"),
                HaMethodId::new("dual-gw"),
            ])
            .build()
            .unwrap();
        assert!(matches!(
            service().recommend(&request),
            Err(BrokerError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn plan_for_best_option() {
        let svc = service();
        let rec = svc.recommend(&paper_request()).unwrap();
        let cloud = &rec.clouds()[0];
        let plan = svc
            .plan(cloud.cloud(), &ComponentKind::paper_tiers(), cloud.best())
            .unwrap();
        assert_eq!(plan.steps().len(), 3);
        // Option #3: singleton compute, RAID-1 pair, singleton gateway.
        assert_eq!(plan.steps()[0].nodes(), 1);
        assert_eq!(plan.steps()[1].nodes(), 2);
        assert_eq!(plan.steps()[2].nodes(), 1);
        assert_eq!(plan.total_nodes(), 4);
    }

    #[test]
    fn telemetry_ingestion_updates_catalog() {
        let svc = service();
        let provider = SimulatedProvider::new(case_study::cloud_id(), "sim").with_ground_truth(
            ComponentKind::Storage,
            GroundTruth {
                // Ground truth differs from the catalog's 5 %: the broker
                // should move toward it as evidence accumulates.
                down_probability: Probability::new(0.10).unwrap(),
                failures_per_year: FailuresPerYear::new(4.0).unwrap(),
            },
        );
        let before = svc
            .catalog_snapshot()
            .cloud(&case_study::cloud_id())
            .unwrap()
            .reliability(ComponentKind::Storage)
            .unwrap()
            .down_probability()
            .value();

        let telemetry = provider
            .harvest_component_telemetry(ComponentKind::Storage, 50, 100.0, 5)
            .unwrap();
        let estimate = svc
            .ingest_component_telemetry(&case_study::cloud_id(), ComponentKind::Storage, &telemetry)
            .unwrap();
        assert!((estimate.down_probability().value() - 0.10).abs() < 0.02);

        let after = svc
            .catalog_snapshot()
            .cloud(&case_study::cloud_id())
            .unwrap()
            .reliability(ComponentKind::Storage)
            .unwrap()
            .down_probability()
            .value();
        assert!(after > before, "catalog belief moved toward ground truth");
    }

    fn storage_provider(p: f64, f: f64) -> SimulatedProvider {
        SimulatedProvider::new(case_study::cloud_id(), "sim").with_ground_truth(
            ComponentKind::Storage,
            GroundTruth {
                down_probability: Probability::new(p).unwrap(),
                failures_per_year: FailuresPerYear::new(f).unwrap(),
            },
        )
    }

    fn catalog_storage_p(svc: &BrokerService) -> f64 {
        svc.catalog_snapshot()
            .cloud(&case_study::cloud_id())
            .unwrap()
            .reliability(ComponentKind::Storage)
            .unwrap()
            .down_probability()
            .value()
    }

    #[test]
    fn sync_telemetry_happy_path() {
        let svc = service();
        svc.register_provider(Box::new(storage_provider(0.10, 4.0)));
        let estimate = svc
            .sync_telemetry(
                &case_study::cloud_id(),
                ComponentKind::Storage,
                50,
                100.0,
                5,
            )
            .unwrap();
        assert!((estimate.down_probability().value() - 0.10).abs() < 0.02);
        let health = svc.health();
        assert!(!health.degraded);
        assert_eq!(health.providers.len(), 1);
        assert_eq!(health.providers[0].batches_absorbed, 1);
        assert_eq!(health.providers[0].state, BreakerState::Closed);
        assert!(svc.incidents().is_empty());
    }

    #[test]
    fn sync_without_registered_provider_is_provider_unavailable() {
        let svc = service();
        assert!(matches!(
            svc.sync_telemetry(&case_study::cloud_id(), ComponentKind::Storage, 10, 1.0, 1),
            Err(BrokerError::ProviderUnavailable { .. })
        ));
    }

    #[test]
    fn repeated_faults_trip_breaker_and_degrade_recommendations() {
        use crate::chaos::{ChaosConfig, ChaosProvider};
        let svc = service();
        let config = ChaosConfig::quiet(7).with_harvest_timeout_rate(1.0);
        svc.register_provider(Box::new(ChaosProvider::new(
            storage_provider(0.10, 4.0),
            config,
        )));

        // Default breaker trips after 3 consecutive failed syncs.
        for round in 0..3 {
            let err = svc
                .sync_telemetry(
                    &case_study::cloud_id(),
                    ComponentKind::Storage,
                    10,
                    1.0,
                    round,
                )
                .unwrap_err();
            assert!(matches!(err, BrokerError::Timeout { .. }), "{err}");
        }
        let health = svc.health();
        assert_eq!(health.providers[0].state, BreakerState::Open);
        assert!(health.degraded);
        assert!(svc
            .incidents()
            .iter()
            .any(|i| i.category == IncidentCategory::BreakerOpened));

        // While open, calls are rejected without reaching the provider.
        assert!(matches!(
            svc.sync_telemetry(&case_study::cloud_id(), ComponentKind::Storage, 10, 1.0, 9),
            Err(BrokerError::CircuitOpen { .. })
        ));

        // Recommendations still flow, annotated as degraded.
        let rec = svc.recommend(&paper_request()).unwrap();
        assert!(rec.is_degraded());
        let meta = rec.degraded().unwrap();
        assert_eq!(meta.stale_clouds, vec![case_study::cloud_id()]);
        assert!(meta.note.contains("last known-good catalog"));
        // The degraded answer itself is the unchanged Fig. 10 answer.
        assert_eq!(rec.clouds()[0].best().option_number(), 3);
    }

    #[test]
    fn corrupted_batches_are_quarantined_not_absorbed() {
        use crate::chaos::{ChaosConfig, ChaosProvider};
        let svc = service();
        let config = ChaosConfig::quiet(11).with_corrupt_rate(1.0);
        svc.register_provider(Box::new(ChaosProvider::new(
            storage_provider(0.10, 4.0),
            config,
        )));
        let before = catalog_storage_p(&svc);

        for round in 0..4 {
            let err = svc
                .sync_telemetry(
                    &case_study::cloud_id(),
                    ComponentKind::Storage,
                    10,
                    5.0,
                    round,
                )
                .unwrap_err();
            assert!(
                matches!(err, BrokerError::TelemetryRejected { .. }),
                "{err}"
            );
        }
        assert_eq!(catalog_storage_p(&svc), before, "catalog untouched");
        let health = svc.health();
        assert_eq!(health.providers[0].batches_quarantined, 4);
        assert_eq!(health.providers[0].quarantined_streak, 4);
        assert!(health.degraded, "sustained quarantine degrades the broker");
        assert!(svc
            .incidents()
            .iter()
            .all(|i| i.category == IncidentCategory::TelemetryRejected));
        let rec = svc.recommend(&paper_request()).unwrap();
        assert_eq!(rec.degraded().unwrap().quarantined_batches, 4);
    }

    #[test]
    fn implausible_estimates_are_gated() {
        let svc = service();
        // Ground truth wildly off the catalog's 5 % belief (0.9 is far
        // outside both the P99 band and the 0.15 drift slack).
        svc.register_provider(Box::new(storage_provider(0.9, 4.0)));
        let before = catalog_storage_p(&svc);
        let err = svc
            .sync_telemetry(&case_study::cloud_id(), ComponentKind::Storage, 50, 20.0, 3)
            .unwrap_err();
        assert!(
            matches!(err, BrokerError::TelemetryRejected { .. }),
            "{err}"
        );
        assert_eq!(catalog_storage_p(&svc), before);
        assert!(svc
            .incidents()
            .iter()
            .any(|i| i.category == IncidentCategory::ImplausibleEstimate));
    }

    #[test]
    fn breaker_recovers_after_faults_stop() {
        use crate::chaos::{ChaosConfig, ChaosProvider};
        let svc = service().with_circuit_breaker(crate::resilience::CircuitBreaker::new(2, 1));
        let config = ChaosConfig::quiet(13).with_harvest_timeout_rate(1.0);
        let chaotic = ChaosProvider::new(storage_provider(0.10, 4.0), config);
        svc.register_provider(Box::new(chaotic));
        for round in 0..2 {
            let _ = svc.sync_telemetry(
                &case_study::cloud_id(),
                ComponentKind::Storage,
                10,
                1.0,
                round,
            );
        }
        assert_eq!(svc.health().providers[0].state, BreakerState::Open);

        // Replace with a healthy provider but keep driving the same slot:
        // instead, register a fresh healthy provider — breaker resets.
        svc.register_provider(Box::new(storage_provider(0.10, 4.0)));
        let estimate = svc
            .sync_telemetry(
                &case_study::cloud_id(),
                ComponentKind::Storage,
                50,
                100.0,
                5,
            )
            .unwrap();
        assert!((estimate.down_probability().value() - 0.10).abs() < 0.02);
        assert_eq!(svc.health().providers[0].state, BreakerState::Closed);
    }

    #[test]
    fn incident_ring_evicts_but_seqs_and_total_stay_monotonic() {
        use crate::chaos::{ChaosConfig, ChaosProvider};
        let svc = service().with_incident_capacity(2);
        let config = ChaosConfig::quiet(11).with_corrupt_rate(1.0);
        svc.register_provider(Box::new(ChaosProvider::new(
            storage_provider(0.10, 4.0),
            config,
        )));
        for round in 0..5 {
            let _ = svc.sync_telemetry(
                &case_study::cloud_id(),
                ComponentKind::Storage,
                10,
                5.0,
                round,
            );
        }
        let incidents = svc.incidents();
        assert_eq!(incidents.len(), 2, "ring capped at 2");
        assert_eq!(
            incidents.iter().map(|i| i.seq).collect::<Vec<_>>(),
            vec![3, 4],
            "retained entries keep their original seqs"
        );
        assert_eq!(
            svc.health().incident_count,
            5,
            "lifetime count unaffected by eviction"
        );
    }

    fn scratch_state_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "uptime-svc-durability-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn drive_absorbs(svc: &BrokerService, rounds: u64) {
        svc.register_provider(Box::new(storage_provider(0.10, 4.0)));
        for round in 0..rounds {
            svc.sync_telemetry(
                &case_study::cloud_id(),
                ComponentKind::Storage,
                20,
                5.0,
                round * 31,
            )
            .unwrap();
        }
    }

    #[test]
    fn durable_service_recovers_state_bit_identically() {
        let dir = scratch_state_dir("roundtrip");
        let reference = service();
        drive_absorbs(&reference, 4);

        let (svc, report) = service()
            .with_durability(crate::durability::DurabilityConfig::new(&dir))
            .unwrap();
        assert_eq!(report.replayed, 0, "fresh state dir");
        drive_absorbs(&svc, 4);
        assert_eq!(svc.telemetry_epoch(), 4);
        drop(svc); // crash-only: no graceful shutdown path exists

        let (recovered, report) = service()
            .with_durability(crate::durability::DurabilityConfig::new(&dir))
            .unwrap();
        assert_eq!(report.replayed, 4);
        assert!(report.truncation.is_none());
        assert_eq!(recovered.telemetry_epoch(), 4, "epoch continuity");
        assert_eq!(
            recovered.catalog_snapshot(),
            reference.catalog_snapshot(),
            "recovered knowledge base matches an uninterrupted run"
        );
        let want = reference.recommend(&paper_request()).unwrap();
        let got = recovered.recommend(&paper_request()).unwrap();
        assert_eq!(
            want.clouds()[0].best().evaluation(),
            got.clouds()[0].best().evaluation()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_journal_tail_truncates_and_logs_incident() {
        use std::io::Write;
        let dir = scratch_state_dir("torn");
        let (svc, _) = service()
            .with_durability(crate::durability::DurabilityConfig::new(&dir))
            .unwrap();
        drive_absorbs(&svc, 3);
        drop(svc);
        // Tear the tail: append garbage that is not a valid record.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join("journal.log"))
                .unwrap();
            f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        }
        let (recovered, report) = service()
            .with_durability(crate::durability::DurabilityConfig::new(&dir))
            .unwrap();
        assert_eq!(report.replayed, 3, "valid prefix fully replayed");
        assert!(report.truncation.is_some());
        assert!(report.repaired);
        assert_eq!(recovered.telemetry_epoch(), 3);
        let incidents = recovered.incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].category, IncidentCategory::JournalTruncated);
        // The repair restored the invariant: a third restart is clean.
        drop(recovered);
        let (_, report) = service()
            .with_durability(crate::durability::DurabilityConfig::new(&dir))
            .unwrap();
        assert!(report.truncation.is_none(), "repaired file replays clean");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_accelerates_and_compaction_preserves_state() {
        let dir = scratch_state_dir("compact");
        let (svc, _) = service()
            .with_durability(crate::durability::DurabilityConfig::new(&dir).with_snapshot_every(2))
            .unwrap();
        drive_absorbs(&svc, 5);
        drop(svc);

        let (svc, report) = service()
            .with_durability(crate::durability::DurabilityConfig::new(&dir))
            .unwrap();
        assert!(report.snapshot_used);
        assert!(
            report.skipped_by_snapshot >= 2,
            "snapshot skipped replay work"
        );
        assert_eq!(
            report.skipped_by_snapshot + report.replayed,
            5,
            "snapshot + suffix covers every record"
        );
        assert_eq!(svc.telemetry_epoch(), 5);

        // Explicit compaction: journal shrinks to zero, state survives.
        svc.compact_state().unwrap();
        let catalog_before = svc.catalog_snapshot();
        drop(svc);
        assert_eq!(
            std::fs::metadata(dir.join("journal.log")).unwrap().len(),
            0,
            "compaction physically truncated the journal"
        );
        let (svc, report) = service()
            .with_durability(crate::durability::DurabilityConfig::new(&dir))
            .unwrap();
        assert!(report.snapshot_used);
        assert_eq!(report.journal_records, 0);
        assert_eq!(svc.telemetry_epoch(), 5);
        assert_eq!(svc.catalog_snapshot(), catalog_before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_recovery_is_a_dry_run() {
        let dir = scratch_state_dir("verify");
        let (svc, _) = service()
            .with_durability(crate::durability::DurabilityConfig::new(&dir))
            .unwrap();
        drive_absorbs(&svc, 2);
        drop(svc);
        let before = std::fs::read(dir.join("journal.log")).unwrap();

        let probe = service();
        let report = probe.verify_recovery(&dir).unwrap();
        assert_eq!(report.replayed, 2);
        assert!(!report.repaired);
        assert_eq!(report.epoch, 2);
        assert_eq!(
            std::fs::read(dir.join("journal.log")).unwrap(),
            before,
            "dry run never modifies the journal"
        );

        // A durability-attached service refuses to verify onto itself.
        let (attached, _) = service()
            .with_durability(crate::durability::DurabilityConfig::new(&dir))
            .unwrap();
        assert!(matches!(
            attached.verify_recovery(&dir),
            Err(BrokerError::Durability { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_falls_back_to_full_replay() {
        let dir = scratch_state_dir("nosnap");
        let (svc, _) = service()
            .with_durability(crate::durability::DurabilityConfig::new(&dir).with_snapshot_every(2))
            .unwrap();
        drive_absorbs(&svc, 4);
        let reference_catalog = svc.catalog_snapshot();
        drop(svc);
        std::fs::remove_file(dir.join("snapshot.json")).unwrap();
        std::fs::remove_file(dir.join("snapshot.manifest")).unwrap();

        let (recovered, report) = service()
            .with_durability(crate::durability::DurabilityConfig::new(&dir))
            .unwrap();
        assert!(!report.snapshot_used);
        assert_eq!(report.replayed, 4, "journal alone fully recovers");
        assert_eq!(recovered.telemetry_epoch(), 4);
        assert_eq!(recovered.catalog_snapshot(), reference_catalog);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingestion_for_unknown_cloud_fails() {
        let svc = service();
        let provider = SimulatedProvider::new("ghost", "ghost").with_ground_truth(
            ComponentKind::Storage,
            GroundTruth {
                down_probability: Probability::new(0.1).unwrap(),
                failures_per_year: FailuresPerYear::new(2.0).unwrap(),
            },
        );
        let telemetry = provider
            .harvest_component_telemetry(ComponentKind::Storage, 2, 1.0, 1)
            .unwrap();
        assert!(matches!(
            svc.ingest_component_telemetry(
                &CloudId::new("ghost"),
                ComponentKind::Storage,
                &telemetry
            ),
            Err(BrokerError::UnknownCloud { .. })
        ));
    }
}
