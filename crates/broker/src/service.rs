//! The brokered service itself.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::Serialize;
use uptime_catalog::{CatalogStore, CloudId, ComponentKind, HaMethodId};
use uptime_optimizer::{branch_bound, exhaustive, Evaluation, Objective, SearchSpace};

use crate::error::BrokerError;
use crate::planner::{DeploymentPlan, ProvisionStep};
use crate::provider::{CloudProvider, ProviderTelemetry};
use crate::recommendation::{CloudRecommendation, DegradedMode, RankedOption, Recommendation};
use crate::request::SolutionRequest;
use crate::resilience::{BreakerState, CircuitBreaker, RetryPolicy};
use crate::telemetry::{validate_batch, EstimatedParameters, QuarantinePolicy, TelemetryEstimator};

/// Consecutive quarantined batches after which a provider's catalog view
/// is considered stale for degraded-mode purposes.
const QUARANTINE_STALE_STREAK: u32 = 3;

/// Per-provider control-plane state: the provider itself plus the
/// resilience bookkeeping the broker keeps about it.
struct ProviderSlot {
    provider: Box<dyn CloudProvider + Send + Sync>,
    breaker: CircuitBreaker,
    quarantined_streak: u32,
    batches_absorbed: u64,
    batches_quarantined: u64,
}

/// What went wrong, as recorded in the incident log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum IncidentCategory {
    /// A telemetry batch failed structural validation.
    TelemetryRejected,
    /// A structurally valid batch carried an implausible estimate.
    ImplausibleEstimate,
    /// A provider call failed even after retries.
    ProviderFault,
    /// A provider's circuit breaker tripped open.
    BreakerOpened,
    /// A provider's circuit breaker closed again after a successful probe.
    BreakerRecovered,
}

/// One entry in the broker's incident log.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Incident {
    /// Monotonic sequence number (order of occurrence).
    pub seq: u64,
    /// The cloud involved.
    pub cloud: CloudId,
    /// What kind of incident this is.
    pub category: IncidentCategory,
    /// Human-readable detail.
    pub detail: String,
    /// The provider breaker's virtual tick when a state transition was
    /// logged. Set for [`IncidentCategory::BreakerOpened`] and
    /// [`IncidentCategory::BreakerRecovered`] so the incident log carries
    /// the same timeline the `obs` breaker counters summarize.
    pub breaker_tick: Option<u64>,
    /// The breaker state *after* the transition, when one occurred.
    pub breaker_state: Option<BreakerState>,
}

/// Control-plane health of one fronted provider.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProviderHealth {
    /// The cloud this provider fronts.
    pub cloud: CloudId,
    /// The provider's display name.
    pub display_name: String,
    /// Current circuit-breaker state.
    pub state: BreakerState,
    /// Consecutive provider-call failures observed.
    pub consecutive_failures: u32,
    /// How many times the breaker has tripped open.
    pub times_opened: u64,
    /// Consecutive telemetry batches quarantined.
    pub quarantined_streak: u32,
    /// Batches absorbed into the catalog.
    pub batches_absorbed: u64,
    /// Batches quarantined instead of absorbed.
    pub batches_quarantined: u64,
}

/// A point-in-time health report for the whole broker.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BrokerHealth {
    /// Per-provider health, ordered by cloud id.
    pub providers: Vec<ProviderHealth>,
    /// Total incidents logged since startup.
    pub incident_count: u64,
    /// Total telemetry batches quarantined across providers.
    pub quarantined_batches: u64,
    /// Whether recommendations are currently served degraded.
    pub degraded: bool,
}

/// Which optimizer backend [`BrokerService::recommend`] and
/// [`BrokerService::recommend_metacloud`] run on — `brokerctl`'s
/// `--engine` flag.
///
/// [`SearchEngine::Exhaustive`] materializes every HA permutation so the
/// recommendation carries the paper's full Fig. 10 option table.
/// [`SearchEngine::BranchBound`] runs the tight-bound work-stealing
/// parallel branch-and-bound
/// ([`uptime_optimizer::branch_bound::search_with_threads`]): exactly the
/// same `MinTco` winner, but the option table is trimmed to the winner
/// (plus the as-is option when one is declared) because the engine never
/// visits — let alone materializes — most of the space. Use it when the
/// space is too large to enumerate; the recommendation's search stats
/// then show how much of the space the bound discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchEngine {
    /// Factorized full enumeration; complete ranked option tables.
    #[default]
    Exhaustive,
    /// Tight-bound parallel branch-and-bound; winner-only option tables.
    BranchBound,
}

impl std::str::FromStr for SearchEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exhaustive" | "full" => Ok(SearchEngine::Exhaustive),
            "bnb" | "branch-bound" => Ok(SearchEngine::BranchBound),
            other => Err(format!(
                "unknown engine `{other}` (expected `exhaustive` or `bnb`)"
            )),
        }
    }
}

impl fmt::Display for SearchEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SearchEngine::Exhaustive => "exhaustive",
            SearchEngine::BranchBound => "bnb",
        })
    }
}

/// The uptime-optimizing brokered service of the paper's Fig. 2.
///
/// Holds the broker's knowledge base behind a read-write lock so that
/// telemetry ingestion (writes) can interleave with recommendation
/// requests (reads) — the long-running service shape the paper envisages.
///
/// Beyond the knowledge base, the service optionally fronts live
/// [`CloudProvider`]s. Provider calls go through a [`RetryPolicy`] and a
/// per-provider [`CircuitBreaker`]; harvested telemetry passes structural
/// validation and a [`QuarantinePolicy`] plausibility gate before being
/// absorbed. When a provider is unreachable or its telemetry is
/// quarantined, recommendations keep flowing from the last known-good
/// catalog, annotated with [`DegradedMode`].
pub struct BrokerService {
    catalog: RwLock<CatalogStore>,
    providers: RwLock<BTreeMap<CloudId, ProviderSlot>>,
    incidents: RwLock<Vec<Incident>>,
    retry: RetryPolicy,
    quarantine: QuarantinePolicy,
    breaker_template: CircuitBreaker,
    engine: SearchEngine,
    recorder: Arc<dyn uptime_obs::Recorder>,
    /// Bumped on every successful telemetry absorb; serving-layer caches
    /// key their entries by this and so are invalidated by any absorb.
    epoch: std::sync::atomic::AtomicU64,
}

impl fmt::Debug for BrokerService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokerService")
            .field("providers", &self.providers.read().len())
            .field("incidents", &self.incidents.read().len())
            .field("retry", &self.retry)
            .field("quarantine", &self.quarantine)
            .finish_non_exhaustive()
    }
}

impl BrokerService {
    /// Creates a service fronting the given knowledge base.
    #[must_use]
    pub fn new(catalog: CatalogStore) -> Self {
        BrokerService {
            catalog: RwLock::new(catalog),
            providers: RwLock::new(BTreeMap::new()),
            incidents: RwLock::new(Vec::new()),
            retry: RetryPolicy::default(),
            quarantine: QuarantinePolicy::default(),
            breaker_template: CircuitBreaker::default(),
            engine: SearchEngine::default(),
            recorder: Arc::new(uptime_obs::NoopRecorder),
            epoch: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The telemetry epoch: how many telemetry batches this service has
    /// absorbed into its knowledge base. Any recommendation computed at
    /// epoch `e` is stale once the epoch moves past `e` — serving-layer
    /// caches compare entry epochs against this value on every lookup.
    #[must_use]
    pub fn telemetry_epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Attaches a metrics recorder; every sync, ingest, and recommend call
    /// reports `broker.*` metrics through it. The default is the no-op
    /// recorder, which costs nothing.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn uptime_obs::Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Selects the optimizer backend recommendations run on. The default
    /// is [`SearchEngine::Exhaustive`]; see [`SearchEngine`] for the
    /// trade-off.
    #[must_use]
    pub fn with_engine(mut self, engine: SearchEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The optimizer backend recommendations run on.
    #[must_use]
    pub fn engine(&self) -> SearchEngine {
        self.engine
    }

    /// The recorder recommendations report `broker.*` metrics through.
    pub(crate) fn obs_recorder(&self) -> &dyn uptime_obs::Recorder {
        &*self.recorder
    }

    /// Replaces the retry policy applied to provider calls.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the telemetry plausibility gate.
    #[must_use]
    pub fn with_quarantine_policy(mut self, quarantine: QuarantinePolicy) -> Self {
        self.quarantine = quarantine;
        self
    }

    /// Replaces the circuit-breaker template cloned for each provider
    /// registered afterwards.
    #[must_use]
    pub fn with_circuit_breaker(mut self, breaker: CircuitBreaker) -> Self {
        self.breaker_template = breaker;
        self
    }

    /// Registers a live provider for its cloud, replacing any previous
    /// provider for the same cloud (breaker state starts fresh).
    pub fn register_provider(&self, provider: Box<dyn CloudProvider + Send + Sync>) {
        let cloud = provider.id().clone();
        let slot = ProviderSlot {
            provider,
            breaker: self.breaker_template.clone(),
            quarantined_streak: 0,
            batches_absorbed: 0,
            batches_quarantined: 0,
        };
        self.providers.write().insert(cloud, slot);
    }

    /// A snapshot of the current knowledge base.
    #[must_use]
    pub fn catalog_snapshot(&self) -> CatalogStore {
        self.catalog.read().clone()
    }

    /// A snapshot of the incident log, in order of occurrence.
    #[must_use]
    pub fn incidents(&self) -> Vec<Incident> {
        self.incidents.read().clone()
    }

    fn log_incident(
        &self,
        cloud: &CloudId,
        category: IncidentCategory,
        detail: String,
        transition: Option<(u64, BreakerState)>,
    ) {
        self.recorder.event("broker.incident", &detail);
        let mut incidents = self.incidents.write();
        let seq = incidents.len() as u64;
        incidents.push(Incident {
            seq,
            cloud: cloud.clone(),
            category,
            detail,
            breaker_tick: transition.map(|(tick, _)| tick),
            breaker_state: transition.map(|(_, state)| state),
        });
    }

    /// Harvests component telemetry from the registered provider for
    /// `cloud` — through the retry policy and circuit breaker — and
    /// absorbs it via [`Self::ingest_component_telemetry`].
    ///
    /// # Errors
    ///
    /// * [`BrokerError::ProviderUnavailable`] when no provider is
    ///   registered for `cloud`, or the provider kept faulting after
    ///   retries.
    /// * [`BrokerError::CircuitOpen`] when the breaker rejects the call.
    /// * [`BrokerError::Timeout`] when the last retry timed out.
    /// * [`BrokerError::TelemetryRejected`] when the harvested batch was
    ///   quarantined instead of absorbed.
    pub fn sync_telemetry(
        &self,
        cloud: &CloudId,
        kind: ComponentKind,
        fleet: u32,
        years: f64,
        seed: u64,
    ) -> Result<EstimatedParameters, BrokerError> {
        let rec = &*self.recorder;
        let _span = uptime_obs::span!(rec, "broker.sync");
        // Harvest phase: providers lock only (never held across the
        // catalog lock taken during ingestion).
        let telemetry = {
            let mut providers = self.providers.write();
            let slot =
                providers
                    .get_mut(cloud)
                    .ok_or_else(|| BrokerError::ProviderUnavailable {
                        cloud: cloud.clone(),
                        reason: "no provider registered".into(),
                    })?;
            if !slot.breaker.allow() {
                rec.counter_add("broker.breaker.rejected", 1);
                return Err(BrokerError::CircuitOpen {
                    cloud: cloud.clone(),
                });
            }
            let was = slot.breaker.state();
            let outcome = self.retry.run(
                seed,
                |e: &BrokerError| {
                    matches!(
                        e,
                        BrokerError::ProviderUnavailable { .. } | BrokerError::Timeout { .. }
                    )
                },
                |_attempt| {
                    slot.provider
                        .harvest_component_telemetry(kind, fleet, years, seed)
                },
            );
            rec.observe("broker.sync.attempts", f64::from(outcome.attempts));
            rec.observe("broker.sync.backoff_ms", outcome.virtual_elapsed_ms as f64);
            rec.counter_add(
                "broker.sync.retries",
                u64::from(outcome.attempts.saturating_sub(1)),
            );
            match outcome.result {
                Ok(telemetry) => {
                    slot.breaker.record_success();
                    let tick = slot.breaker.tick();
                    if was != BreakerState::Closed {
                        drop(providers);
                        rec.counter_add("broker.breaker.recovered", 1);
                        self.log_incident(
                            cloud,
                            IncidentCategory::BreakerRecovered,
                            "probe harvest succeeded; breaker closed".into(),
                            Some((tick, BreakerState::Closed)),
                        );
                    }
                    telemetry
                }
                Err(err) => {
                    let opened_before = slot.breaker.times_opened();
                    slot.breaker.record_failure();
                    let tripped = slot.breaker.times_opened() > opened_before;
                    let tick = slot.breaker.tick();
                    drop(providers);
                    rec.counter_add("broker.sync.failed", 1);
                    self.log_incident(
                        cloud,
                        IncidentCategory::ProviderFault,
                        format!(
                            "harvest failed after {} attempt(s): {err}",
                            outcome.attempts
                        ),
                        None,
                    );
                    if tripped {
                        rec.counter_add("broker.breaker.opened", 1);
                        self.log_incident(
                            cloud,
                            IncidentCategory::BreakerOpened,
                            "consecutive provider faults tripped the breaker".into(),
                            Some((tick, BreakerState::Open)),
                        );
                    }
                    return Err(err);
                }
            }
        };
        self.ingest_component_telemetry(cloud, kind, &telemetry)
    }

    /// Absorbs harvested component telemetry into the knowledge base:
    /// validates the batch, estimates `P̂`/`f̂` from the trace, checks the
    /// estimate against the plausibility gate, and evidence-merges it into
    /// the cloud's reliability record for that component.
    ///
    /// Returns the estimate that was absorbed.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::UnknownCloud`] if the broker does not front
    ///   `cloud`.
    /// * [`BrokerError::TelemetryRejected`] if the batch failed structural
    ///   validation or the plausibility gate; the batch is quarantined and
    ///   logged, and the catalog is left untouched.
    pub fn ingest_component_telemetry(
        &self,
        cloud: &CloudId,
        kind: ComponentKind,
        telemetry: &ProviderTelemetry,
    ) -> Result<EstimatedParameters, BrokerError> {
        if let Err(reason) = validate_batch(telemetry) {
            self.note_quarantine(cloud, IncidentCategory::TelemetryRejected, &reason);
            return Err(BrokerError::TelemetryRejected { reason });
        }

        let estimator = TelemetryEstimator::new();
        // Estimate each observed cluster (a fleet of singletons) and merge.
        let records: Vec<_> = (0..telemetry.clusters as usize)
            .map(|c| {
                estimator.estimate(
                    &telemetry.trace,
                    c,
                    telemetry.nodes_per_cluster,
                    telemetry.span,
                )
            })
            .collect();
        let merged_record = records
            .iter()
            .map(EstimatedParameters::to_reliability_record)
            .reduce(|a, b| a.merge(&b))
            .ok_or(BrokerError::NoCandidates)?;
        let merged_estimate = records
            .into_iter()
            .reduce(|a, b| merge_estimates(&a, &b))
            .expect("records non-empty");

        {
            let mut catalog = self.catalog.write();
            let profile = catalog
                .cloud_mut(cloud)
                .ok_or_else(|| BrokerError::UnknownCloud { id: cloud.clone() })?;
            if let Some(existing) = profile.reliability(kind) {
                if let Err(reason) = self.quarantine.plausible(existing, &merged_estimate) {
                    drop(catalog);
                    self.note_quarantine(cloud, IncidentCategory::ImplausibleEstimate, &reason);
                    return Err(BrokerError::TelemetryRejected { reason });
                }
            }
            profile.absorb_reliability(kind, merged_record);
        }

        // The knowledge base moved: everything computed before this absorb
        // is now stale. Bump *after* the catalog write so a reader that
        // observes the new epoch also observes the new records.
        self.epoch.fetch_add(1, std::sync::atomic::Ordering::AcqRel);

        // The batch made it into the catalog: clear the quarantine streak.
        if let Some(slot) = self.providers.write().get_mut(cloud) {
            slot.quarantined_streak = 0;
            slot.batches_absorbed += 1;
        }
        self.recorder.counter_add("broker.quarantine.accepted", 1);
        Ok(merged_estimate)
    }

    /// Records a quarantined batch against the provider slot (if any) and
    /// the incident log.
    fn note_quarantine(&self, cloud: &CloudId, category: IncidentCategory, reason: &str) {
        if let Some(slot) = self.providers.write().get_mut(cloud) {
            slot.quarantined_streak += 1;
            slot.batches_quarantined += 1;
        }
        self.recorder.counter_add("broker.quarantine.rejected", 1);
        self.log_incident(cloud, category, reason.to_owned(), None);
    }

    /// Degradation metadata for the given clouds, or `None` when every
    /// involved provider is healthy (or unmanaged).
    #[must_use]
    pub fn degraded_mode(&self, clouds: &[CloudId]) -> Option<DegradedMode> {
        let providers = self.providers.read();
        let mut stale_clouds = Vec::new();
        let mut quarantined_batches = 0;
        for cloud in clouds {
            let Some(slot) = providers.get(cloud) else {
                continue;
            };
            let breaker_open = slot.breaker.state() != BreakerState::Closed;
            let telemetry_stale = slot.quarantined_streak >= QUARANTINE_STALE_STREAK;
            if breaker_open || telemetry_stale {
                stale_clouds.push(cloud.clone());
                quarantined_batches += slot.batches_quarantined;
            }
        }
        if stale_clouds.is_empty() {
            return None;
        }
        let names: Vec<&str> = stale_clouds.iter().map(CloudId::as_str).collect();
        Some(DegradedMode {
            note: format!(
                "answers for {} rest on the last known-good catalog \
                 (provider unreachable or telemetry quarantined)",
                names.join(", ")
            ),
            stale_clouds,
            quarantined_batches,
        })
    }

    /// A point-in-time health report across every registered provider.
    #[must_use]
    pub fn health(&self) -> BrokerHealth {
        let providers = self.providers.read();
        let provider_health: Vec<ProviderHealth> = providers
            .iter()
            .map(|(cloud, slot)| ProviderHealth {
                cloud: cloud.clone(),
                display_name: slot.provider.display_name().to_owned(),
                state: slot.breaker.state(),
                consecutive_failures: slot.breaker.consecutive_failures(),
                times_opened: slot.breaker.times_opened(),
                quarantined_streak: slot.quarantined_streak,
                batches_absorbed: slot.batches_absorbed,
                batches_quarantined: slot.batches_quarantined,
            })
            .collect();
        let quarantined_batches = provider_health.iter().map(|p| p.batches_quarantined).sum();
        let degraded = provider_health.iter().any(|p| {
            p.state != BreakerState::Closed || p.quarantined_streak >= QUARANTINE_STALE_STREAK
        });
        drop(providers);
        BrokerHealth {
            providers: provider_health,
            incident_count: self.incidents.read().len() as u64,
            quarantined_batches,
            degraded,
        }
    }

    /// Runs the paper's full pipeline: enumerate every HA permutation on
    /// every requested cloud, price them, and assemble the recommendation.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::UnknownCloud`] for a requested cloud the broker
    ///   does not front.
    /// * [`BrokerError::InvalidRequest`] when a declared as-is method does
    ///   not exist for its tier.
    /// * Catalog/space errors for missing prices or reliability records.
    pub fn recommend(&self, request: &SolutionRequest) -> Result<Recommendation, BrokerError> {
        let rec = &*self.recorder;
        let _span = uptime_obs::span!(rec, "broker.recommend");
        let catalog = self.catalog.read();
        let clouds: Vec<CloudId> = if request.clouds().is_empty() {
            catalog.cloud_ids().cloned().collect()
        } else {
            for id in request.clouds() {
                if catalog.cloud(id).is_none() {
                    return Err(BrokerError::UnknownCloud { id: id.clone() });
                }
            }
            request.clouds().to_vec()
        };
        if clouds.is_empty() {
            return Err(BrokerError::NoCandidates);
        }

        let model = request.tco_model();
        let mut cloud_recs = Vec::with_capacity(clouds.len());
        for cloud in clouds {
            let space = SearchSpace::from_catalog(&catalog, &cloud, request.tiers())?;
            // Method ids per tier, in the same order the space was built.
            let method_ids: Vec<Vec<HaMethodId>> = request
                .tiers()
                .iter()
                .map(|kind| {
                    catalog
                        .methods_for(*kind)
                        .iter()
                        .map(|m| m.id().clone())
                        .collect()
                })
                .collect();

            let as_is_assignment = match request.as_is() {
                Some(methods) => Some(resolve_as_is(&method_ids, methods)?),
                None => None,
            };

            let (outcome, ordered) = match self.engine {
                SearchEngine::Exhaustive => {
                    let outcome =
                        exhaustive::search_recorded(&space, &model, Objective::MinTco, rec);
                    // Paper numbering: ascending cardinality, then
                    // mixed-radix value.
                    let mut ordered: Vec<Evaluation> = outcome.evaluations().to_vec();
                    ordered.sort_by_key(|e| {
                        (e.cardinality(), assignment_value(&space, e.assignment()))
                    });
                    (outcome, ordered)
                }
                SearchEngine::BranchBound => {
                    // Streaming: the engine proves the winner without
                    // visiting most of the space, so the option table is
                    // trimmed to the winner plus the declared as-is.
                    let outcome =
                        branch_bound::search_with_threads_recorded(&space, &model, 0, rec);
                    let winner = outcome.best().ok_or(BrokerError::NoCandidates)?.clone();
                    let mut ordered = vec![winner];
                    if let Some(assignment) = &as_is_assignment {
                        if assignment.as_slice() != ordered[0].assignment() {
                            ordered.push(Evaluation::evaluate(&space, &model, assignment));
                        }
                    }
                    (outcome, ordered)
                }
            };

            let mut options = Vec::with_capacity(ordered.len());
            let mut best_index = 0;
            let mut min_risk_index: Option<usize> = None;
            let mut as_is_index: Option<usize> = None;
            for (i, e) in ordered.iter().enumerate() {
                let meets = model.sla().is_met_by(e.uptime().availability());
                let ids = e
                    .assignment()
                    .iter()
                    .zip(&method_ids)
                    .map(|(&idx, tier)| tier[idx].clone())
                    .collect();
                let labels = e.labels(&space).iter().map(|s| (*s).to_owned()).collect();
                let tier_costs = e
                    .assignment()
                    .iter()
                    .zip(space.components())
                    .map(|(&idx, comp)| comp.candidates()[idx].monthly_cost())
                    .collect();
                options.push(RankedOption::new(
                    i + 1,
                    labels,
                    ids,
                    tier_costs,
                    (*e).clone(),
                    meets,
                ));

                if e.tco().total() < ordered[best_index].tco().total() {
                    best_index = i;
                }
                if meets {
                    let better = match min_risk_index {
                        Some(j) => e.tco().total() < ordered[j].tco().total(),
                        None => true,
                    };
                    if better {
                        min_risk_index = Some(i);
                    }
                }
                if as_is_assignment.as_deref() == Some(e.assignment()) {
                    as_is_index = Some(i);
                }
            }

            cloud_recs.push(CloudRecommendation::new(
                cloud,
                options,
                best_index,
                min_risk_index,
                as_is_index,
                outcome.stats(),
            ));
        }
        drop(catalog);
        let answered: Vec<CloudId> = cloud_recs.iter().map(|c| c.cloud().clone()).collect();
        rec.counter_add("broker.recommend.clouds", answered.len() as u64);
        let mut recommendation = Recommendation::new(cloud_recs);
        if let Some(degraded) = self.degraded_mode(&answered) {
            recommendation = recommendation.with_degraded(degraded);
            rec.gauge_set("broker.degraded", 1.0);
            // Degraded-mode duration: how long each stale provider's
            // breaker has been non-closed, in admission-check ticks.
            let providers = self.providers.read();
            for (_, slot) in providers.iter() {
                if let Some(ticks) = slot.breaker.open_ticks() {
                    rec.observe("broker.breaker.open_ticks", ticks as f64);
                }
            }
        } else {
            rec.gauge_set("broker.degraded", 0.0);
        }
        Ok(recommendation)
    }

    /// Turns a ranked option into a provisioning plan for its cloud.
    ///
    /// # Errors
    ///
    /// Returns catalog errors when a method id no longer resolves.
    pub fn plan(
        &self,
        cloud: &CloudId,
        tiers: &[ComponentKind],
        option: &RankedOption,
    ) -> Result<DeploymentPlan, BrokerError> {
        let catalog = self.catalog.read();
        let mut steps = Vec::with_capacity(option.method_ids().len());
        for (kind, method_id) in tiers.iter().zip(option.method_ids()) {
            let method = catalog.method(method_id.as_str()).ok_or_else(|| {
                BrokerError::Catalog(uptime_catalog::CatalogError::UnknownMethod {
                    id: method_id.clone(),
                })
            })?;
            steps.push(ProvisionStep::new(
                *kind,
                method_id.clone(),
                method.display_name(),
                method.shape().total_nodes,
            ));
        }
        Ok(DeploymentPlan::new(cloud.clone(), steps))
    }
}

/// Mixed-radix value of an assignment (last component least significant),
/// reproducing the paper's option numbering within a cardinality level.
fn assignment_value(space: &SearchSpace, assignment: &[usize]) -> u128 {
    let mut value: u128 = 0;
    for (idx, comp) in assignment.iter().zip(space.components()) {
        value = value * comp.len() as u128 + *idx as u128;
    }
    value
}

fn resolve_as_is(
    method_ids: &[Vec<HaMethodId>],
    declared: &[HaMethodId],
) -> Result<Vec<usize>, BrokerError> {
    declared
        .iter()
        .zip(method_ids)
        .map(|(want, tier)| {
            tier.iter()
                .position(|id| id == want)
                .ok_or_else(|| BrokerError::InvalidRequest {
                    reason: format!("as-is method `{want}` is not available for its tier"),
                })
        })
        .collect()
}

fn merge_estimates(a: &EstimatedParameters, b: &EstimatedParameters) -> EstimatedParameters {
    // Delegates the numeric merge to ReliabilityRecord, then rebuilds; the
    // failover estimate keeps whichever side observed one (preferring a).
    let merged = a.to_reliability_record().merge(&b.to_reliability_record());
    EstimatedParameters::from_parts(
        merged.down_probability(),
        merged.failures_per_year(),
        a.failover_time().or(b.failover_time()),
        merged.node_years_observed(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{CloudProvider, GroundTruth, SimulatedProvider};
    use crate::request::SolutionRequest;
    use uptime_catalog::case_study;
    use uptime_core::{FailuresPerYear, Probability};

    fn paper_request() -> SolutionRequest {
        SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .cloud(case_study::cloud_id())
            .as_is(vec![
                HaMethodId::new("vmware-ha-3p1"),
                HaMethodId::new("raid1"),
                HaMethodId::new("dual-gw"),
            ])
            .build()
            .unwrap()
    }

    fn service() -> BrokerService {
        BrokerService::new(case_study::catalog())
    }

    #[test]
    fn reproduces_paper_fig10() {
        let rec = service().recommend(&paper_request()).unwrap();
        let cloud = &rec.clouds()[0];
        assert_eq!(cloud.options().len(), 8);

        // Paper numbering and TCOs.
        let expected = [
            (1, 4300.0),
            (2, 4000.0),
            (3, 1250.0),
            (4, 5900.0),
            (5, 1350.0),
            (6, 5500.0),
            (7, 2850.0),
            (8, 3550.0),
        ];
        for (opt, (number, tco)) in cloud.options().iter().zip(expected) {
            assert_eq!(opt.option_number(), number);
            assert!(
                (opt.evaluation().tco().total().value() - tco).abs() < 0.5,
                "#{number}: got {} want {tco}",
                opt.evaluation().tco().total()
            );
        }

        assert_eq!(cloud.best().option_number(), 3);
        assert_eq!(cloud.min_risk().unwrap().option_number(), 5);
        assert_eq!(cloud.as_is().unwrap().option_number(), 8);
        let savings = cloud.savings_vs_as_is().unwrap();
        assert!((savings - 0.62).abs() < 0.005, "got {savings}");
    }

    #[test]
    fn branch_bound_engine_matches_exhaustive_winner() {
        let request = paper_request();
        let full = service().recommend(&request).unwrap();
        let bnb = service()
            .with_engine(SearchEngine::BranchBound)
            .recommend(&request)
            .unwrap();
        let full_cloud = &full.clouds()[0];
        let bnb_cloud = &bnb.clouds()[0];
        assert_eq!(
            full_cloud.best().evaluation(),
            bnb_cloud.best().evaluation(),
            "engines must agree on the winner bit-for-bit"
        );
        // Trimmed table: winner plus the declared as-is option.
        assert_eq!(bnb_cloud.options().len(), 2);
        assert!(bnb_cloud.as_is().is_some());
        assert_eq!(
            u128::from(bnb_cloud.stats().considered()),
            8,
            "streaming engine still accounts for the full space"
        );
    }

    #[test]
    fn branch_bound_engine_matches_metacloud_placement() {
        let catalog = uptime_catalog::extended::hybrid_catalog();
        let request = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .build()
            .unwrap();
        let full = BrokerService::new(catalog.clone())
            .recommend_metacloud(&request)
            .unwrap();
        let bnb = BrokerService::new(catalog)
            .with_engine(SearchEngine::BranchBound)
            .recommend_metacloud(&request)
            .unwrap();
        assert_eq!(full.evaluation(), bnb.evaluation());
        assert_eq!(full.placements(), bnb.placements());
    }

    #[test]
    fn engine_parses_and_displays() {
        assert_eq!("bnb".parse(), Ok(SearchEngine::BranchBound));
        assert_eq!("branch-bound".parse(), Ok(SearchEngine::BranchBound));
        assert_eq!("exhaustive".parse(), Ok(SearchEngine::Exhaustive));
        assert_eq!("full".parse(), Ok(SearchEngine::Exhaustive));
        assert!("quantum".parse::<SearchEngine>().is_err());
        assert_eq!(SearchEngine::BranchBound.to_string(), "bnb");
        assert_eq!(SearchEngine::default(), SearchEngine::Exhaustive);
    }

    #[test]
    fn option_numbering_matches_paper_descriptions() {
        let rec = service().recommend(&paper_request()).unwrap();
        let cloud = &rec.clouds()[0];
        let labels: Vec<Vec<&str>> = cloud
            .options()
            .iter()
            .map(|o| o.labels().iter().map(String::as_str).collect())
            .collect();
        assert_eq!(labels[0], ["None", "None", "None"]); // #1
        assert_eq!(labels[1], ["None", "None", "Dual Node GW Cluster"]); // #2
        assert_eq!(labels[2], ["None", "RAID 1", "None"]); // #3
        assert_eq!(labels[3], ["VMware HA (3+1)", "None", "None"]); // #4
        assert_eq!(labels[4], ["None", "RAID 1", "Dual Node GW Cluster"]); // #5
        assert_eq!(
            labels[5],
            ["VMware HA (3+1)", "None", "Dual Node GW Cluster"]
        ); // #6
        assert_eq!(labels[6], ["VMware HA (3+1)", "RAID 1", "None"]); // #7
        assert_eq!(
            labels[7],
            ["VMware HA (3+1)", "RAID 1", "Dual Node GW Cluster"]
        );
        // #8
    }

    #[test]
    fn unknown_cloud_rejected() {
        let request = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .cloud(CloudId::new("ghost"))
            .build()
            .unwrap();
        assert!(matches!(
            service().recommend(&request),
            Err(BrokerError::UnknownCloud { .. })
        ));
    }

    #[test]
    fn empty_clouds_means_all() {
        let request = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .build()
            .unwrap();
        let rec = service().recommend(&request).unwrap();
        assert_eq!(rec.clouds().len(), 1, "case-study catalog has one cloud");
    }

    #[test]
    fn bad_as_is_method_rejected() {
        let request = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .as_is(vec![
                HaMethodId::new("raid1"), // wrong tier: raid1 is storage
                HaMethodId::new("raid1"),
                HaMethodId::new("dual-gw"),
            ])
            .build()
            .unwrap();
        assert!(matches!(
            service().recommend(&request),
            Err(BrokerError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn plan_for_best_option() {
        let svc = service();
        let rec = svc.recommend(&paper_request()).unwrap();
        let cloud = &rec.clouds()[0];
        let plan = svc
            .plan(cloud.cloud(), &ComponentKind::paper_tiers(), cloud.best())
            .unwrap();
        assert_eq!(plan.steps().len(), 3);
        // Option #3: singleton compute, RAID-1 pair, singleton gateway.
        assert_eq!(plan.steps()[0].nodes(), 1);
        assert_eq!(plan.steps()[1].nodes(), 2);
        assert_eq!(plan.steps()[2].nodes(), 1);
        assert_eq!(plan.total_nodes(), 4);
    }

    #[test]
    fn telemetry_ingestion_updates_catalog() {
        let svc = service();
        let provider = SimulatedProvider::new(case_study::cloud_id(), "sim").with_ground_truth(
            ComponentKind::Storage,
            GroundTruth {
                // Ground truth differs from the catalog's 5 %: the broker
                // should move toward it as evidence accumulates.
                down_probability: Probability::new(0.10).unwrap(),
                failures_per_year: FailuresPerYear::new(4.0).unwrap(),
            },
        );
        let before = svc
            .catalog_snapshot()
            .cloud(&case_study::cloud_id())
            .unwrap()
            .reliability(ComponentKind::Storage)
            .unwrap()
            .down_probability()
            .value();

        let telemetry = provider
            .harvest_component_telemetry(ComponentKind::Storage, 50, 100.0, 5)
            .unwrap();
        let estimate = svc
            .ingest_component_telemetry(&case_study::cloud_id(), ComponentKind::Storage, &telemetry)
            .unwrap();
        assert!((estimate.down_probability().value() - 0.10).abs() < 0.02);

        let after = svc
            .catalog_snapshot()
            .cloud(&case_study::cloud_id())
            .unwrap()
            .reliability(ComponentKind::Storage)
            .unwrap()
            .down_probability()
            .value();
        assert!(after > before, "catalog belief moved toward ground truth");
    }

    fn storage_provider(p: f64, f: f64) -> SimulatedProvider {
        SimulatedProvider::new(case_study::cloud_id(), "sim").with_ground_truth(
            ComponentKind::Storage,
            GroundTruth {
                down_probability: Probability::new(p).unwrap(),
                failures_per_year: FailuresPerYear::new(f).unwrap(),
            },
        )
    }

    fn catalog_storage_p(svc: &BrokerService) -> f64 {
        svc.catalog_snapshot()
            .cloud(&case_study::cloud_id())
            .unwrap()
            .reliability(ComponentKind::Storage)
            .unwrap()
            .down_probability()
            .value()
    }

    #[test]
    fn sync_telemetry_happy_path() {
        let svc = service();
        svc.register_provider(Box::new(storage_provider(0.10, 4.0)));
        let estimate = svc
            .sync_telemetry(
                &case_study::cloud_id(),
                ComponentKind::Storage,
                50,
                100.0,
                5,
            )
            .unwrap();
        assert!((estimate.down_probability().value() - 0.10).abs() < 0.02);
        let health = svc.health();
        assert!(!health.degraded);
        assert_eq!(health.providers.len(), 1);
        assert_eq!(health.providers[0].batches_absorbed, 1);
        assert_eq!(health.providers[0].state, BreakerState::Closed);
        assert!(svc.incidents().is_empty());
    }

    #[test]
    fn sync_without_registered_provider_is_provider_unavailable() {
        let svc = service();
        assert!(matches!(
            svc.sync_telemetry(&case_study::cloud_id(), ComponentKind::Storage, 10, 1.0, 1),
            Err(BrokerError::ProviderUnavailable { .. })
        ));
    }

    #[test]
    fn repeated_faults_trip_breaker_and_degrade_recommendations() {
        use crate::chaos::{ChaosConfig, ChaosProvider};
        let svc = service();
        let config = ChaosConfig::quiet(7).with_harvest_timeout_rate(1.0);
        svc.register_provider(Box::new(ChaosProvider::new(
            storage_provider(0.10, 4.0),
            config,
        )));

        // Default breaker trips after 3 consecutive failed syncs.
        for round in 0..3 {
            let err = svc
                .sync_telemetry(
                    &case_study::cloud_id(),
                    ComponentKind::Storage,
                    10,
                    1.0,
                    round,
                )
                .unwrap_err();
            assert!(matches!(err, BrokerError::Timeout { .. }), "{err}");
        }
        let health = svc.health();
        assert_eq!(health.providers[0].state, BreakerState::Open);
        assert!(health.degraded);
        assert!(svc
            .incidents()
            .iter()
            .any(|i| i.category == IncidentCategory::BreakerOpened));

        // While open, calls are rejected without reaching the provider.
        assert!(matches!(
            svc.sync_telemetry(&case_study::cloud_id(), ComponentKind::Storage, 10, 1.0, 9),
            Err(BrokerError::CircuitOpen { .. })
        ));

        // Recommendations still flow, annotated as degraded.
        let rec = svc.recommend(&paper_request()).unwrap();
        assert!(rec.is_degraded());
        let meta = rec.degraded().unwrap();
        assert_eq!(meta.stale_clouds, vec![case_study::cloud_id()]);
        assert!(meta.note.contains("last known-good catalog"));
        // The degraded answer itself is the unchanged Fig. 10 answer.
        assert_eq!(rec.clouds()[0].best().option_number(), 3);
    }

    #[test]
    fn corrupted_batches_are_quarantined_not_absorbed() {
        use crate::chaos::{ChaosConfig, ChaosProvider};
        let svc = service();
        let config = ChaosConfig::quiet(11).with_corrupt_rate(1.0);
        svc.register_provider(Box::new(ChaosProvider::new(
            storage_provider(0.10, 4.0),
            config,
        )));
        let before = catalog_storage_p(&svc);

        for round in 0..4 {
            let err = svc
                .sync_telemetry(
                    &case_study::cloud_id(),
                    ComponentKind::Storage,
                    10,
                    5.0,
                    round,
                )
                .unwrap_err();
            assert!(
                matches!(err, BrokerError::TelemetryRejected { .. }),
                "{err}"
            );
        }
        assert_eq!(catalog_storage_p(&svc), before, "catalog untouched");
        let health = svc.health();
        assert_eq!(health.providers[0].batches_quarantined, 4);
        assert_eq!(health.providers[0].quarantined_streak, 4);
        assert!(health.degraded, "sustained quarantine degrades the broker");
        assert!(svc
            .incidents()
            .iter()
            .all(|i| i.category == IncidentCategory::TelemetryRejected));
        let rec = svc.recommend(&paper_request()).unwrap();
        assert_eq!(rec.degraded().unwrap().quarantined_batches, 4);
    }

    #[test]
    fn implausible_estimates_are_gated() {
        let svc = service();
        // Ground truth wildly off the catalog's 5 % belief (0.9 is far
        // outside both the P99 band and the 0.15 drift slack).
        svc.register_provider(Box::new(storage_provider(0.9, 4.0)));
        let before = catalog_storage_p(&svc);
        let err = svc
            .sync_telemetry(&case_study::cloud_id(), ComponentKind::Storage, 50, 20.0, 3)
            .unwrap_err();
        assert!(
            matches!(err, BrokerError::TelemetryRejected { .. }),
            "{err}"
        );
        assert_eq!(catalog_storage_p(&svc), before);
        assert!(svc
            .incidents()
            .iter()
            .any(|i| i.category == IncidentCategory::ImplausibleEstimate));
    }

    #[test]
    fn breaker_recovers_after_faults_stop() {
        use crate::chaos::{ChaosConfig, ChaosProvider};
        let svc = service().with_circuit_breaker(crate::resilience::CircuitBreaker::new(2, 1));
        let config = ChaosConfig::quiet(13).with_harvest_timeout_rate(1.0);
        let chaotic = ChaosProvider::new(storage_provider(0.10, 4.0), config);
        svc.register_provider(Box::new(chaotic));
        for round in 0..2 {
            let _ = svc.sync_telemetry(
                &case_study::cloud_id(),
                ComponentKind::Storage,
                10,
                1.0,
                round,
            );
        }
        assert_eq!(svc.health().providers[0].state, BreakerState::Open);

        // Replace with a healthy provider but keep driving the same slot:
        // instead, register a fresh healthy provider — breaker resets.
        svc.register_provider(Box::new(storage_provider(0.10, 4.0)));
        let estimate = svc
            .sync_telemetry(
                &case_study::cloud_id(),
                ComponentKind::Storage,
                50,
                100.0,
                5,
            )
            .unwrap();
        assert!((estimate.down_probability().value() - 0.10).abs() < 0.02);
        assert_eq!(svc.health().providers[0].state, BreakerState::Closed);
    }

    #[test]
    fn ingestion_for_unknown_cloud_fails() {
        let svc = service();
        let provider = SimulatedProvider::new("ghost", "ghost").with_ground_truth(
            ComponentKind::Storage,
            GroundTruth {
                down_probability: Probability::new(0.1).unwrap(),
                failures_per_year: FailuresPerYear::new(2.0).unwrap(),
            },
        );
        let telemetry = provider
            .harvest_component_telemetry(ComponentKind::Storage, 2, 1.0, 1)
            .unwrap();
        assert!(matches!(
            svc.ingest_component_telemetry(
                &CloudId::new("ghost"),
                ComponentKind::Storage,
                &telemetry
            ),
            Err(BrokerError::UnknownCloud { .. })
        ));
    }
}
