//! The brokered service itself.

use parking_lot::RwLock;
use uptime_catalog::{CatalogStore, CloudId, ComponentKind, HaMethodId};
use uptime_optimizer::{exhaustive, Evaluation, Objective, SearchSpace};

use crate::error::BrokerError;
use crate::planner::{DeploymentPlan, ProvisionStep};
use crate::provider::ProviderTelemetry;
use crate::recommendation::{CloudRecommendation, RankedOption, Recommendation};
use crate::request::SolutionRequest;
use crate::telemetry::{EstimatedParameters, TelemetryEstimator};

/// The uptime-optimizing brokered service of the paper's Fig. 2.
///
/// Holds the broker's knowledge base behind a read-write lock so that
/// telemetry ingestion (writes) can interleave with recommendation
/// requests (reads) — the long-running service shape the paper envisages.
#[derive(Debug)]
pub struct BrokerService {
    catalog: RwLock<CatalogStore>,
}

impl BrokerService {
    /// Creates a service fronting the given knowledge base.
    #[must_use]
    pub fn new(catalog: CatalogStore) -> Self {
        BrokerService {
            catalog: RwLock::new(catalog),
        }
    }

    /// A snapshot of the current knowledge base.
    #[must_use]
    pub fn catalog_snapshot(&self) -> CatalogStore {
        self.catalog.read().clone()
    }

    /// Absorbs harvested component telemetry into the knowledge base:
    /// estimates `P̂`/`f̂` from the trace and evidence-merges them into the
    /// cloud's reliability record for that component.
    ///
    /// Returns the estimate that was absorbed.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownCloud`] if the broker does not front
    /// `cloud`.
    pub fn ingest_component_telemetry(
        &self,
        cloud: &CloudId,
        kind: ComponentKind,
        telemetry: &ProviderTelemetry,
    ) -> Result<EstimatedParameters, BrokerError> {
        let estimator = TelemetryEstimator::new();
        // Estimate each observed cluster (a fleet of singletons) and merge.
        let records: Vec<_> = (0..telemetry.clusters as usize)
            .map(|c| {
                estimator.estimate(
                    &telemetry.trace,
                    c,
                    telemetry.nodes_per_cluster,
                    telemetry.span,
                )
            })
            .collect();
        let merged_record = records
            .iter()
            .map(EstimatedParameters::to_reliability_record)
            .reduce(|a, b| a.merge(&b))
            .ok_or(BrokerError::NoCandidates)?;

        let mut catalog = self.catalog.write();
        let profile = catalog
            .cloud_mut(cloud)
            .ok_or_else(|| BrokerError::UnknownCloud { id: cloud.clone() })?;
        profile.absorb_reliability(kind, merged_record);

        // Return a merged view of the estimates.
        let total_years: f64 = records.iter().map(EstimatedParameters::node_years).sum();
        let _ = total_years;
        Ok(records
            .into_iter()
            .reduce(|a, b| merge_estimates(&a, &b))
            .expect("records non-empty"))
    }

    /// Runs the paper's full pipeline: enumerate every HA permutation on
    /// every requested cloud, price them, and assemble the recommendation.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::UnknownCloud`] for a requested cloud the broker
    ///   does not front.
    /// * [`BrokerError::InvalidRequest`] when a declared as-is method does
    ///   not exist for its tier.
    /// * Catalog/space errors for missing prices or reliability records.
    pub fn recommend(&self, request: &SolutionRequest) -> Result<Recommendation, BrokerError> {
        let catalog = self.catalog.read();
        let clouds: Vec<CloudId> = if request.clouds().is_empty() {
            catalog.cloud_ids().cloned().collect()
        } else {
            for id in request.clouds() {
                if catalog.cloud(id).is_none() {
                    return Err(BrokerError::UnknownCloud { id: id.clone() });
                }
            }
            request.clouds().to_vec()
        };
        if clouds.is_empty() {
            return Err(BrokerError::NoCandidates);
        }

        let model = request.tco_model();
        let mut cloud_recs = Vec::with_capacity(clouds.len());
        for cloud in clouds {
            let space = SearchSpace::from_catalog(&catalog, &cloud, request.tiers())?;
            // Method ids per tier, in the same order the space was built.
            let method_ids: Vec<Vec<HaMethodId>> = request
                .tiers()
                .iter()
                .map(|kind| {
                    catalog
                        .methods_for(*kind)
                        .iter()
                        .map(|m| m.id().clone())
                        .collect()
                })
                .collect();

            let outcome = exhaustive::search(&space, &model, Objective::MinTco);

            // Paper numbering: ascending cardinality, then mixed-radix value.
            let mut ordered: Vec<&Evaluation> = outcome.evaluations().iter().collect();
            ordered.sort_by_key(|e| (e.cardinality(), assignment_value(&space, e.assignment())));

            let as_is_assignment = match request.as_is() {
                Some(methods) => Some(resolve_as_is(&method_ids, methods)?),
                None => None,
            };

            let mut options = Vec::with_capacity(ordered.len());
            let mut best_index = 0;
            let mut min_risk_index: Option<usize> = None;
            let mut as_is_index: Option<usize> = None;
            for (i, e) in ordered.iter().enumerate() {
                let meets = model.sla().is_met_by(e.uptime().availability());
                let ids = e
                    .assignment()
                    .iter()
                    .zip(&method_ids)
                    .map(|(&idx, tier)| tier[idx].clone())
                    .collect();
                let labels = e.labels(&space).iter().map(|s| (*s).to_owned()).collect();
                let tier_costs = e
                    .assignment()
                    .iter()
                    .zip(space.components())
                    .map(|(&idx, comp)| comp.candidates()[idx].monthly_cost())
                    .collect();
                options.push(RankedOption::new(
                    i + 1,
                    labels,
                    ids,
                    tier_costs,
                    (*e).clone(),
                    meets,
                ));

                if e.tco().total() < ordered[best_index].tco().total() {
                    best_index = i;
                }
                if meets {
                    let better = match min_risk_index {
                        Some(j) => e.tco().total() < ordered[j].tco().total(),
                        None => true,
                    };
                    if better {
                        min_risk_index = Some(i);
                    }
                }
                if as_is_assignment.as_deref() == Some(e.assignment()) {
                    as_is_index = Some(i);
                }
            }

            cloud_recs.push(CloudRecommendation::new(
                cloud,
                options,
                best_index,
                min_risk_index,
                as_is_index,
                outcome.stats(),
            ));
        }
        Ok(Recommendation::new(cloud_recs))
    }

    /// Turns a ranked option into a provisioning plan for its cloud.
    ///
    /// # Errors
    ///
    /// Returns catalog errors when a method id no longer resolves.
    pub fn plan(
        &self,
        cloud: &CloudId,
        tiers: &[ComponentKind],
        option: &RankedOption,
    ) -> Result<DeploymentPlan, BrokerError> {
        let catalog = self.catalog.read();
        let mut steps = Vec::with_capacity(option.method_ids().len());
        for (kind, method_id) in tiers.iter().zip(option.method_ids()) {
            let method = catalog.method(method_id.as_str()).ok_or_else(|| {
                BrokerError::Catalog(uptime_catalog::CatalogError::UnknownMethod {
                    id: method_id.clone(),
                })
            })?;
            steps.push(ProvisionStep::new(
                *kind,
                method_id.clone(),
                method.display_name(),
                method.shape().total_nodes,
            ));
        }
        Ok(DeploymentPlan::new(cloud.clone(), steps))
    }
}

/// Mixed-radix value of an assignment (last component least significant),
/// reproducing the paper's option numbering within a cardinality level.
fn assignment_value(space: &SearchSpace, assignment: &[usize]) -> u128 {
    let mut value: u128 = 0;
    for (idx, comp) in assignment.iter().zip(space.components()) {
        value = value * comp.len() as u128 + *idx as u128;
    }
    value
}

fn resolve_as_is(
    method_ids: &[Vec<HaMethodId>],
    declared: &[HaMethodId],
) -> Result<Vec<usize>, BrokerError> {
    declared
        .iter()
        .zip(method_ids)
        .map(|(want, tier)| {
            tier.iter()
                .position(|id| id == want)
                .ok_or_else(|| BrokerError::InvalidRequest {
                    reason: format!("as-is method `{want}` is not available for its tier"),
                })
        })
        .collect()
}

fn merge_estimates(a: &EstimatedParameters, b: &EstimatedParameters) -> EstimatedParameters {
    // Delegates the numeric merge to ReliabilityRecord, then rebuilds; the
    // failover estimate keeps whichever side observed one (preferring a).
    let merged = a.to_reliability_record().merge(&b.to_reliability_record());
    EstimatedParameters::from_parts(
        merged.down_probability(),
        merged.failures_per_year(),
        a.failover_time().or(b.failover_time()),
        merged.node_years_observed(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{CloudProvider, GroundTruth, SimulatedProvider};
    use crate::request::SolutionRequest;
    use uptime_catalog::case_study;
    use uptime_core::{FailuresPerYear, Probability};

    fn paper_request() -> SolutionRequest {
        SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .cloud(case_study::cloud_id())
            .as_is(vec![
                HaMethodId::new("vmware-ha-3p1"),
                HaMethodId::new("raid1"),
                HaMethodId::new("dual-gw"),
            ])
            .build()
            .unwrap()
    }

    fn service() -> BrokerService {
        BrokerService::new(case_study::catalog())
    }

    #[test]
    fn reproduces_paper_fig10() {
        let rec = service().recommend(&paper_request()).unwrap();
        let cloud = &rec.clouds()[0];
        assert_eq!(cloud.options().len(), 8);

        // Paper numbering and TCOs.
        let expected = [
            (1, 4300.0),
            (2, 4000.0),
            (3, 1250.0),
            (4, 5900.0),
            (5, 1350.0),
            (6, 5500.0),
            (7, 2850.0),
            (8, 3550.0),
        ];
        for (opt, (number, tco)) in cloud.options().iter().zip(expected) {
            assert_eq!(opt.option_number(), number);
            assert!(
                (opt.evaluation().tco().total().value() - tco).abs() < 0.5,
                "#{number}: got {} want {tco}",
                opt.evaluation().tco().total()
            );
        }

        assert_eq!(cloud.best().option_number(), 3);
        assert_eq!(cloud.min_risk().unwrap().option_number(), 5);
        assert_eq!(cloud.as_is().unwrap().option_number(), 8);
        let savings = cloud.savings_vs_as_is().unwrap();
        assert!((savings - 0.62).abs() < 0.005, "got {savings}");
    }

    #[test]
    fn option_numbering_matches_paper_descriptions() {
        let rec = service().recommend(&paper_request()).unwrap();
        let cloud = &rec.clouds()[0];
        let labels: Vec<Vec<&str>> = cloud
            .options()
            .iter()
            .map(|o| o.labels().iter().map(String::as_str).collect())
            .collect();
        assert_eq!(labels[0], ["None", "None", "None"]); // #1
        assert_eq!(labels[1], ["None", "None", "Dual Node GW Cluster"]); // #2
        assert_eq!(labels[2], ["None", "RAID 1", "None"]); // #3
        assert_eq!(labels[3], ["VMware HA (3+1)", "None", "None"]); // #4
        assert_eq!(labels[4], ["None", "RAID 1", "Dual Node GW Cluster"]); // #5
        assert_eq!(
            labels[5],
            ["VMware HA (3+1)", "None", "Dual Node GW Cluster"]
        ); // #6
        assert_eq!(labels[6], ["VMware HA (3+1)", "RAID 1", "None"]); // #7
        assert_eq!(
            labels[7],
            ["VMware HA (3+1)", "RAID 1", "Dual Node GW Cluster"]
        );
        // #8
    }

    #[test]
    fn unknown_cloud_rejected() {
        let request = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .cloud(CloudId::new("ghost"))
            .build()
            .unwrap();
        assert!(matches!(
            service().recommend(&request),
            Err(BrokerError::UnknownCloud { .. })
        ));
    }

    #[test]
    fn empty_clouds_means_all() {
        let request = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .build()
            .unwrap();
        let rec = service().recommend(&request).unwrap();
        assert_eq!(rec.clouds().len(), 1, "case-study catalog has one cloud");
    }

    #[test]
    fn bad_as_is_method_rejected() {
        let request = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .as_is(vec![
                HaMethodId::new("raid1"), // wrong tier: raid1 is storage
                HaMethodId::new("raid1"),
                HaMethodId::new("dual-gw"),
            ])
            .build()
            .unwrap();
        assert!(matches!(
            service().recommend(&request),
            Err(BrokerError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn plan_for_best_option() {
        let svc = service();
        let rec = svc.recommend(&paper_request()).unwrap();
        let cloud = &rec.clouds()[0];
        let plan = svc
            .plan(cloud.cloud(), &ComponentKind::paper_tiers(), cloud.best())
            .unwrap();
        assert_eq!(plan.steps().len(), 3);
        // Option #3: singleton compute, RAID-1 pair, singleton gateway.
        assert_eq!(plan.steps()[0].nodes(), 1);
        assert_eq!(plan.steps()[1].nodes(), 2);
        assert_eq!(plan.steps()[2].nodes(), 1);
        assert_eq!(plan.total_nodes(), 4);
    }

    #[test]
    fn telemetry_ingestion_updates_catalog() {
        let svc = service();
        let provider = SimulatedProvider::new(case_study::cloud_id(), "sim").with_ground_truth(
            ComponentKind::Storage,
            GroundTruth {
                // Ground truth differs from the catalog's 5 %: the broker
                // should move toward it as evidence accumulates.
                down_probability: Probability::new(0.10).unwrap(),
                failures_per_year: FailuresPerYear::new(4.0).unwrap(),
            },
        );
        let before = svc
            .catalog_snapshot()
            .cloud(&case_study::cloud_id())
            .unwrap()
            .reliability(ComponentKind::Storage)
            .unwrap()
            .down_probability()
            .value();

        let telemetry = provider
            .harvest_component_telemetry(ComponentKind::Storage, 50, 100.0, 5)
            .unwrap();
        let estimate = svc
            .ingest_component_telemetry(&case_study::cloud_id(), ComponentKind::Storage, &telemetry)
            .unwrap();
        assert!((estimate.down_probability().value() - 0.10).abs() < 0.02);

        let after = svc
            .catalog_snapshot()
            .cloud(&case_study::cloud_id())
            .unwrap()
            .reliability(ComponentKind::Storage)
            .unwrap()
            .down_probability()
            .value();
        assert!(after > before, "catalog belief moved toward ground truth");
    }

    #[test]
    fn ingestion_for_unknown_cloud_fails() {
        let svc = service();
        let provider = SimulatedProvider::new("ghost", "ghost").with_ground_truth(
            ComponentKind::Storage,
            GroundTruth {
                down_probability: Probability::new(0.1).unwrap(),
                failures_per_year: FailuresPerYear::new(2.0).unwrap(),
            },
        );
        let telemetry = provider
            .harvest_component_telemetry(ComponentKind::Storage, 2, 1.0, 1)
            .unwrap();
        assert!(matches!(
            svc.ingest_component_telemetry(
                &CloudId::new("ghost"),
                ComponentKind::Storage,
                &telemetry
            ),
            Err(BrokerError::UnknownCloud { .. })
        ));
    }
}
