//! Telemetry estimation: the broker's database-building pipeline.
//!
//! The paper assumes the broker "determines and maintains a database of
//! the `P_i` and `f_i` across IaaS components across clouds" and "the
//! `t_i` for various components" (§II.C). This module reconstructs those
//! three quantities from raw infrastructure traces:
//!
//! * `f̂` — observed node failures per node-year,
//! * `P̂` — observed fraction of node-time spent down,
//! * `t̂` — mean observed failover window.
//!
//! Because providers can deliver corrupted or truncated captures, the
//! module also hosts the broker's telemetry quarantine: structural batch
//! validation ([`validate_batch`]) and the statistical plausibility gate
//! ([`QuarantinePolicy`]) applied before an estimate is absorbed into the
//! knowledge base.

use serde::{Deserialize, Serialize};
use uptime_catalog::ReliabilityRecord;
use uptime_core::{ConfidenceLevel, FailuresPerYear, Minutes, Probability, ProbabilityInterval};
use uptime_sim::{SimDuration, SimTime, Trace, TraceEventKind};

use crate::provider::ProviderTelemetry;

/// Parameters recovered from observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatedParameters {
    down_probability: Probability,
    failures_per_year: FailuresPerYear,
    failover_time: Option<Minutes>,
    node_years: f64,
}

impl EstimatedParameters {
    /// Assembles an estimate from already-known parts (used when merging
    /// per-cluster estimates).
    #[must_use]
    pub(crate) fn from_parts(
        down_probability: Probability,
        failures_per_year: FailuresPerYear,
        failover_time: Option<Minutes>,
        node_years: f64,
    ) -> Self {
        EstimatedParameters {
            down_probability,
            failures_per_year,
            failover_time,
            node_years,
        }
    }

    /// Estimated node down-probability `P̂`.
    #[must_use]
    pub fn down_probability(&self) -> Probability {
        self.down_probability
    }

    /// Estimated failure rate `f̂`.
    #[must_use]
    pub fn failures_per_year(&self) -> FailuresPerYear {
        self.failures_per_year
    }

    /// Mean observed failover window `t̂`, if any window was observed.
    #[must_use]
    pub fn failover_time(&self) -> Option<Minutes> {
        self.failover_time
    }

    /// Node-years of observation behind the estimate.
    #[must_use]
    pub fn node_years(&self) -> f64 {
        self.node_years
    }

    /// Converts to a catalog [`ReliabilityRecord`] carrying the evidence
    /// mass.
    #[must_use]
    pub fn to_reliability_record(&self) -> ReliabilityRecord {
        ReliabilityRecord::new(
            self.down_probability,
            self.failures_per_year,
            self.node_years,
        )
    }
}

/// Stateless estimator over traces.
#[derive(Debug, Clone, Copy, Default)]
pub struct TelemetryEstimator;

impl TelemetryEstimator {
    /// Creates an estimator.
    #[must_use]
    pub fn new() -> Self {
        TelemetryEstimator
    }

    /// Estimates parameters for one cluster's fleet from a trace.
    ///
    /// `node_count` is the number of nodes the trace covers and `span` the
    /// observation window; down intervals still open at the end of the
    /// span are clipped to it.
    #[must_use]
    pub fn estimate(
        &self,
        trace: &Trace,
        cluster: usize,
        node_count: u32,
        span: SimDuration,
    ) -> EstimatedParameters {
        let span_end = SimTime::ZERO + span;
        let mut down_since: std::collections::BTreeMap<usize, SimTime> =
            std::collections::BTreeMap::new();
        let mut total_down = SimDuration::ZERO;
        let mut failures: u64 = 0;
        let mut failover_open: Option<SimTime> = None;
        let mut failover_total = SimDuration::ZERO;
        let mut failover_count: u64 = 0;

        for event in trace.for_cluster(cluster) {
            match event.kind {
                TraceEventKind::NodeDown { node } => {
                    failures += 1;
                    down_since.entry(node).or_insert(event.at);
                }
                TraceEventKind::NodeUp { node } => {
                    if let Some(start) = down_since.remove(&node) {
                        total_down += event.at.since(start);
                    }
                }
                TraceEventKind::FailoverStart => {
                    failover_open.get_or_insert(event.at);
                }
                TraceEventKind::FailoverEnd => {
                    if let Some(start) = failover_open.take() {
                        failover_total += event.at.since(start);
                        failover_count += 1;
                    }
                }
            }
        }
        // Clip intervals still open at the end of the window.
        for (_, start) in down_since {
            total_down += span_end.since(start);
        }

        let node_time_minutes = f64::from(node_count) * span.as_minutes();
        let node_years = node_time_minutes / uptime_core::MINUTES_PER_YEAR;
        let p_hat = if node_time_minutes > 0.0 {
            Probability::saturating(total_down.as_minutes() / node_time_minutes)
        } else {
            Probability::ZERO
        };
        let f_hat = if node_years > 0.0 {
            FailuresPerYear::new(failures as f64 / node_years)
                .expect("counts over positive time are non-negative")
        } else {
            FailuresPerYear::ZERO
        };
        let t_hat = if failover_count > 0 {
            Some(
                Minutes::new(failover_total.as_minutes() / failover_count as f64)
                    .expect("non-negative mean"),
            )
        } else {
            None
        };

        EstimatedParameters {
            down_probability: p_hat,
            failures_per_year: f_hat,
            failover_time: t_hat,
            node_years,
        }
    }
}

/// Structurally validates a harvested telemetry batch.
///
/// A batch passes when its trace could have been produced by an honest
/// capture of the declared frame:
///
/// * timestamps are non-decreasing and never past the declared span;
/// * every event addresses a cluster below `clusters` and (for node
///   events) a node below `nodes_per_cluster`;
/// * per node, `NodeDown` / `NodeUp` strictly alternate starting from up
///   (no double-fail, no orphan repair);
/// * `FailoverEnd` only occurs with at least one failover window open.
///   A single `FailoverEnd` may close several merged windows, matching
///   how the simulator records extended failovers.
///
/// Returns `Err` with a human-readable reason on the first violation.
pub fn validate_batch(telemetry: &ProviderTelemetry) -> Result<(), String> {
    let span_end = SimTime::ZERO + telemetry.span;
    let mut last_at = SimTime::ZERO;
    let mut down: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    let mut open_failovers: std::collections::BTreeMap<usize, u32> =
        std::collections::BTreeMap::new();

    for (i, event) in telemetry.trace.events().iter().enumerate() {
        if event.at < last_at {
            return Err(format!(
                "event {i}: timestamp regresses ({:?} after {:?})",
                event.at, last_at
            ));
        }
        last_at = event.at;
        if event.at > span_end {
            return Err(format!("event {i}: timestamp past declared span"));
        }
        if event.cluster >= telemetry.clusters as usize {
            return Err(format!(
                "event {i}: cluster index {} out of range (frame declares {})",
                event.cluster, telemetry.clusters
            ));
        }
        match event.kind {
            TraceEventKind::NodeDown { node } => {
                if node >= telemetry.nodes_per_cluster as usize {
                    return Err(format!(
                        "event {i}: node index {node} out of range (frame declares {})",
                        telemetry.nodes_per_cluster
                    ));
                }
                if !down.insert((event.cluster, node)) {
                    return Err(format!(
                        "event {i}: node {node} in cluster {} failed while already down",
                        event.cluster
                    ));
                }
            }
            TraceEventKind::NodeUp { node } => {
                if node >= telemetry.nodes_per_cluster as usize {
                    return Err(format!(
                        "event {i}: node index {node} out of range (frame declares {})",
                        telemetry.nodes_per_cluster
                    ));
                }
                if !down.remove(&(event.cluster, node)) {
                    return Err(format!(
                        "event {i}: node {node} in cluster {} repaired while already up",
                        event.cluster
                    ));
                }
            }
            TraceEventKind::FailoverStart => {
                *open_failovers.entry(event.cluster).or_insert(0) += 1;
            }
            TraceEventKind::FailoverEnd => {
                if open_failovers.remove(&event.cluster).is_none() {
                    return Err(format!(
                        "event {i}: failover ended in cluster {} with none open",
                        event.cluster
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Statistical plausibility gate applied before an estimate is absorbed
/// into the catalog.
///
/// A structurally valid batch can still carry a wildly implausible
/// estimate (a capture of the wrong fleet, a unit mix-up). The gate
/// accepts an estimate when either
///
/// * it falls inside the Wald confidence band around the catalog's
///   existing belief at the chosen [`ConfidenceLevel`], or
/// * it is within [`max_probability_shift`](Self::max_probability_shift)
///   of the existing belief in absolute terms — the slack that lets an
///   honest drift (a provider genuinely getting worse) through even when
///   the existing record is heavily evidenced and its band is narrow.
///
/// Records with less than [`min_gate_evidence`](Self::min_gate_evidence)
/// node-years of evidence are not gated at all: a thin prior has no
/// standing to veto fresh observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuarantinePolicy {
    /// Confidence level of the band around the existing belief.
    pub confidence: ConfidenceLevel,
    /// Absolute down-probability drift always accepted.
    pub max_probability_shift: f64,
    /// Minimum node-years the existing record needs before it can gate.
    pub min_gate_evidence: f64,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            confidence: ConfidenceLevel::P99,
            max_probability_shift: 0.15,
            min_gate_evidence: 10.0,
        }
    }
}

impl QuarantinePolicy {
    /// Checks `estimate` against the catalog's `existing` belief.
    ///
    /// Returns `Err` with a reason when the estimate is implausible.
    pub fn plausible(
        &self,
        existing: &ReliabilityRecord,
        estimate: &EstimatedParameters,
    ) -> Result<(), String> {
        if existing.node_years_observed() < self.min_gate_evidence {
            return Ok(());
        }
        let band = ProbabilityInterval::wald(
            existing.down_probability(),
            existing.node_years_observed(),
            self.confidence,
        );
        let p_hat = estimate.down_probability();
        if band.contains(p_hat) {
            return Ok(());
        }
        let shift = (p_hat.value() - existing.down_probability().value()).abs();
        if shift <= self.max_probability_shift {
            return Ok(());
        }
        Err(format!(
            "estimated P̂ = {:.4} implausible: outside {:?} band [{:.4}, {:.4}] \
             around catalog belief {:.4} and |shift| = {:.4} exceeds {:.4}",
            p_hat.value(),
            self.confidence,
            band.lower().value(),
            band.upper().value(),
            existing.down_probability().value(),
            shift,
            self.max_probability_shift
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(min: f64) -> SimTime {
        SimTime::from_minutes(min)
    }

    #[test]
    fn hand_built_trace_estimates_exactly() {
        // One node, observed for one year. Down twice: [100, 5356) and
        // [10000, 10100) minutes → 5356 min total... compute:
        // first outage 5256 min, second 100 min → 5356 min down.
        let mut trace = Trace::new();
        trace.record(at(100.0), 0, TraceEventKind::NodeDown { node: 0 });
        trace.record(at(5356.0), 0, TraceEventKind::NodeUp { node: 0 });
        trace.record(at(10_000.0), 0, TraceEventKind::NodeDown { node: 0 });
        trace.record(at(10_100.0), 0, TraceEventKind::NodeUp { node: 0 });

        let span = SimDuration::from_minutes(uptime_core::MINUTES_PER_YEAR);
        let est = TelemetryEstimator::new().estimate(&trace, 0, 1, span);
        assert!((est.failures_per_year().value() - 2.0).abs() < 1e-9);
        let expected_p = 5356.0 / uptime_core::MINUTES_PER_YEAR;
        assert!((est.down_probability().value() - expected_p).abs() < 1e-9);
        assert!((est.node_years() - 1.0).abs() < 1e-12);
        assert!(est.failover_time().is_none());
    }

    #[test]
    fn open_interval_clipped_at_span() {
        let mut trace = Trace::new();
        trace.record(at(90.0), 0, TraceEventKind::NodeDown { node: 0 });
        let span = SimDuration::from_minutes(100.0);
        let est = TelemetryEstimator::new().estimate(&trace, 0, 1, span);
        assert!((est.down_probability().value() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn failover_windows_averaged() {
        let mut trace = Trace::new();
        trace.record(at(10.0), 0, TraceEventKind::FailoverStart);
        trace.record(at(16.0), 0, TraceEventKind::FailoverEnd);
        trace.record(at(50.0), 0, TraceEventKind::FailoverStart);
        trace.record(at(52.0), 0, TraceEventKind::FailoverEnd);
        let est =
            TelemetryEstimator::new().estimate(&trace, 0, 4, SimDuration::from_minutes(100.0));
        // Mean of 6 and 2 minutes.
        assert!((est.failover_time().unwrap().value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn other_clusters_ignored() {
        let mut trace = Trace::new();
        trace.record(at(1.0), 5, TraceEventKind::NodeDown { node: 0 });
        let est =
            TelemetryEstimator::new().estimate(&trace, 0, 1, SimDuration::from_minutes(100.0));
        assert_eq!(est.failures_per_year().value(), 0.0);
        assert_eq!(est.down_probability().value(), 0.0);
    }

    #[test]
    fn empty_trace_zero_estimates() {
        let est = TelemetryEstimator::new().estimate(
            &Trace::new(),
            0,
            3,
            SimDuration::from_minutes(1000.0),
        );
        assert_eq!(est.down_probability().value(), 0.0);
        assert_eq!(est.failures_per_year().value(), 0.0);
        assert!(est.failover_time().is_none());
        assert!(est.node_years() > 0.0);
    }

    #[test]
    fn record_conversion_carries_evidence() {
        let mut trace = Trace::new();
        trace.record(at(0.0), 0, TraceEventKind::NodeDown { node: 0 });
        trace.record(at(10.0), 0, TraceEventKind::NodeUp { node: 0 });
        let span = SimDuration::from_minutes(uptime_core::MINUTES_PER_YEAR * 20.0);
        let est = TelemetryEstimator::new().estimate(&trace, 0, 5, span);
        let record = est.to_reliability_record();
        assert!((record.node_years_observed() - 100.0).abs() < 1e-9);
        assert!(record.is_well_evidenced());
    }

    #[test]
    fn estimates_recover_simulated_ground_truth() {
        use uptime_core::{ClusterSpec, SystemSpec};
        use uptime_sim::{SimConfig, Simulation};
        // Simulate a 10-node fleet of singletons with P=4 %, f=2/yr for
        // 40 years and check the estimator recovers the parameters.
        let p = Probability::new(0.04).unwrap();
        let clusters: Vec<ClusterSpec> = (0..10)
            .map(|i| ClusterSpec::singleton(format!("n{i}"), p, 2.0).unwrap())
            .collect();
        let system = SystemSpec::new(clusters).unwrap();
        let years = 40.0;
        let (_, trace) =
            Simulation::new(&system, SimConfig::years(years).with_seed(17).with_trace())
                .unwrap()
                .run_traced();

        // Merge the 10 single-node clusters by estimating each and
        // averaging by (equal) evidence.
        let span = SimDuration::from_minutes(uptime_core::MINUTES_PER_YEAR * years);
        let est = TelemetryEstimator::new();
        let records: Vec<_> = (0..10)
            .map(|c| est.estimate(&trace, c, 1, span).to_reliability_record())
            .collect();
        let merged = records
            .iter()
            .skip(1)
            .fold(records[0], |acc, r| acc.merge(r));
        assert!(
            (merged.down_probability().value() - 0.04).abs() < 0.008,
            "P̂ = {}",
            merged.down_probability()
        );
        assert!(
            (merged.failures_per_year().value() - 2.0).abs() < 0.3,
            "f̂ = {}",
            merged.failures_per_year()
        );
        assert!((merged.node_years_observed() - 400.0).abs() < 1e-6);
    }

    fn batch(trace: Trace) -> ProviderTelemetry {
        ProviderTelemetry {
            trace,
            nodes_per_cluster: 2,
            clusters: 2,
            span: SimDuration::from_minutes(1000.0),
        }
    }

    #[test]
    fn clean_batch_validates() {
        let mut trace = Trace::new();
        trace.record(at(5.0), 0, TraceEventKind::NodeDown { node: 0 });
        trace.record(at(6.0), 0, TraceEventKind::FailoverStart);
        trace.record(at(9.0), 0, TraceEventKind::FailoverEnd);
        trace.record(at(10.0), 0, TraceEventKind::NodeUp { node: 0 });
        trace.record(at(20.0), 1, TraceEventKind::NodeDown { node: 1 });
        assert_eq!(validate_batch(&batch(trace)), Ok(()));
    }

    #[test]
    fn merged_failover_windows_validate() {
        // The simulator records one FailoverEnd for merged windows; two
        // Starts then one End must pass.
        let mut trace = Trace::new();
        trace.record(at(1.0), 0, TraceEventKind::NodeDown { node: 0 });
        trace.record(at(1.0), 0, TraceEventKind::FailoverStart);
        trace.record(at(2.0), 0, TraceEventKind::NodeDown { node: 1 });
        trace.record(at(2.0), 0, TraceEventKind::FailoverStart);
        trace.record(at(3.0), 0, TraceEventKind::NodeUp { node: 0 });
        trace.record(at(4.0), 0, TraceEventKind::NodeUp { node: 1 });
        trace.record(at(4.0), 0, TraceEventKind::FailoverEnd);
        assert_eq!(validate_batch(&batch(trace)), Ok(()));
    }

    #[test]
    fn structural_violations_rejected() {
        // Timestamp regression.
        let mut trace = Trace::new();
        trace.record(at(10.0), 0, TraceEventKind::NodeDown { node: 0 });
        trace.record(at(5.0), 0, TraceEventKind::NodeUp { node: 0 });
        assert!(validate_batch(&batch(trace))
            .unwrap_err()
            .contains("regresses"));

        // Cluster out of range.
        let mut trace = Trace::new();
        trace.record(at(1.0), 7, TraceEventKind::NodeDown { node: 0 });
        assert!(validate_batch(&batch(trace))
            .unwrap_err()
            .contains("cluster"));

        // Node out of range.
        let mut trace = Trace::new();
        trace.record(at(1.0), 0, TraceEventKind::NodeDown { node: 9 });
        assert!(validate_batch(&batch(trace))
            .unwrap_err()
            .contains("node index"));

        // Double fail.
        let mut trace = Trace::new();
        trace.record(at(1.0), 0, TraceEventKind::NodeDown { node: 0 });
        trace.record(at(2.0), 0, TraceEventKind::NodeDown { node: 0 });
        assert!(validate_batch(&batch(trace))
            .unwrap_err()
            .contains("already down"));

        // Orphan repair.
        let mut trace = Trace::new();
        trace.record(at(1.0), 0, TraceEventKind::NodeUp { node: 0 });
        assert!(validate_batch(&batch(trace))
            .unwrap_err()
            .contains("already up"));

        // Orphan failover end.
        let mut trace = Trace::new();
        trace.record(at(1.0), 0, TraceEventKind::FailoverEnd);
        assert!(validate_batch(&batch(trace))
            .unwrap_err()
            .contains("none open"));

        // Timestamp past span.
        let mut trace = Trace::new();
        trace.record(at(2000.0), 0, TraceEventKind::NodeDown { node: 0 });
        assert!(validate_batch(&batch(trace)).unwrap_err().contains("span"));
    }

    fn estimate_with_p(p: f64) -> EstimatedParameters {
        EstimatedParameters::from_parts(
            Probability::new(p).unwrap(),
            FailuresPerYear::new(1.0).unwrap(),
            None,
            100.0,
        )
    }

    #[test]
    fn gate_accepts_in_band_and_small_shift() {
        let policy = QuarantinePolicy::default();
        let existing = ReliabilityRecord::new(
            Probability::new(0.05).unwrap(),
            FailuresPerYear::new(2.0).unwrap(),
            1000.0,
        );
        // Inside the Wald band.
        assert_eq!(policy.plausible(&existing, &estimate_with_p(0.055)), Ok(()));
        // Outside the band but within the absolute drift slack — honest
        // degradation of the provider (the case-study ingestion path).
        assert_eq!(policy.plausible(&existing, &estimate_with_p(0.10)), Ok(()));
    }

    #[test]
    fn gate_rejects_wild_estimates() {
        let policy = QuarantinePolicy::default();
        let existing = ReliabilityRecord::new(
            Probability::new(0.05).unwrap(),
            FailuresPerYear::new(2.0).unwrap(),
            1000.0,
        );
        let err = policy
            .plausible(&existing, &estimate_with_p(0.8))
            .unwrap_err();
        assert!(err.contains("implausible"), "{err}");
    }

    #[test]
    fn gate_waived_for_thin_priors() {
        let policy = QuarantinePolicy::default();
        let thin = ReliabilityRecord::new(
            Probability::new(0.05).unwrap(),
            FailuresPerYear::new(2.0).unwrap(),
            2.0,
        );
        assert_eq!(policy.plausible(&thin, &estimate_with_p(0.9)), Ok(()));
    }
}
