//! Telemetry estimation: the broker's database-building pipeline.
//!
//! The paper assumes the broker "determines and maintains a database of
//! the `P_i` and `f_i` across IaaS components across clouds" and "the
//! `t_i` for various components" (§II.C). This module reconstructs those
//! three quantities from raw infrastructure traces:
//!
//! * `f̂` — observed node failures per node-year,
//! * `P̂` — observed fraction of node-time spent down,
//! * `t̂` — mean observed failover window.

use serde::{Deserialize, Serialize};
use uptime_catalog::ReliabilityRecord;
use uptime_core::{FailuresPerYear, Minutes, Probability};
use uptime_sim::{SimDuration, SimTime, Trace, TraceEventKind};

/// Parameters recovered from observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatedParameters {
    down_probability: Probability,
    failures_per_year: FailuresPerYear,
    failover_time: Option<Minutes>,
    node_years: f64,
}

impl EstimatedParameters {
    /// Assembles an estimate from already-known parts (used when merging
    /// per-cluster estimates).
    #[must_use]
    pub(crate) fn from_parts(
        down_probability: Probability,
        failures_per_year: FailuresPerYear,
        failover_time: Option<Minutes>,
        node_years: f64,
    ) -> Self {
        EstimatedParameters {
            down_probability,
            failures_per_year,
            failover_time,
            node_years,
        }
    }

    /// Estimated node down-probability `P̂`.
    #[must_use]
    pub fn down_probability(&self) -> Probability {
        self.down_probability
    }

    /// Estimated failure rate `f̂`.
    #[must_use]
    pub fn failures_per_year(&self) -> FailuresPerYear {
        self.failures_per_year
    }

    /// Mean observed failover window `t̂`, if any window was observed.
    #[must_use]
    pub fn failover_time(&self) -> Option<Minutes> {
        self.failover_time
    }

    /// Node-years of observation behind the estimate.
    #[must_use]
    pub fn node_years(&self) -> f64 {
        self.node_years
    }

    /// Converts to a catalog [`ReliabilityRecord`] carrying the evidence
    /// mass.
    #[must_use]
    pub fn to_reliability_record(&self) -> ReliabilityRecord {
        ReliabilityRecord::new(
            self.down_probability,
            self.failures_per_year,
            self.node_years,
        )
    }
}

/// Stateless estimator over traces.
#[derive(Debug, Clone, Copy, Default)]
pub struct TelemetryEstimator;

impl TelemetryEstimator {
    /// Creates an estimator.
    #[must_use]
    pub fn new() -> Self {
        TelemetryEstimator
    }

    /// Estimates parameters for one cluster's fleet from a trace.
    ///
    /// `node_count` is the number of nodes the trace covers and `span` the
    /// observation window; down intervals still open at the end of the
    /// span are clipped to it.
    #[must_use]
    pub fn estimate(
        &self,
        trace: &Trace,
        cluster: usize,
        node_count: u32,
        span: SimDuration,
    ) -> EstimatedParameters {
        let span_end = SimTime::ZERO + span;
        let mut down_since: std::collections::BTreeMap<usize, SimTime> =
            std::collections::BTreeMap::new();
        let mut total_down = SimDuration::ZERO;
        let mut failures: u64 = 0;
        let mut failover_open: Option<SimTime> = None;
        let mut failover_total = SimDuration::ZERO;
        let mut failover_count: u64 = 0;

        for event in trace.for_cluster(cluster) {
            match event.kind {
                TraceEventKind::NodeDown { node } => {
                    failures += 1;
                    down_since.entry(node).or_insert(event.at);
                }
                TraceEventKind::NodeUp { node } => {
                    if let Some(start) = down_since.remove(&node) {
                        total_down += event.at.since(start);
                    }
                }
                TraceEventKind::FailoverStart => {
                    failover_open.get_or_insert(event.at);
                }
                TraceEventKind::FailoverEnd => {
                    if let Some(start) = failover_open.take() {
                        failover_total += event.at.since(start);
                        failover_count += 1;
                    }
                }
            }
        }
        // Clip intervals still open at the end of the window.
        for (_, start) in down_since {
            total_down += span_end.since(start);
        }

        let node_time_minutes = f64::from(node_count) * span.as_minutes();
        let node_years = node_time_minutes / uptime_core::MINUTES_PER_YEAR;
        let p_hat = if node_time_minutes > 0.0 {
            Probability::saturating(total_down.as_minutes() / node_time_minutes)
        } else {
            Probability::ZERO
        };
        let f_hat = if node_years > 0.0 {
            FailuresPerYear::new(failures as f64 / node_years)
                .expect("counts over positive time are non-negative")
        } else {
            FailuresPerYear::ZERO
        };
        let t_hat = if failover_count > 0 {
            Some(
                Minutes::new(failover_total.as_minutes() / failover_count as f64)
                    .expect("non-negative mean"),
            )
        } else {
            None
        };

        EstimatedParameters {
            down_probability: p_hat,
            failures_per_year: f_hat,
            failover_time: t_hat,
            node_years,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(min: f64) -> SimTime {
        SimTime::from_minutes(min)
    }

    #[test]
    fn hand_built_trace_estimates_exactly() {
        // One node, observed for one year. Down twice: [100, 5356) and
        // [10000, 10100) minutes → 5356 min total... compute:
        // first outage 5256 min, second 100 min → 5356 min down.
        let mut trace = Trace::new();
        trace.record(at(100.0), 0, TraceEventKind::NodeDown { node: 0 });
        trace.record(at(5356.0), 0, TraceEventKind::NodeUp { node: 0 });
        trace.record(at(10_000.0), 0, TraceEventKind::NodeDown { node: 0 });
        trace.record(at(10_100.0), 0, TraceEventKind::NodeUp { node: 0 });

        let span = SimDuration::from_minutes(uptime_core::MINUTES_PER_YEAR);
        let est = TelemetryEstimator::new().estimate(&trace, 0, 1, span);
        assert!((est.failures_per_year().value() - 2.0).abs() < 1e-9);
        let expected_p = 5356.0 / uptime_core::MINUTES_PER_YEAR;
        assert!((est.down_probability().value() - expected_p).abs() < 1e-9);
        assert!((est.node_years() - 1.0).abs() < 1e-12);
        assert!(est.failover_time().is_none());
    }

    #[test]
    fn open_interval_clipped_at_span() {
        let mut trace = Trace::new();
        trace.record(at(90.0), 0, TraceEventKind::NodeDown { node: 0 });
        let span = SimDuration::from_minutes(100.0);
        let est = TelemetryEstimator::new().estimate(&trace, 0, 1, span);
        assert!((est.down_probability().value() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn failover_windows_averaged() {
        let mut trace = Trace::new();
        trace.record(at(10.0), 0, TraceEventKind::FailoverStart);
        trace.record(at(16.0), 0, TraceEventKind::FailoverEnd);
        trace.record(at(50.0), 0, TraceEventKind::FailoverStart);
        trace.record(at(52.0), 0, TraceEventKind::FailoverEnd);
        let est =
            TelemetryEstimator::new().estimate(&trace, 0, 4, SimDuration::from_minutes(100.0));
        // Mean of 6 and 2 minutes.
        assert!((est.failover_time().unwrap().value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn other_clusters_ignored() {
        let mut trace = Trace::new();
        trace.record(at(1.0), 5, TraceEventKind::NodeDown { node: 0 });
        let est =
            TelemetryEstimator::new().estimate(&trace, 0, 1, SimDuration::from_minutes(100.0));
        assert_eq!(est.failures_per_year().value(), 0.0);
        assert_eq!(est.down_probability().value(), 0.0);
    }

    #[test]
    fn empty_trace_zero_estimates() {
        let est = TelemetryEstimator::new().estimate(
            &Trace::new(),
            0,
            3,
            SimDuration::from_minutes(1000.0),
        );
        assert_eq!(est.down_probability().value(), 0.0);
        assert_eq!(est.failures_per_year().value(), 0.0);
        assert!(est.failover_time().is_none());
        assert!(est.node_years() > 0.0);
    }

    #[test]
    fn record_conversion_carries_evidence() {
        let mut trace = Trace::new();
        trace.record(at(0.0), 0, TraceEventKind::NodeDown { node: 0 });
        trace.record(at(10.0), 0, TraceEventKind::NodeUp { node: 0 });
        let span = SimDuration::from_minutes(uptime_core::MINUTES_PER_YEAR * 20.0);
        let est = TelemetryEstimator::new().estimate(&trace, 0, 5, span);
        let record = est.to_reliability_record();
        assert!((record.node_years_observed() - 100.0).abs() < 1e-9);
        assert!(record.is_well_evidenced());
    }

    #[test]
    fn estimates_recover_simulated_ground_truth() {
        use uptime_core::{ClusterSpec, SystemSpec};
        use uptime_sim::{SimConfig, Simulation};
        // Simulate a 10-node fleet of singletons with P=4 %, f=2/yr for
        // 40 years and check the estimator recovers the parameters.
        let p = Probability::new(0.04).unwrap();
        let clusters: Vec<ClusterSpec> = (0..10)
            .map(|i| ClusterSpec::singleton(format!("n{i}"), p, 2.0).unwrap())
            .collect();
        let system = SystemSpec::new(clusters).unwrap();
        let years = 40.0;
        let (_, trace) =
            Simulation::new(&system, SimConfig::years(years).with_seed(17).with_trace())
                .unwrap()
                .run_traced();

        // Merge the 10 single-node clusters by estimating each and
        // averaging by (equal) evidence.
        let span = SimDuration::from_minutes(uptime_core::MINUTES_PER_YEAR * years);
        let est = TelemetryEstimator::new();
        let records: Vec<_> = (0..10)
            .map(|c| est.estimate(&trace, c, 1, span).to_reliability_record())
            .collect();
        let merged = records
            .iter()
            .skip(1)
            .fold(records[0], |acc, r| acc.merge(r));
        assert!(
            (merged.down_probability().value() - 0.04).abs() < 0.008,
            "P̂ = {}",
            merged.down_probability()
        );
        assert!(
            (merged.failures_per_year().value() - 2.0).abs() < 0.3,
            "f̂ = {}",
            merged.failures_per_year()
        );
        assert!((merged.node_years_observed() - 400.0).abs() < 1e-6);
    }
}
