//! `brokerctl` — command-line front end to the uptime brokered service.
//!
//! ```text
//! brokerctl catalog [--hybrid]
//!     List clouds, HA methods, prices and reliability records.
//!
//! brokerctl recommend [--hybrid] [--json] [--archetype NAME] [REQUEST.json]
//!     Run the full recommendation pipeline. Without a request file, uses
//!     the paper's case-study intake (98 % SLA, $100/h penalty); with
//!     --archetype, searches that deployment archetype's series-parallel
//!     composition space instead of the serial chain.
//!
//! brokerctl frontier [--hybrid] [--json] [--engine NAME] [--archetype NAME]
//!                    [--spec FILE | --inline JSON]
//!     Exact feasible cost/uptime Pareto frontier per cloud for a
//!     declarative SLO spec (hard constraints filter, weighted soft
//!     objectives rank and pick the recommendation). Exits 3 when the
//!     hard constraints are unsatisfiable everywhere.
//!
//! brokerctl sweep [--hybrid] FROM TO STEPS
//!     SLA sweep: the winning architecture per target percentage.
//!
//! brokerctl settle MONTHS [SEED]
//!     Settle a simulated multi-month contract for the case-study optimum
//!     and compare realized payouts with Eq. 5.
//!
//! brokerctl metacloud
//!     Cross-provider (metacloud) recommendation over the hybrid catalog.
//!
//! brokerctl serve [--hybrid] [--addr HOST:PORT] [--core threads|reactor] [--shards N]
//!                 [--workers N] [--queue N] [--chaos SEED]
//!                 [--state-dir DIR] [--fsync os|always|every:N] [--snapshot-every N]
//!                 [--no-trace] [--trace-capacity N] [--trace-slow-ms MS]
//!                 [--trace-sample N] [--stdin]
//!     Run the long-lived serving daemon: newline-delimited JSON frames
//!     over TCP, answered through a telemetry-epoch-keyed response cache,
//!     single-flight coalescing, and a backpressured worker pool that
//!     sheds (429) when the admission queue is full. Every request is
//!     traced into a bounded flight recorder (tail-sampled: errors,
//!     sheds and slow requests always kept) queryable via the `traces`
//!     endpoint; `"explain": true` on a request frame returns an inline
//!     per-stage breakdown. With --state-dir the broker recovers its
//!     pre-crash state on startup and journals every accepted telemetry
//!     batch before absorbing it. With --stdin, the legacy loop: one
//!     SolutionRequest JSON per stdin line, one JSON response per line
//!     ({"ok": ...} or {"error": ...}).
//!
//! brokerctl trace [--addr HOST:PORT] [--slowest N] [--errors] [--json|--chrome]
//!     Pull traces from a running daemon's flight recorder: span trees
//!     with per-stage durations (default), raw export JSON, or Chrome
//!     trace_event JSON for chrome://tracing / Perfetto.
//!
//! brokerctl recover [--verify] [--json] [--compact] [--disk-chaos SEED] --state-dir DIR
//!     Replay a state directory and report what recovery found. --verify
//!     is a dry run that leaves the journal untouched; --compact folds
//!     the journal into a fresh snapshot after recovery. Exits 0 on a
//!     clean recovery, 3 when the state was degraded (torn tail,
//!     quarantined or malformed records), 1 on I/O failure.
//!
//! brokerctl health [--hybrid] [--json] [--chaos] [SEED]
//!     Register a simulated provider per cloud, drive telemetry sync
//!     rounds, and report control-plane health plus the incident log.
//!     With --chaos the providers misbehave (seeded fault injection).
//!     Exits 0 when healthy, 3 when the broker is serving degraded.
//!
//! brokerctl obs [--json|--prom] [--hybrid] [--chaos] [--watch SECS [--iters N]] [SEED]
//!     Drive an instrumented recommend+sync run against simulated
//!     providers and export the metrics snapshot as JSON (default) or
//!     Prometheus text format. --watch SECS keeps driving work and
//!     prints one JSON line of counter deltas per tick.
//!
//! brokerctl help | --help
//!     Print usage, including the exit-code contract.
//! ```

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use uptime_broker::{
    report, settlement, BrokerService, ChaosConfig, ChaosProvider, DurabilityConfig, GroundTruth,
    RecoveryReport, SearchEngine, ServingBroker, SimulatedProvider, SolutionRequest,
};
use uptime_catalog::{case_study, extended, CatalogStore, ComponentKind};
use uptime_core::{PenaltyClause, RoundingPolicy, SystemSpec};
use uptime_durability::{DiskChaos, FsyncPolicy, StateDir};
use uptime_optimizer::{sweep, SearchSpace};
use uptime_serve::{Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags: Vec<&str> = Vec::new();
    let mut positional: Vec<&str> = Vec::new();
    let mut command = None;
    let mut engine = SearchEngine::default();
    let mut state_dir: Option<String> = None;
    let mut disk_chaos: Option<u64> = None;
    let mut archetype: Option<String> = None;
    let mut spec_path: Option<String> = None;
    let mut inline_spec: Option<String> = None;
    let mut watch: Option<u64> = None;
    let mut iters: u64 = 0;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg == "--state-dir" {
            i += 1;
            match args.get(i) {
                Some(v) => state_dir = Some(v.clone()),
                None => {
                    eprintln!("brokerctl: --state-dir needs a directory");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--disk-chaos" {
            i += 1;
            let value = match args.get(i) {
                Some(v) => v,
                None => {
                    eprintln!("brokerctl: --disk-chaos needs a seed");
                    return ExitCode::from(2);
                }
            };
            disk_chaos = match value.parse() {
                Ok(seed) => Some(seed),
                Err(_) => {
                    eprintln!("brokerctl: --disk-chaos seed must be an integer");
                    return ExitCode::from(2);
                }
            };
        } else if arg == "--archetype" {
            i += 1;
            match args.get(i) {
                Some(v) => archetype = Some(v.clone()),
                None => {
                    eprintln!(
                        "brokerctl: --archetype needs a name (one of: {})",
                        uptime_optimizer::Archetype::all()
                            .iter()
                            .map(|a| a.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--spec" {
            i += 1;
            match args.get(i) {
                Some(v) => spec_path = Some(v.clone()),
                None => {
                    eprintln!("brokerctl: --spec needs a SLO spec file");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--inline" {
            i += 1;
            match args.get(i) {
                Some(v) => inline_spec = Some(v.clone()),
                None => {
                    eprintln!("brokerctl: --inline needs a JSON SLO spec");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--watch" {
            i += 1;
            let value = match args.get(i) {
                Some(v) => v,
                None => {
                    eprintln!("brokerctl: --watch needs an interval in seconds");
                    return ExitCode::from(2);
                }
            };
            watch = match value.parse() {
                Ok(secs) => Some(secs),
                Err(_) => {
                    eprintln!("brokerctl: --watch interval must be an integer");
                    return ExitCode::from(2);
                }
            };
        } else if arg == "--iters" {
            i += 1;
            let value = match args.get(i) {
                Some(v) => v,
                None => {
                    eprintln!("brokerctl: --iters needs a count");
                    return ExitCode::from(2);
                }
            };
            iters = match value.parse() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("brokerctl: --iters count must be an integer");
                    return ExitCode::from(2);
                }
            };
        } else if arg == "--engine" {
            i += 1;
            let value = match args.get(i) {
                Some(v) => v,
                None => {
                    eprintln!("brokerctl: --engine needs a value (exhaustive|bnb)");
                    return ExitCode::from(2);
                }
            };
            engine = match value.parse() {
                Ok(e) => e,
                Err(err) => {
                    eprintln!("brokerctl: {err}");
                    return ExitCode::from(2);
                }
            };
        } else if arg.starts_with("--") {
            flags.push(arg);
        } else if command.is_none() {
            command = Some(arg.as_str());
        } else {
            positional.push(arg);
        }
        i += 1;
    }
    let hybrid = flags.contains(&"--hybrid");
    let json = flags.contains(&"--json");

    if command == Some("help") || flags.contains(&"--help") {
        print_help();
        return ExitCode::SUCCESS;
    }
    if command == Some("health") {
        let chaos = flags.contains(&"--chaos");
        return match health_command(hybrid, json, chaos, positional.first().copied()) {
            Ok(true) => ExitCode::from(3),
            Ok(false) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("brokerctl: {err}");
                ExitCode::FAILURE
            }
        };
    }
    if command == Some("recover") {
        let Some(dir) = state_dir.as_deref().or_else(|| positional.first().copied()) else {
            eprintln!("brokerctl: recover needs a state directory (--state-dir DIR or DIR)");
            return ExitCode::from(2);
        };
        let verify = flags.contains(&"--verify");
        let compact = flags.contains(&"--compact");
        return match recover_command(hybrid, json, verify, compact, disk_chaos, dir) {
            Ok(true) => ExitCode::from(3),
            Ok(false) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("brokerctl: {err}");
                ExitCode::FAILURE
            }
        };
    }
    if command == Some("frontier") {
        if spec_path.is_some() && inline_spec.is_some() {
            eprintln!("brokerctl: --spec and --inline are mutually exclusive");
            return ExitCode::from(2);
        }
        let spec_text = match &spec_path {
            Some(path) => match std::fs::read_to_string(path) {
                Ok(text) => Some(text),
                Err(err) => {
                    eprintln!("brokerctl: cannot read {path}: {err}");
                    return ExitCode::FAILURE;
                }
            },
            None => inline_spec.clone(),
        };
        return match frontier_command(hybrid, json, engine, archetype.as_deref(), spec_text) {
            Ok(true) => ExitCode::from(3),
            Ok(false) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("brokerctl: {err}");
                ExitCode::FAILURE
            }
        };
    }
    let result = match command {
        Some("catalog") => catalog_command(hybrid),
        Some("recommend") => recommend_command(
            hybrid,
            json,
            engine,
            state_dir.as_deref(),
            archetype.as_deref(),
            positional.first().copied(),
        ),
        Some("sweep") => sweep_command(hybrid, &positional),
        Some("settle") => settle_command(&positional),
        Some("metacloud") => metacloud_command(engine),
        Some("serve") => serve_command(&args),
        Some("trace") => trace_command(&args),
        Some("obs") => obs_command(
            hybrid,
            flags.contains(&"--prom"),
            flags.contains(&"--chaos"),
            watch,
            iters,
            positional.first().copied(),
        ),
        _ => {
            eprintln!(
                "usage: brokerctl <catalog|recommend|frontier|sweep|settle|metacloud|serve|trace|health|obs|recover> [options]"
            );
            eprintln!("       run `brokerctl help` for details and exit codes");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("brokerctl: {err}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "\
brokerctl — command-line front end to the uptime brokered service

Usage: brokerctl <COMMAND> [options]

Commands:
  catalog [--hybrid]
      List clouds, HA methods, prices and reliability records.
  recommend [--hybrid] [--json] [--engine exhaustive|bnb] [--archetype NAME]
            [--state-dir DIR] [REQUEST.json]
      Run the full recommendation pipeline (default: the paper's
      case-study intake, 98% SLA and $100/h penalty). With
      --engine bnb, the exact winner is proven by tight-bound parallel
      branch-and-bound instead of enumeration: same argmin, but the
      ranked option table is trimmed to the winner (plus the declared
      as-is option) and the search stats report how much of the space
      the bound pruned. Use it for spaces enumeration cannot touch.
      With --archetype (zonal, multi-zonal, regional,
      multi-region-active-passive, multi-region-active-active, global)
      the tiers are replicated into that deployment-archetype
      series-parallel shape and the composition space is searched
      instead; request files select the same via a `topology` field.
  frontier [--hybrid] [--json] [--engine exhaustive|bnb] [--archetype NAME]
           [--spec FILE | --inline JSON]
      Extract the exact feasible cost/uptime Pareto frontier per cloud
      for a declarative SLO spec (schemas/slo_spec.schema.json): hard
      objectives constrain which deployments are feasible, weighted soft
      objectives rank the surviving frontier points and pick the
      recommended one. The spec comes from --spec FILE or --inline JSON;
      without either, a demo spec (98% hard uptime floor, $2000/mo soft
      cost cap) is used. --engine bnb prunes with epsilon-dominance
      branch-and-bound and answers bit-identically to exhaustive
      enumeration. --json emits the frontier_response document
      (schemas/frontier_response.schema.json).
  sweep [--hybrid] FROM TO STEPS
      SLA sweep: the winning architecture per target percentage.
  settle MONTHS [SEED]
      Settle a simulated multi-month contract for the case-study
      optimum and compare realized payouts with Eq. 5.
  metacloud [--engine exhaustive|bnb]
      Cross-provider (metacloud) recommendation over the hybrid catalog.
      --engine bnb proves the same placement by branch-and-bound.
  serve [--hybrid] [--addr HOST:PORT] [--core threads|reactor] [--shards N]
        [--workers N] [--queue N] [--chaos SEED]
        [--engine exhaustive|bnb] [--state-dir DIR] [--fsync os|always|every:N]
        [--snapshot-every N] [--no-trace] [--trace-capacity N]
        [--trace-slow-ms MS] [--trace-sample N] [--stdin]
      Long-lived serving daemon (default 127.0.0.1:7411): one JSON frame
      per line over TCP with fields id, endpoint and body; endpoints are
      recommend, frontier, metacloud, health, sync, ping, stats, traces
      and shutdown. Responses are cached per telemetry epoch, identical
      concurrent requests are coalesced, and overload sheds with code
      429. Every request is traced into a bounded in-memory flight
      recorder (tail-sampled: errors, sheds and slow requests always
      kept); add `\"explain\": true` to a request frame for an inline
      per-stage timing breakdown. --no-trace disables tracing,
      --trace-capacity bounds retained traces (default 256),
      --trace-slow-ms sets the always-keep slow threshold (default 25),
      --trace-sample keeps one in N ok-fast traces (default 1). --core
      reactor runs the shared-nothing epoll event-loop core (--shards N
      reactor shards; default one per CPU, capped at 8) instead of the
      default thread-per-connection `threads` core. With
      --state-dir DIR the broker recovers pre-crash state at startup and
      write-ahead-journals every accepted telemetry batch (crash-only:
      kill -9 and restart resumes bit-identically). With --stdin: one
      SolutionRequest JSON per stdin line, one JSON response per line.
  trace [--addr HOST:PORT] [--slowest N] [--errors] [--json|--chrome]
      Pull traces from a running daemon's flight recorder and render
      span trees with per-stage durations and attributes. --slowest N
      keeps the N slowest, --errors only failed/shed requests, --json
      emits the raw export (schemas/trace.schema.json), --chrome emits
      Chrome trace_event JSON loadable in chrome://tracing or Perfetto.
  recover [--verify] [--json] [--compact] [--disk-chaos SEED] --state-dir DIR
      Replay a state directory and report what recovery found: snapshot
      use, records replayed/skipped/quarantined/malformed, any torn-tail
      truncation, and the restored epoch. --verify dry-runs without
      repairing the journal file; --compact folds the journal into a
      fresh snapshot; --disk-chaos SEED injects a seeded disk fault
      first (torn tail, short write, bit flip, missing snapshot).
  health [--hybrid] [--json] [--chaos] [SEED]
      Drive telemetry sync rounds against simulated providers and report
      control-plane health plus the incident log. JSON output carries a
      top-level `schema_version` field.
  obs [--json|--prom] [--hybrid] [--chaos] [--watch SECS [--iters N]] [SEED]
      Drive an instrumented recommend+sync run and export the metrics
      snapshot as JSON (default) or Prometheus text format. With
      --watch SECS, keep driving work and print one JSON line per tick
      with the counter deltas since the previous tick (--iters N stops
      after N ticks; 0 = forever).
  help
      Print this help.

Exit codes:
  0   success; for `health`, the broker is healthy; for `recover`, the
      state recovered clean
  1   runtime error (bad input file, catalog error, I/O failure)
  2   usage error (unknown command or malformed arguments)
  3   `health`: the broker is up but serving degraded (breaker open or
      telemetry quarantined); `recover`: the state was degraded (torn
      journal tail, quarantined or malformed records); `frontier`: the
      spec parsed but its hard constraints are unsatisfiable on every
      requested cloud"
    );
}

fn catalog(hybrid: bool) -> CatalogStore {
    if hybrid {
        extended::hybrid_catalog()
    } else {
        case_study::catalog()
    }
}

fn catalog_command(hybrid: bool) -> Result<(), Box<dyn std::error::Error>> {
    let store = catalog(hybrid);
    println!("Clouds:");
    for id in store.cloud_ids() {
        let profile = store.cloud(id).expect("listed id resolves");
        println!(
            "  {:<12} {:<22} labor ${}/h",
            id.as_str(),
            profile.display_name(),
            profile.rate_card().labor_rate_per_hour()
        );
        for kind in profile.observed_components() {
            let r = profile.reliability(kind).expect("observed");
            println!(
                "      {:<18} P={:.2}%  f={:.2}/yr  ({:.0} node-years)",
                kind.label(),
                r.down_probability().as_percent(),
                r.failures_per_year().value(),
                r.node_years_observed()
            );
        }
    }
    println!("\nHA methods:");
    for method in store.methods() {
        println!(
            "  {:<22} {:<28} {:<16} shape {}  failover {}",
            method.id(),
            method.display_name(),
            method.applies_to().label(),
            method.shape(),
            method.failover_time()
        );
    }
    Ok(())
}

fn recommend_command(
    hybrid: bool,
    json: bool,
    engine: SearchEngine,
    state_dir: Option<&str>,
    archetype: Option<&str>,
    request_path: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let request: SolutionRequest = match request_path {
        Some(path) => {
            if archetype.is_some() {
                return Err(
                    "pass the archetype via the request file's `topology` field, \
                     not --archetype, when a REQUEST.json is given"
                        .into(),
                );
            }
            serde_json::from_str(&std::fs::read_to_string(path)?)?
        }
        None => {
            let mut builder = SolutionRequest::builder()
                .tiers(ComponentKind::paper_tiers())
                .sla_percent(case_study::SLA_PERCENT)?
                .penalty_per_hour(case_study::PENALTY_PER_HOUR)?;
            if let Some(name) = archetype {
                builder = builder.topology(name);
            }
            builder.build()?
        }
    };
    let mut broker = BrokerService::new(catalog(hybrid)).with_engine(engine);
    if let Some(dir) = state_dir {
        let (recovered, report) = broker.with_durability(DurabilityConfig::new(dir))?;
        broker = recovered;
        // Stderr so `--json` stdout stays machine-parsable.
        eprintln!(
            "recovered {} record(s) from {} (epoch {})",
            report.replayed, report.state_dir, report.epoch
        );
    }
    let recommendation = broker.recommend(&request)?;
    if json {
        println!("{}", report::to_json(&recommendation)?);
        return Ok(());
    }
    for cloud in recommendation.clouds() {
        print!("{}", report::render_fig10_summary(cloud));
        println!();
    }
    if recommendation.clouds().len() > 1 {
        print!("{}", report::render_cross_cloud(&recommendation));
    }
    Ok(())
}

/// The default SLO for `brokerctl frontier` with no `--spec`/`--inline`:
/// the paper's case-study uptime target as a hard floor plus a soft
/// monthly cost cap, so the output demonstrates both objective modes.
const DEFAULT_SLO_SPEC: &str = r#"{ "objectives": [
    { "metric": "uptime", "threshold": 98.0, "mode": "hard" },
    { "metric": "cost", "threshold": 2000.0, "mode": "soft", "weight": 1.0 }
] }"#;

/// `brokerctl frontier`: parse the SLO spec, extract the exact feasible
/// Pareto frontier per cloud via [`BrokerService::solve_slo`], and render
/// a cost/uptime tradeoff table (or the `frontier_response` JSON).
/// Returns whether the spec's hard constraints were unsatisfiable on
/// every requested cloud — mapped to exit code 3.
fn frontier_command(
    hybrid: bool,
    json: bool,
    engine: SearchEngine,
    archetype: Option<&str>,
    spec_text: Option<String>,
) -> Result<bool, Box<dyn std::error::Error>> {
    let text = spec_text.unwrap_or_else(|| DEFAULT_SLO_SPEC.to_owned());
    let spec = uptime_slo::SloSpec::from_json_str(&text)?;
    let mut builder = SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .penalty_per_hour(case_study::PENALTY_PER_HOUR)?;
    if let Some(name) = archetype {
        builder = builder.topology(name);
    }
    let request = uptime_broker::FrontierRequest::from_spec(builder, spec)?;
    let broker = BrokerService::new(catalog(hybrid)).with_engine(engine);
    let report = match broker.solve_slo(&request) {
        Ok(report) => report,
        Err(uptime_broker::BrokerError::SloInfeasible { reason }) => {
            eprintln!("brokerctl: slo infeasible: {reason}");
            return Ok(true);
        }
        Err(err) => return Err(err.into()),
    };
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
        return Ok(false);
    }
    println!(
        "Feasible Pareto frontier (engine {}, uptime target {:.3}%):",
        report.engine(),
        report.target_uptime_percent()
    );
    for cloud in report.clouds() {
        println!("\ncloud `{}`:", cloud.cloud());
        if cloud.points().is_empty() {
            println!("  (no deployment satisfies the hard constraints)");
            continue;
        }
        println!(
            "  {:>4} {:>12} {:>10} {:>14} {:>10}  methods",
            "rank", "cost $/mo", "U_s %", "failover m/mo", "score"
        );
        for (index, point) in cloud.points().iter().enumerate() {
            println!(
                "  {:>4} {:>12.0} {:>10.3} {:>14.3} {:>10.3}  {}{}",
                point.rank(),
                point.cost_per_month(),
                point.uptime_percent(),
                point.failover_minutes_per_month(),
                point.soft_score(),
                point.labels().join(" + "),
                if Some(index) == cloud.recommended_index() {
                    "   <- recommended"
                } else {
                    ""
                }
            );
        }
        let stats = cloud.stats();
        println!(
            "  ({} leaves evaluated, {} subtree(s) pruned, frontier size {})",
            stats.leaves_evaluated, stats.subtrees_pruned, stats.frontier_size
        );
    }
    if let Some((cloud, point)) = report.best() {
        println!(
            "\nBest across clouds: `{cloud}` at ${:.0}/mo, U_s {:.3}% (soft score {:.3})",
            point.cost_per_month(),
            point.uptime_percent(),
            point.soft_score()
        );
    }
    Ok(false)
}

fn sweep_command(hybrid: bool, positional: &[&str]) -> Result<(), Box<dyn std::error::Error>> {
    let [from, to, steps] = positional else {
        return Err("sweep needs FROM TO STEPS".into());
    };
    let from: f64 = from.parse()?;
    let to: f64 = to.parse()?;
    let steps: usize = steps.parse()?;
    let store = catalog(hybrid);
    let cloud = case_study::cloud_id();
    let space = SearchSpace::from_catalog(&store, &cloud, &ComponentKind::paper_tiers())?;
    let result = sweep::sla_sweep_range(
        &space,
        &PenaltyClause::per_hour(case_study::PENALTY_PER_HOUR)?,
        RoundingPolicy::CeilHour,
        from,
        to,
        steps,
    );
    println!(
        "{:>8} {:>14} {:>10} {:>12} {:>6}",
        "SLA %", "winner", "U_s %", "TCO $/mo", "meets"
    );
    for point in result.points() {
        println!(
            "{:>8.2} {:>14} {:>10.2} {:>12.0} {:>6}",
            point.sla_percent,
            format!("{:?}", point.best_assignment),
            point.best_uptime.as_percent(),
            point.best_tco.value(),
            if point.meets_sla { "yes" } else { "no" }
        );
    }
    let crossovers = result.crossovers();
    if crossovers.is_empty() {
        println!("\nNo crossovers in this range.");
    } else {
        println!("\nCrossovers (winner changes) between:");
        for (a, b) in crossovers {
            println!("  {a:.2}% and {b:.2}%");
        }
    }
    Ok(())
}

/// `brokerctl serve`: the long-lived daemon (default), or with `--stdin`
/// the legacy one-request-per-line stdin loop.
///
/// Daemon mode builds the catalog once, registers simulated providers
/// (chaotic when `--chaos SEED` is given), and serves newline-delimited
/// JSON frames over TCP through `uptime-serve`'s cache, single-flight
/// coalescing, and backpressured worker pool. Shut it down with a
/// `{"endpoint":"shutdown"}` frame; in-flight requests drain first.
fn serve_command(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut hybrid = false;
    let mut stdin_mode = false;
    let mut chaos: Option<u64> = None;
    let mut engine = SearchEngine::default();
    let mut config = ServerConfig::default();
    let mut state_dir: Option<String> = None;
    let mut fsync = FsyncPolicy::default();
    let mut snapshot_every: Option<u64> = None;
    let mut iter = args.iter().map(String::as_str).skip(1);
    while let Some(arg) = iter.next() {
        match arg {
            "--hybrid" => hybrid = true,
            "--stdin" => stdin_mode = true,
            "--no-trace" => config.trace.enabled = false,
            "--trace-capacity" => {
                config.trace.capacity = iter
                    .next()
                    .ok_or("--trace-capacity needs a trace count")?
                    .parse()?;
            }
            "--trace-slow-ms" => {
                let ms: u64 = iter
                    .next()
                    .ok_or("--trace-slow-ms needs milliseconds")?
                    .parse()?;
                config.trace.slow_threshold_ns = ms.saturating_mul(1_000_000);
            }
            "--trace-sample" => {
                config.trace.sample_one_in = iter
                    .next()
                    .ok_or("--trace-sample needs a one-in-N rate")?
                    .parse()?;
            }
            "--addr" => {
                config.addr = iter.next().ok_or("--addr needs HOST:PORT")?.to_owned();
            }
            "--state-dir" => {
                state_dir = Some(
                    iter.next()
                        .ok_or("--state-dir needs a directory")?
                        .to_owned(),
                );
            }
            "--fsync" => {
                fsync = iter
                    .next()
                    .ok_or("--fsync needs a policy (os|always|every:N)")?
                    .parse()?;
            }
            "--snapshot-every" => {
                snapshot_every = Some(
                    iter.next()
                        .ok_or("--snapshot-every needs an absorb count")?
                        .parse()?,
                );
            }
            "--engine" => {
                engine = iter
                    .next()
                    .ok_or("--engine needs a value (exhaustive|bnb)")?
                    .parse()?;
            }
            "--workers" => {
                config.workers = iter.next().ok_or("--workers needs a count")?.parse()?;
            }
            "--queue" => {
                config.queue_depth = iter.next().ok_or("--queue needs a depth")?.parse()?;
            }
            "--core" => {
                config.core = iter
                    .next()
                    .ok_or("--core needs a value (threads|reactor)")?
                    .parse()?;
            }
            "--shards" => {
                config.shards = iter.next().ok_or("--shards needs a shard count")?.parse()?;
            }
            "--chaos" => {
                chaos = Some(iter.next().ok_or("--chaos needs a seed")?.parse()?);
            }
            other => return Err(format!("serve: unknown argument `{other}`").into()),
        }
    }
    if stdin_mode {
        return serve_stdin(hybrid, engine);
    }

    let store = catalog(hybrid);
    let registry = Arc::new(uptime_obs::MetricsRegistry::new());
    let mut service = BrokerService::new(store.clone())
        .with_engine(engine)
        .with_recorder(Arc::clone(&registry) as _);
    if let Some(dir) = &state_dir {
        let mut durability = DurabilityConfig::new(dir).with_fsync(fsync);
        if let Some(every) = snapshot_every {
            durability = durability.with_snapshot_every(every);
        }
        let (recovered, report) = service.with_durability(durability)?;
        service = recovered;
        print_recovery_summary(&report);
    }
    let broker = Arc::new(service);
    let targets =
        register_simulated_providers(&broker, &store, chaos.is_some(), chaos.unwrap_or(7));
    let mut backend = ServingBroker::new(broker).with_sync_targets(targets);
    if config.trace.enabled {
        // One recorder shared between the server (which begins traces)
        // and the backend (which reports occupancy in `health`).
        let recorder = Arc::new(uptime_obs::FlightRecorder::new(config.trace));
        config.flight_recorder = Some(Arc::clone(&recorder));
        backend = backend.with_flight_recorder(recorder);
    }
    let backend = Arc::new(backend.with_serve_core(config.core.as_str()));
    let workers = config.workers;
    let queue = config.queue_depth;
    let core = config.core;
    let handle = Server::start(backend, config, registry)?;
    println!(
        "uptime-serve listening on {} ({} core, {} worker(s), queue {}, {})",
        handle.local_addr(),
        core.as_str(),
        workers,
        queue,
        if chaos.is_some() {
            "chaotic providers"
        } else {
            "clean providers"
        }
    );
    handle.join();
    println!("uptime-serve drained and stopped");
    Ok(())
}

/// The legacy service loop: one JSON request per line in, one JSON
/// response per line out. A malformed or failing request produces an
/// `{"error": ...}` line and the loop continues — one bad client call
/// must not take the broker down.
fn serve_stdin(hybrid: bool, engine: SearchEngine) -> Result<(), Box<dyn std::error::Error>> {
    use std::io::{BufRead, Write};
    let broker = BrokerService::new(catalog(hybrid)).with_engine(engine);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<SolutionRequest>(&line) {
            Ok(request) => match broker.recommend(&request) {
                Ok(recommendation) => serde_json::json!({ "ok": recommendation }),
                Err(err) => serde_json::json!({ "error": err.to_string() }),
            },
            Err(err) => serde_json::json!({ "error": format!("bad request: {err}") }),
        };
        serde_json::to_writer(&mut out, &response)?;
        out.write_all(b"\n")?;
        out.flush()?;
    }
    Ok(())
}

fn metacloud_command(engine: SearchEngine) -> Result<(), Box<dyn std::error::Error>> {
    let broker = BrokerService::new(extended::hybrid_catalog()).with_engine(engine);
    let request = SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(case_study::SLA_PERCENT)?
        .penalty_per_hour(case_study::PENALTY_PER_HOUR)?
        .build()?;
    let single = broker.recommend(&request)?;
    let meta = broker.recommend_metacloud(&request)?;
    println!(
        "Best single cloud: `{}` at ${:.0}/mo",
        single.best_cloud().ok_or("no clouds")?.cloud(),
        single.best_tco().ok_or("no clouds")?.value()
    );
    println!(
        "Metacloud: ${:.0}/mo at U_s {:.2}% across {} cloud(s)",
        meta.evaluation().tco().total().value(),
        meta.evaluation().uptime().availability().as_percent(),
        meta.clouds_used().len()
    );
    for placement in meta.placements() {
        println!(
            "  {:<18} -> {:<10} via {:<22} (${:.0}/mo)",
            placement.component.label(),
            placement.cloud,
            placement.method,
            placement.monthly_cost.value()
        );
    }
    Ok(())
}

/// Version of `health --json`'s payload shape (shared with the daemon's
/// `health` endpoint via [`uptime_broker::HEALTH_SCHEMA_VERSION`]).
const HEALTH_SCHEMA_VERSION: u32 = uptime_broker::HEALTH_SCHEMA_VERSION;

/// How many telemetry sync rounds `health` and `obs` drive.
const SYNC_ROUNDS: u64 = 6;

/// Registers a simulated provider per catalog cloud (ground truth taken
/// from the catalog's own records, so clean telemetry is always
/// plausible). Returns each cloud's observed component kinds.
fn register_simulated_providers(
    broker: &BrokerService,
    store: &CatalogStore,
    chaos: bool,
    seed: u64,
) -> Vec<(uptime_catalog::CloudId, Vec<ComponentKind>)> {
    let mut components = Vec::new();
    for id in store.cloud_ids() {
        let profile = store.cloud(id).expect("listed id resolves");
        let mut provider = SimulatedProvider::new(id.clone(), profile.display_name());
        let mut kinds = Vec::new();
        for kind in profile.observed_components() {
            let record = profile.reliability(kind).expect("observed");
            provider = provider.with_ground_truth(
                kind,
                GroundTruth {
                    down_probability: record.down_probability(),
                    failures_per_year: record.failures_per_year(),
                },
            );
            kinds.push(kind);
        }
        if chaos {
            broker.register_provider(Box::new(ChaosProvider::new(
                provider,
                ChaosConfig::aggressive(seed),
            )));
        } else {
            broker.register_provider(Box::new(provider));
        }
        components.push((id.clone(), kinds));
    }
    components
}

/// Drives [`SYNC_ROUNDS`] telemetry sync rounds across every registered
/// provider. Any single sync may fail under chaos; that is the point —
/// errors only feed the incident log.
fn drive_sync_rounds(
    broker: &BrokerService,
    components: &[(uptime_catalog::CloudId, Vec<ComponentKind>)],
    seed: u64,
) {
    for round in 0..SYNC_ROUNDS {
        for (cloud, kinds) in components {
            for (k, kind) in kinds.iter().enumerate() {
                let _ = broker.sync_telemetry(cloud, *kind, 20, 5.0, seed + round * 31 + k as u64);
            }
        }
    }
}

/// Registers a simulated provider per catalog cloud, drives telemetry
/// sync rounds, and reports control-plane health. Returns whether the
/// broker ended up degraded.
fn health_command(
    hybrid: bool,
    json: bool,
    chaos: bool,
    seed_arg: Option<&str>,
) -> Result<bool, Box<dyn std::error::Error>> {
    let seed: u64 = seed_arg.map_or(Ok(7), str::parse)?;
    let store = catalog(hybrid);
    let broker = BrokerService::new(store.clone());
    let components = register_simulated_providers(&broker, &store, chaos, seed);
    drive_sync_rounds(&broker, &components, seed);

    let health = broker.health();
    let incidents = broker.incidents();
    if json {
        let payload = serde_json::json!({
            "schema_version": HEALTH_SCHEMA_VERSION,
            "health": health,
            "incidents": incidents,
        });
        println!("{}", serde_json::to_string_pretty(&payload)?);
        return Ok(health.degraded);
    }

    println!(
        "Broker health after {SYNC_ROUNDS} sync round(s){}:",
        if chaos { " under chaos" } else { "" }
    );
    for p in &health.providers {
        println!(
            "  {:<12} breaker {:<9} failures {:>2}  opened {:>2}x  absorbed {:>3}  quarantined {:>3} (streak {})",
            p.cloud.as_str(),
            p.state.to_string(),
            p.consecutive_failures,
            p.times_opened,
            p.batches_absorbed,
            p.batches_quarantined,
            p.quarantined_streak,
        );
    }
    println!(
        "  {} incident(s), {} batch(es) quarantined, degraded: {}",
        health.incident_count,
        health.quarantined_batches,
        if health.degraded { "yes" } else { "no" }
    );
    if !incidents.is_empty() {
        println!("\nIncident log:");
        for i in &incidents {
            println!(
                "  #{:<3} {:<12} {:?}: {}",
                i.seq,
                i.cloud.as_str(),
                i.category,
                i.detail
            );
        }
    }
    Ok(health.degraded)
}

/// Renders a [`RecoveryReport`] as a short human-readable block.
fn print_recovery_summary(report: &RecoveryReport) {
    println!(
        "recovered state from {}: epoch {}, {} record(s) replayed ({} skipped by snapshot, {} quarantined, {} malformed)",
        report.state_dir,
        report.epoch,
        report.replayed,
        report.skipped_by_snapshot,
        report.quarantined,
        report.malformed,
    );
    if report.snapshot_used {
        println!(
            "  snapshot at epoch {} accelerated replay",
            report.snapshot_epoch
        );
    }
    if let Some(truncation) = &report.truncation {
        println!(
            "  journal tail discarded at byte {}: {}{}",
            truncation.offset,
            truncation.reason,
            if report.repaired {
                " (file repaired to valid prefix)"
            } else {
                " (dry run; file untouched)"
            }
        );
    }
}

/// `brokerctl recover`: replay a state directory and report what
/// recovery found. With `--verify` the journal file is left untouched
/// (dry run); without it, a torn tail is physically repaired and
/// `--compact` folds the journal into a fresh snapshot. `--disk-chaos
/// SEED` first injects a seeded disk fault into the state directory to
/// prove recovery stays safe under corruption. Returns whether the
/// recovered state was degraded (truncation, quarantined or malformed
/// records) — mapped to exit code 3.
fn recover_command(
    hybrid: bool,
    json: bool,
    verify: bool,
    compact: bool,
    disk_chaos: Option<u64>,
    dir: &str,
) -> Result<bool, Box<dyn std::error::Error>> {
    if let Some(seed) = disk_chaos {
        let state_dir = StateDir::create(dir)?;
        let fault = DiskChaos::new(seed).mangle(&state_dir)?;
        eprintln!("injected disk fault `{fault}` (seed {seed}) into {dir}");
    }
    let broker = BrokerService::new(catalog(hybrid));
    let report = if verify {
        broker.verify_recovery(Path::new(dir))?
    } else {
        let (broker, report) = broker.with_durability(DurabilityConfig::new(dir))?;
        if compact {
            broker.compact_state()?;
            eprintln!("journal compacted into snapshot");
        }
        report
    };
    let degraded = report.truncation.is_some() || report.quarantined > 0 || report.malformed > 0;
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        print_recovery_summary(&report);
        println!(
            "  verdict: {}",
            if degraded {
                "degraded (exit 3)"
            } else {
                "clean"
            }
        );
    }
    Ok(degraded)
}

/// Drives an instrumented recommend+sync run — simulated providers,
/// telemetry sync rounds, then a full recommendation — and exports the
/// live metrics snapshot as JSON (default) or Prometheus text format.
fn obs_command(
    hybrid: bool,
    prom: bool,
    chaos: bool,
    watch: Option<u64>,
    iters: u64,
    seed_arg: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = seed_arg.map_or(Ok(7), str::parse)?;
    let store = catalog(hybrid);
    let registry = Arc::new(uptime_obs::MetricsRegistry::new());
    let broker = BrokerService::new(store.clone()).with_recorder(registry.clone());
    let components = register_simulated_providers(&broker, &store, chaos, seed);
    drive_sync_rounds(&broker, &components, seed);

    let request = SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(case_study::SLA_PERCENT)?
        .penalty_per_hour(case_study::PENALTY_PER_HOUR)?
        .build()?;
    let _ = broker.recommend(&request)?;

    let Some(interval) = watch else {
        let snapshot = registry.snapshot();
        if prom {
            print!("{}", uptime_obs::export::to_prometheus(&snapshot));
        } else {
            println!("{}", uptime_obs::export::to_json(&snapshot));
        }
        return Ok(());
    };

    // Watch mode: keep driving work and print what *moved* each tick as a
    // JSON line of counter deltas — the diffing layer over
    // `MetricsSnapshot` that turns cumulative counters into rates.
    // --iters 0 watches forever.
    let mut previous = registry.snapshot();
    let mut tick: u64 = 0;
    loop {
        tick += 1;
        std::thread::sleep(std::time::Duration::from_secs(interval));
        for (cloud, kinds) in &components {
            for (k, kind) in kinds.iter().enumerate() {
                let _ = broker.sync_telemetry(cloud, *kind, 20, 5.0, seed + tick * 131 + k as u64);
            }
        }
        let _ = broker.recommend(&request)?;
        let snapshot = registry.snapshot();
        let deltas: serde_json::Map = snapshot
            .counter_deltas(&previous)
            .into_iter()
            .map(|(name, delta)| (name, serde_json::json!(delta)))
            .collect();
        println!(
            "{}",
            serde_json::json!({
                "tick": tick,
                "interval_secs": interval,
                "deltas": serde_json::Value::Object(deltas),
            })
        );
        previous = snapshot;
        if iters > 0 && tick >= iters {
            return Ok(());
        }
    }
}

/// Default daemon address for the `trace` client (matches `serve`).
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7411";

/// Pulls traces from a running daemon's `traces` endpoint and renders a
/// span tree (default), the raw export JSON (`--json`), or Chrome
/// `trace_event` JSON (`--chrome`, loadable in `chrome://tracing` /
/// Perfetto).
fn trace_command(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use std::io::{BufRead, BufReader, Write};

    let mut addr = DEFAULT_SERVE_ADDR.to_owned();
    let mut slowest: Option<u64> = None;
    let mut errors = false;
    let mut raw_json = false;
    let mut chrome = false;
    let mut iter = args.iter().map(String::as_str).skip(1);
    while let Some(arg) = iter.next() {
        match arg {
            "--addr" => addr = iter.next().ok_or("--addr needs HOST:PORT")?.to_owned(),
            "--slowest" => {
                slowest = Some(iter.next().ok_or("--slowest needs a count")?.parse()?);
            }
            "--errors" => errors = true,
            "--json" => raw_json = true,
            "--chrome" => chrome = true,
            other => return Err(format!("trace: unknown argument `{other}`").into()),
        }
    }
    if raw_json && chrome {
        return Err("trace: --json and --chrome are mutually exclusive".into());
    }

    let mut body = serde_json::Map::new();
    if let Some(n) = slowest {
        body.insert("slowest".into(), serde_json::json!(n));
    }
    if errors {
        body.insert("errors".into(), serde_json::json!(true));
    }
    body.insert(
        "format".into(),
        serde_json::json!(if chrome { "chrome" } else { "json" }),
    );
    let frame = serde_json::json!({
        "id": 1,
        "endpoint": "traces",
        "body": serde_json::Value::Object(body),
    });

    let stream = std::net::TcpStream::connect(&addr)
        .map_err(|e| format!("trace: cannot reach daemon at {addr}: {e}"))?;
    let mut writer = stream.try_clone()?;
    let mut request = serde_json::to_string(&frame)?;
    request.push('\n');
    writer.write_all(request.as_bytes())?;
    writer.flush()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    let response: serde_json::Value = serde_json::from_str(line.trim())
        .map_err(|e| format!("trace: malformed response frame: {e}"))?;
    if response.get("status").and_then(serde_json::Value::as_str) != Some("ok") {
        let detail = response
            .get("error")
            .and_then(serde_json::Value::as_str)
            .unwrap_or("unknown daemon error");
        return Err(format!("trace: daemon refused: {detail}").into());
    }
    let body = response.get("body").ok_or("trace: response missing body")?;
    if raw_json || chrome {
        println!("{}", serde_json::to_string_pretty(body)?);
        return Ok(());
    }
    print_trace_trees(body)
}

/// Renders the `traces` export as indented span trees with durations and
/// attributes, newest trace first (the order the daemon returns).
fn print_trace_trees(body: &serde_json::Value) -> Result<(), Box<dyn std::error::Error>> {
    let as_u64 = |v: &serde_json::Value, key: &str| v.get(key).and_then(serde_json::Value::as_u64);
    let as_str = |v: &'_ serde_json::Value, key: &str| {
        v.get(key)
            .and_then(serde_json::Value::as_str)
            .unwrap_or("?")
            .to_owned()
    };

    let recorder = body
        .get("recorder")
        .ok_or("trace: export missing `recorder` section")?;
    println!(
        "flight recorder: occupancy {}/{}  completed {}  recorded {}  sampled_out {}  evicted {}  unwound {}",
        as_u64(recorder, "occupancy").unwrap_or(0),
        as_u64(recorder, "capacity").unwrap_or(0),
        as_u64(recorder, "completed").unwrap_or(0),
        as_u64(recorder, "recorded").unwrap_or(0),
        as_u64(recorder, "sampled_out").unwrap_or(0),
        as_u64(recorder, "evicted").unwrap_or(0),
        as_u64(recorder, "unwound").unwrap_or(0),
    );
    let traces = body
        .get("traces")
        .and_then(serde_json::Value::as_array)
        .ok_or("trace: export missing `traces` array")?;
    if traces.is_empty() {
        println!("no traces recorded yet");
        return Ok(());
    }
    for trace in traces {
        println!(
            "\ntrace {} #{} endpoint={} outcome={} total={:.3}ms kept={}",
            as_str(trace, "trace_id"),
            as_u64(trace, "seq").unwrap_or(0),
            as_str(trace, "endpoint"),
            as_str(trace, "outcome"),
            as_u64(trace, "total_ns").unwrap_or(0) as f64 / 1e6,
            as_str(trace, "kept_because"),
        );
        let Some(spans) = trace.get("spans").and_then(serde_json::Value::as_array) else {
            continue;
        };
        // Spans carry parent ids; recover the tree by walking children in
        // recorded (start) order from each root.
        let mut children: Vec<(u64, usize)> = Vec::with_capacity(spans.len());
        for (idx, span) in spans.iter().enumerate() {
            children.push((as_u64(span, "parent").unwrap_or(0), idx));
        }
        let mut stack: Vec<(u64, usize)> = Vec::new();
        for &(parent, idx) in children.iter().filter(|(p, _)| *p == 0).rev() {
            stack.push((parent, idx));
        }
        let mut emitted = 0usize;
        while let Some((depth_key, idx)) = stack.pop() {
            let span = &spans[idx];
            let depth = usize::try_from(depth_key).unwrap_or(0);
            let mut attrs = String::new();
            if let Some(map) = span.get("attrs").and_then(serde_json::Value::as_object) {
                for (key, value) in map.iter() {
                    attrs.push_str(&format!("  {key}={value}"));
                }
            }
            println!(
                "  {:indent$}{} {:.3}ms{}",
                "",
                as_str(span, "name"),
                as_u64(span, "duration_ns").unwrap_or(0) as f64 / 1e6,
                attrs,
                indent = depth * 2,
            );
            emitted += 1;
            let id = as_u64(span, "id").unwrap_or(0);
            for &(parent, child_idx) in children.iter().filter(|(p, _)| *p == id).rev() {
                let _ = parent;
                stack.push((depth_key + 1, child_idx));
            }
        }
        if emitted < spans.len() {
            println!(
                "  ({} span(s) detached from the tree)",
                spans.len() - emitted
            );
        }
    }
    Ok(())
}

fn settle_command(positional: &[&str]) -> Result<(), Box<dyn std::error::Error>> {
    let months: u32 = positional.first().ok_or("settle needs MONTHS")?.parse()?;
    let seed: u64 = positional.get(1).map_or(Ok(7), |s| s.parse())?;

    // The case-study optimum (option #3): storage RAID-1 only.
    let store = case_study::catalog();
    let cloud = case_study::cloud_id();
    let clusters = vec![
        store.cluster_spec(&cloud, ComponentKind::Compute, &"none-compute".into())?,
        store.cluster_spec(&cloud, ComponentKind::Storage, &"raid1".into())?,
        store.cluster_spec(
            &cloud,
            ComponentKind::NetworkGateway,
            &"none-network-gateway".into(),
        )?,
    ];
    let system = SystemSpec::new(clusters)?;
    let model = case_study::tco_model();
    let ha_cost = store.quote(&cloud, &"raid1".into())?.total();
    let report = settlement::settle(&system, &model, ha_cost, months, seed)?;

    println!("Settled {months} months of option #3 (RAID-1 only), seed {seed}:");
    println!(
        "  expected TCO (Eq. 5):   ${:>8.0}/mo",
        report.expected_tco().value()
    );
    println!(
        "  mean realized TCO:      ${:>8.0}/mo",
        report.mean_realized_tco().value()
    );
    println!("  Jensen gap:             ${:>8.0}/mo", report.jensen_gap());
    println!(
        "  months in breach:        {:>3} of {months}",
        report.months_in_breach()
    );
    println!(
        "  penalty p50 / p95:      ${:.0} / ${:.0}",
        report.penalty_percentile(50.0).value(),
        report.penalty_percentile(95.0).value()
    );
    Ok(())
}
