//! Penalty settlement: expected TCO (Eq. 5) vs realized payouts.
//!
//! Eq. 5 prices the *expected* slippage: `max(0, U_SLA − U_s) × 730 × SP`.
//! Real contracts settle month by month on *realized* downtime, and the
//! penalty function is convex (the `max(0, ·)` hinge plus hour ceiling),
//! so by Jensen's inequality the mean realized payout is **at least** the
//! payout of the mean — an under-pricing the paper's formula inherits.
//! This module simulates a multi-month contract, bills each month the way
//! the contract would, and reports the gap (experiment S1 in
//! EXPERIMENTS.md).

use serde::{Deserialize, Serialize};
use uptime_core::{MoneyPerMonth, SystemSpec, TcoModel, HOURS_PER_MONTH};
use uptime_sim::{SimConfig, SimDuration, SimTime, Simulation};

use crate::error::BrokerError;

/// One settled contract month.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonthlyStatement {
    /// Month index (0-based).
    pub month: u32,
    /// Observed downtime hours within the month.
    pub downtime_hours: f64,
    /// Billable slippage hours beyond the SLA allowance, after rounding.
    pub billed_slippage_hours: f64,
    /// The month's penalty payout.
    pub penalty: MoneyPerMonth,
}

/// A settled contract: per-month statements plus aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SettlementReport {
    statements: Vec<MonthlyStatement>,
    ha_cost: MoneyPerMonth,
    expected_tco: MoneyPerMonth,
}

impl SettlementReport {
    /// Per-month statements.
    #[must_use]
    pub fn statements(&self) -> &[MonthlyStatement] {
        &self.statements
    }

    /// Months that incurred a penalty.
    #[must_use]
    pub fn months_in_breach(&self) -> usize {
        self.statements
            .iter()
            .filter(|s| s.penalty.value() > 0.0)
            .count()
    }

    /// Mean realized monthly TCO: `C_HA` + mean realized penalty.
    #[must_use]
    pub fn mean_realized_tco(&self) -> MoneyPerMonth {
        let n = self.statements.len().max(1) as f64;
        let mean_penalty: f64 = self
            .statements
            .iter()
            .map(|s| s.penalty.value())
            .sum::<f64>()
            / n;
        self.ha_cost + MoneyPerMonth::new(mean_penalty).expect("mean of non-negative penalties")
    }

    /// The Eq. 5 expected TCO this contract was priced at.
    #[must_use]
    pub fn expected_tco(&self) -> MoneyPerMonth {
        self.expected_tco
    }

    /// Realized-minus-expected gap (the Jensen premium); positive when
    /// Eq. 5 under-prices the contract.
    #[must_use]
    pub fn jensen_gap(&self) -> f64 {
        self.mean_realized_tco().value() - self.expected_tco.value()
    }

    /// The realized penalty's given percentile (nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not within `(0, 100]`.
    #[must_use]
    pub fn penalty_percentile(&self, pct: f64) -> MoneyPerMonth {
        assert!(pct > 0.0 && pct <= 100.0, "percentile must be in (0, 100]");
        let mut penalties: Vec<f64> = self.statements.iter().map(|s| s.penalty.value()).collect();
        penalties.sort_by(|a, b| a.partial_cmp(b).expect("penalties are finite"));
        if penalties.is_empty() {
            return MoneyPerMonth::ZERO;
        }
        let rank = ((pct / 100.0) * penalties.len() as f64).ceil() as usize;
        MoneyPerMonth::new(penalties[rank.clamp(1, penalties.len()) - 1]).expect("non-negative")
    }
}

/// Simulates `months` contiguous contract months of `system` under the
/// contract `model`, billing each month on realized downtime.
///
/// # Errors
///
/// Propagates simulation configuration failures; rejects zero-month
/// contracts via [`BrokerError::InvalidRequest`].
///
/// # Examples
///
/// ```
/// use uptime_broker::settlement::settle;
/// use uptime_catalog::case_study;
/// use uptime_core::{ClusterSpec, MoneyPerMonth, Probability, SystemSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = SystemSpec::builder()
///     .cluster(ClusterSpec::singleton("web", Probability::new(0.02)?, 2.0)?)
///     .build()?;
/// let report = settle(&system, &case_study::tco_model(), MoneyPerMonth::ZERO, 24, 7)?;
/// assert_eq!(report.statements().len(), 24);
/// # Ok(())
/// # }
/// ```
pub fn settle(
    system: &SystemSpec,
    model: &TcoModel,
    ha_cost: MoneyPerMonth,
    months: u32,
    seed: u64,
) -> Result<SettlementReport, BrokerError> {
    if months == 0 {
        return Err(BrokerError::InvalidRequest {
            reason: "a settlement needs at least one month".into(),
        });
    }
    let month_minutes = HOURS_PER_MONTH * 60.0;
    let horizon = SimDuration::from_minutes(month_minutes * f64::from(months));
    let (_, _, outages) = Simulation::new(
        system,
        SimConfig::horizon(horizon)
            .with_seed(seed)
            .with_outage_log(),
    )
    .map_err(BrokerError::from)?
    .run_full();
    let outages = outages.expect("outage log requested");

    let allowed_hours = (1.0 - model.sla().target().value()) * HOURS_PER_MONTH;
    let statements = (0..months)
        .map(|month| {
            let start = SimTime::from_minutes(month_minutes * f64::from(month));
            let end = SimTime::from_minutes(month_minutes * f64::from(month + 1));
            let downtime_hours = outages.downtime_within(start, end).as_minutes() / 60.0;
            let raw_slippage = (downtime_hours - allowed_hours).max(0.0);
            let billed = model.rounding().apply(raw_slippage);
            let penalty = model.penalty().charge(billed);
            MonthlyStatement {
                month,
                downtime_hours,
                billed_slippage_hours: billed,
                penalty,
            }
        })
        .collect();

    let expected_tco = model
        .evaluate(ha_cost, system.uptime().availability())
        .total();
    Ok(SettlementReport {
        statements,
        ha_cost,
        expected_tco,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_catalog::case_study;
    use uptime_core::{ClusterSpec, Probability};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn paper_option1() -> SystemSpec {
        SystemSpec::builder()
            .cluster(ClusterSpec::singleton("compute", p(0.01), 1.0).unwrap())
            .cluster(ClusterSpec::singleton("storage", p(0.05), 2.0).unwrap())
            .cluster(ClusterSpec::singleton("network", p(0.02), 1.0).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn zero_months_rejected() {
        let err = settle(
            &paper_option1(),
            &case_study::tco_model(),
            MoneyPerMonth::ZERO,
            0,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, BrokerError::InvalidRequest { .. }));
    }

    #[test]
    fn statement_count_and_determinism() {
        let a = settle(
            &paper_option1(),
            &case_study::tco_model(),
            MoneyPerMonth::ZERO,
            36,
            5,
        )
        .unwrap();
        let b = settle(
            &paper_option1(),
            &case_study::tco_model(),
            MoneyPerMonth::ZERO,
            36,
            5,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.statements().len(), 36);
        for (i, s) in a.statements().iter().enumerate() {
            assert_eq!(s.month as usize, i);
            assert!(s.downtime_hours >= 0.0);
        }
    }

    #[test]
    fn option1_realized_penalties_are_spiky_but_mean_tracks_eq5() {
        // 92.17 % uptime vs a 98 % SLA: Eq. 5 prices ≈ 43 slippage
        // hours/month. Realized downtime is dominated by multi-day repair
        // times (MTTR 3.5–9 days), so most months are clean and a few are
        // catastrophic — the hinge's convexity makes the realized mean at
        // least the expected value (Jensen), not equal per month.
        let report = settle(
            &paper_option1(),
            &case_study::tco_model(),
            MoneyPerMonth::ZERO,
            120,
            9,
        )
        .unwrap();
        let breached = report.months_in_breach();
        assert!(
            (10..=70).contains(&breached),
            "breached {breached} of 120 — expected a spiky minority"
        );
        // The median month pays nothing; the tail pays a lot.
        assert_eq!(report.penalty_percentile(50.0), MoneyPerMonth::ZERO);
        assert!(report.penalty_percentile(95.0).value() > 4300.0);
        // Mean realized TCO is within sampling noise of — and by Jensen at
        // least near — Eq. 5's $4300.
        let realized = report.mean_realized_tco().value();
        assert!(
            realized > 3000.0 && realized < 9000.0,
            "realized {realized} implausibly far from expected 4300"
        );
        assert!(report.jensen_gap() > -1500.0);
    }

    #[test]
    fn jensen_gap_positive_near_the_sla_boundary() {
        // A system sitting just above the SLA: Eq. 5 charges zero penalty,
        // but realized months fluctuate below the target and get billed.
        let system = SystemSpec::builder()
            .cluster(ClusterSpec::singleton("web", p(0.012), 6.0).unwrap())
            .build()
            .unwrap();
        // Analytic uptime 98.8 % ≥ 98 %: expected penalty 0.
        let model = case_study::tco_model();
        let expected = model
            .evaluate(MoneyPerMonth::ZERO, system.uptime().availability())
            .total();
        assert_eq!(expected.value(), 0.0);

        let report = settle(&system, &model, MoneyPerMonth::ZERO, 120, 13).unwrap();
        assert!(
            report.jensen_gap() > 0.0,
            "realized mean {} must exceed expected {}",
            report.mean_realized_tco(),
            report.expected_tco()
        );
        assert!(report.months_in_breach() > 0);
    }

    #[test]
    fn reliable_system_rarely_pays() {
        let system = SystemSpec::builder()
            .cluster(ClusterSpec::singleton("solid", p(0.001), 0.5).unwrap())
            .build()
            .unwrap();
        let report = settle(
            &system,
            &case_study::tco_model(),
            MoneyPerMonth::new(100.0).unwrap(),
            60,
            3,
        )
        .unwrap();
        assert!(report.months_in_breach() < 10);
        assert!(report.mean_realized_tco().value() < 400.0);
        assert_eq!(report.penalty_percentile(50.0), MoneyPerMonth::ZERO);
    }

    #[test]
    fn percentile_bounds() {
        let report = settle(
            &paper_option1(),
            &case_study::tco_model(),
            MoneyPerMonth::ZERO,
            24,
            2,
        )
        .unwrap();
        let p50 = report.penalty_percentile(50.0);
        let p95 = report.penalty_percentile(95.0);
        assert!(p50 <= p95);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn invalid_percentile_panics() {
        let report = settle(
            &paper_option1(),
            &case_study::tco_model(),
            MoneyPerMonth::ZERO,
            2,
            2,
        )
        .unwrap();
        let _ = report.penalty_percentile(0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let report = settle(
            &paper_option1(),
            &case_study::tco_model(),
            MoneyPerMonth::ZERO,
            6,
            1,
        )
        .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: SettlementReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
