//! Recommendation auditing: does the recommended architecture actually
//! deliver its modeled uptime?
//!
//! The paper's model was evaluated analytically only. The audit closes the
//! loop: rebuild the recommended system's [`SystemSpec`], simulate it for
//! many independent trial-years, and check the observed availability
//! brackets the analytic prediction — a guardrail a production broker
//! would run before attaching a financial penalty to a promise.

use serde::{Deserialize, Serialize};
use uptime_core::{Probability, SystemSpec};
use uptime_sim::{MonteCarloEstimate, MonteCarloRunner};

use crate::error::BrokerError;

/// The result of auditing one architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    analytic: Probability,
    estimate: MonteCarloEstimate,
    sigmas: f64,
}

impl AuditReport {
    /// The analytic `U_s` from Eqs. 1–4.
    #[must_use]
    pub fn analytic(&self) -> Probability {
        self.analytic
    }

    /// The Monte-Carlo observation.
    #[must_use]
    pub fn estimate(&self) -> &MonteCarloEstimate {
        &self.estimate
    }

    /// Whether the analytic prediction is within the tolerance band of the
    /// observation.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.estimate.agrees_with(self.analytic, self.sigmas)
    }

    /// Gap between observation and prediction, in percentage points.
    #[must_use]
    pub fn gap_percent_points(&self) -> f64 {
        (self.estimate.mean().value() - self.analytic.value()).abs() * 100.0
    }
}

/// Audits a system: simulate `trials × years_per_trial` and compare with
/// the analytic model at a `sigmas`-standard-error tolerance.
///
/// # Errors
///
/// Propagates simulation configuration errors.
///
/// # Examples
///
/// ```
/// use uptime_broker::audit_recommendation;
/// use uptime_core::{ClusterSpec, Probability, SystemSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = SystemSpec::builder()
///     .cluster(ClusterSpec::singleton("web", Probability::new(0.02)?, 2.0)?)
///     .build()?;
/// let report = audit_recommendation(&system, 16, 20.0, 4.0, 7)?;
/// assert!(report.passes());
/// # Ok(())
/// # }
/// ```
pub fn audit_recommendation(
    system: &SystemSpec,
    trials: u32,
    years_per_trial: f64,
    sigmas: f64,
    seed: u64,
) -> Result<AuditReport, BrokerError> {
    let analytic = system.uptime().availability();
    let estimate = MonteCarloRunner::new(system.clone())
        .trials(trials)
        .years_per_trial(years_per_trial)
        .base_seed(seed)
        .run()?;
    Ok(AuditReport {
        analytic,
        estimate,
        sigmas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_core::{ClusterSpec, FailuresPerYear, Minutes};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// Paper option #5: compute singleton, RAID-1 storage, dual gateway.
    fn option5_system() -> SystemSpec {
        SystemSpec::builder()
            .cluster(ClusterSpec::singleton("compute", p(0.01), 1.0).unwrap())
            .cluster(
                ClusterSpec::builder("storage")
                    .total_nodes(2)
                    .standby_budget(1)
                    .node_down_probability(p(0.05))
                    .failures_per_year(FailuresPerYear::new(2.0).unwrap())
                    .failover_time(Minutes::from_seconds(30.0).unwrap())
                    .build()
                    .unwrap(),
            )
            .cluster(
                ClusterSpec::builder("network")
                    .total_nodes(2)
                    .standby_budget(1)
                    .node_down_probability(p(0.02))
                    .failures_per_year(FailuresPerYear::new(1.0).unwrap())
                    .failover_time(Minutes::new(1.0).unwrap())
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn audit_of_paper_option5_passes() {
        let system = option5_system();
        let report = audit_recommendation(&system, 24, 25.0, 4.0, 11).unwrap();
        assert!(
            report.passes(),
            "analytic {} vs observed {} (se {})",
            report.analytic(),
            report.estimate().mean(),
            report.estimate().std_error()
        );
        assert!((report.analytic().as_percent() - 98.71).abs() < 0.01);
        assert!(report.gap_percent_points() < 0.5);
    }

    #[test]
    fn audit_detects_wrong_prediction() {
        // Hand the audit a system whose analytic uptime is far from a fake
        // claim by constructing the report directly.
        let system = option5_system();
        let estimate = MonteCarloRunner::new(system)
            .trials(16)
            .years_per_trial(10.0)
            .base_seed(3)
            .run()
            .unwrap();
        let bogus = AuditReport {
            analytic: p(0.90), // truly ~0.987
            estimate,
            sigmas: 4.0,
        };
        assert!(!bogus.passes());
        assert!(bogus.gap_percent_points() > 5.0);
    }

    #[test]
    fn audit_propagates_sim_errors() {
        let system = option5_system();
        let err = audit_recommendation(&system, 0, 10.0, 3.0, 1).unwrap_err();
        assert!(matches!(err, BrokerError::Sim(_)));
    }

    #[test]
    fn serde_roundtrip() {
        let report = audit_recommendation(&option5_system(), 4, 2.0, 3.0, 1).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
