//! # uptime-broker
//!
//! The paper's framework realized "as-a-service by a cloud broker"
//! (Fig. 2): given a base architecture, an uptime SLA and a slippage
//! penalty, the broker models **all** HA-enabled permutations of the
//! architecture on every cloud it fronts, prices each one, and recommends
//! the minimum-TCO deployment.
//!
//! The crate wires together the whole pipeline:
//!
//! * [`provider`] — the [`CloudProvider`] trait plus [`SimulatedProvider`],
//!   a stand-in for real IaaS APIs that provisions in memory and emits
//!   telemetry by running the discrete-event simulator against
//!   ground-truth failure dynamics (the substitution documented in
//!   DESIGN.md).
//! * [`telemetry`] — estimators that reconstruct `P̂_i`, `f̂_i`, `t̂_i`
//!   from harvested traces, feeding the broker's knowledge base.
//! * [`service`] — [`BrokerService`]: intake → search → recommendation.
//! * [`slo`] — declarative SLO intake ([`FrontierRequest`]): hard and
//!   weighted-soft objectives answered with the exact feasible Pareto
//!   frontier per cloud ([`FrontierReport`]).
//! * [`resilience`] — [`RetryPolicy`] and per-provider [`CircuitBreaker`]
//!   guarding every provider call, over a deterministic virtual clock.
//! * [`chaos`] — [`ChaosProvider`], a seeded fault-injecting decorator
//!   for exercising the control plane under provider misbehavior.
//! * [`serving`] — [`ServingBroker`], the backend that plugs the service
//!   into the `uptime-serve` daemon (epoch-keyed caching, coalescing,
//!   admission control; `brokerctl serve` is the CLI entry point).
//! * [`report`] — renders the paper's Figs. 4–10 as text tables and JSON.
//! * [`planner`] — turns a recommendation into provisioning steps.
//! * [`audit`] — Monte-Carlo validation that a recommended architecture
//!   delivers its modeled uptime.
//!
//! # End-to-end example
//!
//! ```
//! use uptime_broker::{BrokerService, SolutionRequest};
//! use uptime_catalog::{case_study, ComponentKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let broker = BrokerService::new(case_study::catalog());
//! let request = SolutionRequest::builder()
//!     .tiers(ComponentKind::paper_tiers())
//!     .sla_percent(98.0)?
//!     .penalty_per_hour(100.0)?
//!     .cloud(case_study::cloud_id())
//!     .build()?;
//! let recommendation = broker.recommend(&request)?;
//! let best = recommendation.best().expect("non-empty catalog");
//! assert_eq!(best.evaluation().tco().total().value(), 1250.0); // option #3
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod chaos;
pub mod durability;
pub mod error;
pub mod metacloud;
pub mod planner;
pub mod provider;
pub mod recommendation;
pub mod report;
pub mod request;
pub mod resilience;
pub mod service;
pub mod serving;
pub mod settlement;
pub mod slo;
pub mod telemetry;
pub mod whatif;

pub use audit::{audit_recommendation, AuditReport};
pub use chaos::{ChaosConfig, ChaosProvider, ChaosStats};
pub use durability::{
    DurabilityConfig, JournalEntry, PersistentState, RecoveryReport, ReportedTruncation,
    JOURNAL_SCHEMA_VERSION, SNAPSHOT_SCHEMA_VERSION,
};
pub use error::BrokerError;
pub use metacloud::{MetacloudRecommendation, Placement};
pub use planner::{DeploymentPlan, ProvisionStep};
pub use provider::{
    CloudProvider, DeploymentHandle, GroundTruth, ProviderTelemetry, SimulatedProvider,
};
pub use recommendation::{CloudRecommendation, DegradedMode, RankedOption, Recommendation};
pub use request::{SolutionRequest, SolutionRequestBuilder};
pub use resilience::{BreakerState, CircuitBreaker, RetryOutcome, RetryPolicy};
pub use service::{
    BrokerHealth, BrokerService, Incident, IncidentCategory, ProviderHealth, SearchEngine,
    DEFAULT_INCIDENT_CAPACITY,
};
pub use serving::{
    canonical_fingerprint, frontier_fingerprint, ServingBroker, HEALTH_SCHEMA_VERSION,
};
pub use settlement::{settle, MonthlyStatement, SettlementReport};
pub use slo::{
    CloudFrontier, FrontierPoint, FrontierReport, FrontierRequest, FRONTIER_SCHEMA_VERSION,
};
pub use telemetry::{validate_batch, EstimatedParameters, QuarantinePolicy, TelemetryEstimator};
pub use whatif::UptimeBounds;
