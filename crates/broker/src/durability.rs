//! Broker-side durability wiring: what goes into the journal and the
//! snapshot, and what a recovery reports.
//!
//! The byte-level machinery (record codec, append-only file, atomic
//! snapshots, disk-fault injection) lives in `uptime-durability`; this
//! module defines the broker's persistent payloads and the
//! [`RecoveryReport`] surfaced by `brokerctl recover`. The orchestration
//! (write-ahead hook on the absorb path, replay through the quarantine
//! pipeline, epoch-floor restoration) is implemented on `BrokerService`
//! in `service.rs`, where the locks live.

use std::path::PathBuf;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use uptime_catalog::{CatalogStore, CloudId, ComponentKind};
use uptime_durability::{FsyncPolicy, Journal, SnapshotStore};

use uptime_catalog::ReliabilityRecord;

use crate::service::Incident;
use crate::telemetry::EstimatedParameters;

/// Version stamped into every journal record payload.
pub const JOURNAL_SCHEMA_VERSION: u32 = 1;

/// Version stamped into every snapshot payload.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Default absorbs between automatic snapshots.
///
/// Snapshots are purely a replay accelerator — the journal alone fully
/// recovers — and replaying a distilled entry costs single-digit
/// microseconds, so even this cadence bounds recovery's replay phase to
/// a couple of milliseconds. Taking one is the expensive part (a full
/// catalog serialize plus two atomic file writes on the absorb path),
/// which is why the default is generous rather than eager.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 1024;

/// How a [`crate::BrokerService`] persists its state.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding journal, snapshot, and manifest.
    pub state_dir: PathBuf,
    /// When journal appends fsync (default: [`FsyncPolicy::Os`] — the
    /// page cache survives process crashes, the threat model here).
    pub fsync: FsyncPolicy,
    /// Absorbs between automatic snapshots; `0` disables automatic
    /// snapshotting (the journal alone still fully recovers).
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Config with default fsync policy and snapshot cadence.
    #[must_use]
    pub fn new(state_dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            state_dir: state_dir.into(),
            fsync: FsyncPolicy::Os,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
        }
    }

    /// Overrides the fsync policy.
    #[must_use]
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> DurabilityConfig {
        self.fsync = fsync;
        self
    }

    /// Overrides the snapshot cadence (`0` = never snapshot).
    #[must_use]
    pub fn with_snapshot_every(mut self, every: u64) -> DurabilityConfig {
        self.snapshot_every = every;
        self
    }
}

/// One journal record: the *distilled* absorb, written *before* it
/// commits. The entry carries what the catalog actually changes by — the
/// merged estimate (for the replay-time plausibility gate) and the merged
/// reliability record (the exact value absorbed) — not the raw telemetry
/// trace. A trace is ~13 KB of JSON and costs more to serialize than the
/// whole absorb; the distilled entry is ~200 bytes, keeping write-ahead
/// cost at a few percent of the absorb path. Replay is bit-identical by
/// construction: every f64 round-trips exactly through the shortest-
/// round-trip JSON formatting, so re-absorbing `record` reproduces the
/// post-crash catalog to the bit.
///
/// Both fields are required: the live path folds per-cluster estimates in
/// a different order for the record (`to_reliability_record` then merge)
/// than for the estimate (merge then distill), so neither is derivable
/// from the other.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Record format version ([`JOURNAL_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The cloud the batch was harvested from.
    pub cloud: CloudId,
    /// The component tier the batch describes.
    pub kind: ComponentKind,
    /// The telemetry epoch the absorb will produce. Recovery raises the
    /// epoch floor to the last entry's value so serving caches keyed on
    /// pre-crash epochs can never validate against a recovered broker.
    pub epoch_after: u64,
    /// The merged estimate the batch produced — replayed through the
    /// plausibility gate exactly as the live batch was.
    pub estimate: EstimatedParameters,
    /// The merged reliability record the absorb committed to the catalog.
    pub record: ReliabilityRecord,
}

impl JournalEntry {
    /// Serializes to exactly the bytes `serde_json::to_string` would
    /// produce — sorted keys, shortest-round-trip float formatting,
    /// identical string escaping — without building the intermediate
    /// value tree. The absorb path journals every accepted batch, so
    /// encoding is absorb-path cost: the generic serializer spends ~3 µs
    /// allocating a tree for this ~300-byte entry, the direct writer
    /// ~0.3 µs. `encode_matches_generic_serializer` pins the equivalence
    /// so the two paths can never drift.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write;

        let mut out = String::with_capacity(352);
        out.push_str("{\"cloud\":");
        push_json_str(&mut out, self.cloud.as_str());
        let _ = write!(out, ",\"epoch_after\":{}", self.epoch_after);
        out.push_str(",\"estimate\":{\"down_probability\":");
        push_f64(&mut out, self.estimate.down_probability().value());
        out.push_str(",\"failover_time\":");
        match self.estimate.failover_time() {
            Some(minutes) => push_f64(&mut out, minutes.value()),
            None => out.push_str("null"),
        }
        out.push_str(",\"failures_per_year\":");
        push_f64(&mut out, self.estimate.failures_per_year().value());
        out.push_str(",\"node_years\":");
        push_f64(&mut out, self.estimate.node_years());
        let Some(kind) = kind_variant(self.kind) else {
            // A variant this encoder predates: take the slow generic
            // path rather than guess at its serialized name.
            return serde_json::to_string(self).expect("journal entry serializes");
        };
        out.push_str("},\"kind\":\"");
        out.push_str(kind);
        out.push_str("\",\"record\":{\"down_probability\":");
        push_f64(&mut out, self.record.down_probability().value());
        out.push_str(",\"failures_per_year\":");
        push_f64(&mut out, self.record.failures_per_year().value());
        out.push_str(",\"node_years_observed\":");
        push_f64(&mut out, self.record.node_years_observed());
        let _ = write!(out, "}},\"schema_version\":{}}}", self.schema_version);
        out
    }
}

/// The serde variant name for `kind` (not the kebab-case `label()`), or
/// `None` for a variant added after this encoder (`ComponentKind` is
/// non-exhaustive).
fn kind_variant(kind: ComponentKind) -> Option<&'static str> {
    Some(match kind {
        ComponentKind::Compute => "Compute",
        ComponentKind::Storage => "Storage",
        ComponentKind::NetworkGateway => "NetworkGateway",
        ComponentKind::Database => "Database",
        ComponentKind::LoadBalancer => "LoadBalancer",
        ComponentKind::Cache => "Cache",
        _ => return None,
    })
}

/// Appends `v` formatted as the generic serializer formats JSON numbers:
/// shortest-round-trip for finite values, `null` otherwise.
fn push_f64(out: &mut String, v: f64) {
    use std::fmt::Write;
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a JSON string literal with the same escapes the
/// generic serializer emits.
fn push_json_str(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The snapshot payload: everything `BrokerService` needs to come back
/// without replaying the whole journal. Provider registrations are *not*
/// here — providers are live objects re-registered at startup; breaker
/// state deliberately starts fresh (a restarted broker re-probes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PersistentState {
    /// Snapshot format version ([`SNAPSHOT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Telemetry epoch at capture time.
    pub epoch: u64,
    /// Next incident sequence number (monotonic across evictions).
    pub incident_next_seq: u64,
    /// The retained incident-ring entries, oldest first.
    pub incidents: Vec<Incident>,
    /// The knowledge base.
    pub catalog: CatalogStore,
}

/// Where and why journal replay stopped early.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ReportedTruncation {
    /// Byte offset of the first invalid record.
    pub offset: u64,
    /// Human-readable reason (torn header/payload, bad magic, …).
    pub reason: String,
}

/// What a recovery (or `recover --verify` dry run) did.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryReport {
    /// The state directory recovered from.
    pub state_dir: String,
    /// Whether a valid snapshot accelerated the replay.
    pub snapshot_used: bool,
    /// Epoch restored from the snapshot (0 without one).
    pub snapshot_epoch: u64,
    /// Bytes of valid journal prefix.
    pub journal_bytes: u64,
    /// Valid records decoded from the journal.
    pub journal_records: u64,
    /// Records skipped because the snapshot already covers them.
    pub skipped_by_snapshot: u64,
    /// Records replayed through the ingest/quarantine pipeline.
    pub replayed: u64,
    /// Replayed records the pipeline rejected (quarantined on replay).
    pub quarantined: u64,
    /// Checksum-valid records whose payload failed to parse.
    pub malformed: u64,
    /// Set when the journal tail was torn or corrupt.
    pub truncation: Option<ReportedTruncation>,
    /// Whether the journal file was physically truncated to the valid
    /// prefix (`false` for `--verify` dry runs).
    pub repaired: bool,
    /// Telemetry epoch after recovery (≥ the pre-crash epoch of every
    /// surviving record).
    pub epoch: u64,
    /// Incident-log total after recovery.
    pub incident_count: u64,
}

/// Live durability endpoint owned by a `BrokerService`.
pub(crate) struct DurabilityState {
    /// Absorbs between automatic snapshots (0 = never).
    pub(crate) snapshot_every: u64,
    pub(crate) inner: Mutex<DurabilityInner>,
}

pub(crate) struct DurabilityInner {
    pub(crate) journal: Journal,
    pub(crate) store: SnapshotStore,
    /// Appends since the last snapshot, driving the cadence.
    pub(crate) absorbs_since_snapshot: u64,
}

impl std::fmt::Debug for DurabilityState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityState")
            .field("snapshot_every", &self.snapshot_every)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use uptime_core::{FailuresPerYear, Minutes, Probability};

    use super::*;

    fn entry(
        cloud: &str,
        kind: ComponentKind,
        p: f64,
        f: f64,
        failover: Option<f64>,
        node_years: f64,
    ) -> JournalEntry {
        JournalEntry {
            schema_version: JOURNAL_SCHEMA_VERSION,
            cloud: CloudId::new(cloud),
            kind,
            epoch_after: 18_446_744_073_709_551_615,
            estimate: EstimatedParameters::from_parts(
                Probability::saturating(p),
                FailuresPerYear::new(f).unwrap(),
                failover.map(|m| Minutes::new(m).unwrap()),
                node_years,
            ),
            record: ReliabilityRecord::new(
                Probability::saturating(p / 2.0),
                FailuresPerYear::new(f * 3.0).unwrap(),
                node_years * 7.0,
            ),
        }
    }

    /// The fast absorb-path encoder must emit byte-identical JSON to the
    /// generic serializer — recovery deserializes with the latter, and
    /// bit-identity of replay rests on exact round-trips.
    #[test]
    fn encode_matches_generic_serializer() {
        let cases = [
            entry("aws", ComponentKind::Compute, 0.1 + 0.2, 1.5, None, 100.0),
            entry(
                "cl\"oud\\with\nweird\tchars\u{01}",
                ComponentKind::NetworkGateway,
                1.0,
                0.0,
                Some(12.75),
                0.0,
            ),
            entry(
                "g",
                ComponentKind::Storage,
                1e-300,
                8_000_000.0,
                Some(0.1),
                1e15,
            ),
            entry(
                "az",
                ComponentKind::Database,
                0.333_333_333_333_333_3,
                2.0,
                None,
                41.7,
            ),
            entry(
                "x",
                ComponentKind::LoadBalancer,
                0.0,
                123.456_789,
                Some(5.0),
                9.9,
            ),
            entry(
                "y",
                ComponentKind::Cache,
                0.999_999_999_999,
                0.001,
                None,
                0.25,
            ),
        ];
        for case in cases {
            let fast = case.to_json();
            let generic = serde_json::to_string(&case).unwrap();
            assert_eq!(fast, generic, "fast encoder drifted from serde");
            let back: JournalEntry = serde_json::from_str(&fast).unwrap();
            assert_eq!(back, case, "round-trip not lossless");
        }
    }
}
