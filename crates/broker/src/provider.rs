//! Cloud provider abstraction and the simulated provider.
//!
//! The paper's broker provisions onto real clouds (IBM SoftLayer in §III).
//! We have no cloud, so [`SimulatedProvider`] substitutes one: it accepts
//! provisioning calls, tracks deployments in memory, and emits telemetry
//! by running the discrete-event simulator against **ground-truth**
//! failure dynamics — which may differ from what the broker's catalog
//! believes, exactly the skew §IV worries about.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use uptime_catalog::{CloudId, ComponentKind};
use uptime_core::{ClusterSpec, FailuresPerYear, Probability, SystemSpec};
use uptime_sim::{SimConfig, SimDuration, Simulation, Trace};

use crate::error::BrokerError;
use crate::planner::DeploymentPlan;

/// Handle to a provisioned deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeploymentHandle(u64);

impl DeploymentHandle {
    /// The raw id.
    #[must_use]
    pub fn id(self) -> u64 {
        self.0
    }
}

/// A harvested batch of telemetry: the trace plus the observation frame
/// the estimators need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderTelemetry {
    /// The raw event trace.
    pub trace: Trace,
    /// Nodes covered per cluster in the trace.
    pub nodes_per_cluster: u32,
    /// Number of clusters covered.
    pub clusters: u32,
    /// Observation window.
    pub span: SimDuration,
}

/// A cloud the broker can provision onto and harvest telemetry from.
pub trait CloudProvider {
    /// The provider's cloud id.
    fn id(&self) -> &CloudId;

    /// Human-readable name.
    fn display_name(&self) -> &str;

    /// Executes a deployment plan, returning a handle.
    ///
    /// # Errors
    ///
    /// Implementations reject plans targeting a different cloud.
    fn provision(&mut self, plan: &DeploymentPlan) -> Result<DeploymentHandle, BrokerError>;

    /// Tears down a deployment. Returns `true` if the handle was live.
    fn deprovision(&mut self, handle: DeploymentHandle) -> bool;

    /// Currently live deployments.
    fn deployments(&self) -> Vec<DeploymentHandle>;

    /// Harvests telemetry for a fleet of unclustered nodes of one
    /// component kind — the raw material for `P̂` and `f̂`.
    ///
    /// # Errors
    ///
    /// Fails when the provider has no ground truth for `kind` or the
    /// simulation is misconfigured.
    fn harvest_component_telemetry(
        &self,
        kind: ComponentKind,
        fleet: u32,
        years: f64,
        seed: u64,
    ) -> Result<ProviderTelemetry, BrokerError>;

    /// Harvests telemetry for one clustered deployment — the raw material
    /// for `t̂`.
    ///
    /// # Errors
    ///
    /// Fails when the cluster spec is unusable for simulation.
    fn harvest_cluster_telemetry(
        &self,
        spec: &ClusterSpec,
        years: f64,
        seed: u64,
    ) -> Result<ProviderTelemetry, BrokerError>;
}

/// Ground-truth failure behaviour of one component kind on a simulated
/// cloud.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// True node down-probability.
    pub down_probability: Probability,
    /// True failures per node-year.
    pub failures_per_year: FailuresPerYear,
}

/// An in-memory cloud: provisioning ledger + simulator-backed telemetry.
#[derive(Debug, Clone)]
pub struct SimulatedProvider {
    id: CloudId,
    display_name: String,
    ground_truth: BTreeMap<ComponentKind, GroundTruth>,
    deployments: BTreeMap<u64, DeploymentPlan>,
    next_handle: u64,
}

impl SimulatedProvider {
    /// Creates a provider with no ground truth registered.
    pub fn new(id: impl Into<CloudId>, display_name: impl Into<String>) -> Self {
        SimulatedProvider {
            id: id.into(),
            display_name: display_name.into(),
            ground_truth: BTreeMap::new(),
            deployments: BTreeMap::new(),
            next_handle: 1,
        }
    }

    /// Registers the true failure behaviour of a component kind.
    #[must_use]
    pub fn with_ground_truth(mut self, kind: ComponentKind, truth: GroundTruth) -> Self {
        self.ground_truth.insert(kind, truth);
        self
    }

    /// The registered ground truth for a kind, if any.
    #[must_use]
    pub fn ground_truth(&self, kind: ComponentKind) -> Option<GroundTruth> {
        self.ground_truth.get(&kind).copied()
    }
}

impl CloudProvider for SimulatedProvider {
    fn id(&self) -> &CloudId {
        &self.id
    }

    fn display_name(&self) -> &str {
        &self.display_name
    }

    fn provision(&mut self, plan: &DeploymentPlan) -> Result<DeploymentHandle, BrokerError> {
        if plan.cloud() != &self.id {
            return Err(BrokerError::ProviderMismatch {
                plan_cloud: plan.cloud().clone(),
                provider_cloud: self.id.clone(),
            });
        }
        let handle = DeploymentHandle(self.next_handle);
        self.next_handle += 1;
        self.deployments.insert(handle.id(), plan.clone());
        Ok(handle)
    }

    fn deprovision(&mut self, handle: DeploymentHandle) -> bool {
        self.deployments.remove(&handle.id()).is_some()
    }

    fn deployments(&self) -> Vec<DeploymentHandle> {
        self.deployments
            .keys()
            .copied()
            .map(DeploymentHandle)
            .collect()
    }

    fn harvest_component_telemetry(
        &self,
        kind: ComponentKind,
        fleet: u32,
        years: f64,
        seed: u64,
    ) -> Result<ProviderTelemetry, BrokerError> {
        let truth = self
            .ground_truth
            .get(&kind)
            .ok_or_else(|| BrokerError::InvalidRequest {
                reason: format!("no ground truth for {kind} on {}", self.id),
            })?;
        let clusters: Vec<ClusterSpec> = (0..fleet.max(1))
            .map(|i| {
                ClusterSpec::singleton(
                    format!("{}-{i}", kind.label()),
                    truth.down_probability,
                    truth.failures_per_year.value(),
                )
            })
            .collect::<Result<_, _>>()?;
        let system = SystemSpec::new(clusters)?;
        let (_, trace) = Simulation::new(
            &system,
            SimConfig::years(years).with_seed(seed).with_trace(),
        )?
        .run_traced();
        Ok(ProviderTelemetry {
            trace,
            nodes_per_cluster: 1,
            clusters: fleet.max(1),
            span: SimDuration::from_minutes(years * uptime_core::MINUTES_PER_YEAR),
        })
    }

    fn harvest_cluster_telemetry(
        &self,
        spec: &ClusterSpec,
        years: f64,
        seed: u64,
    ) -> Result<ProviderTelemetry, BrokerError> {
        let system = SystemSpec::new(vec![spec.clone()])?;
        let (_, trace) = Simulation::new(
            &system,
            SimConfig::years(years).with_seed(seed).with_trace(),
        )?
        .run_traced();
        Ok(ProviderTelemetry {
            trace,
            nodes_per_cluster: spec.total_nodes(),
            clusters: 1,
            span: SimDuration::from_minutes(years * uptime_core::MINUTES_PER_YEAR),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::ProvisionStep;
    use uptime_catalog::HaMethodId;

    fn provider() -> SimulatedProvider {
        SimulatedProvider::new("softlayer", "IBM SoftLayer (simulated)").with_ground_truth(
            ComponentKind::Storage,
            GroundTruth {
                down_probability: Probability::new(0.05).unwrap(),
                failures_per_year: FailuresPerYear::new(2.0).unwrap(),
            },
        )
    }

    fn plan(cloud: &str) -> DeploymentPlan {
        DeploymentPlan::new(
            CloudId::new(cloud),
            vec![ProvisionStep::new(
                ComponentKind::Storage,
                HaMethodId::new("raid1"),
                "RAID 1",
                2,
            )],
        )
    }

    #[test]
    fn provision_and_deprovision() {
        let mut p = provider();
        let h1 = p.provision(&plan("softlayer")).unwrap();
        let h2 = p.provision(&plan("softlayer")).unwrap();
        assert_ne!(h1, h2);
        assert_eq!(p.deployments().len(), 2);
        assert!(p.deprovision(h1));
        assert!(!p.deprovision(h1), "double deprovision returns false");
        assert_eq!(p.deployments(), vec![h2]);
    }

    #[test]
    fn provision_rejects_wrong_cloud() {
        let mut p = provider();
        let err = p.provision(&plan("nimbus")).unwrap_err();
        assert!(matches!(err, BrokerError::ProviderMismatch { .. }));
    }

    #[test]
    fn component_telemetry_requires_ground_truth() {
        let p = provider();
        assert!(p
            .harvest_component_telemetry(ComponentKind::Compute, 5, 1.0, 1)
            .is_err());
        assert!(p.ground_truth(ComponentKind::Storage).is_some());
        assert!(p.ground_truth(ComponentKind::Compute).is_none());
    }

    #[test]
    fn component_telemetry_has_events() {
        let p = provider();
        let telemetry = p
            .harvest_component_telemetry(ComponentKind::Storage, 5, 10.0, 42)
            .unwrap();
        assert!(!telemetry.trace.is_empty());
        assert_eq!(telemetry.nodes_per_cluster, 1);
        assert_eq!(telemetry.clusters, 5);
        // Roughly 2 failures/yr × 5 nodes × 10 yr = 100 down events.
        let downs = telemetry
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, uptime_sim::TraceEventKind::NodeDown { .. }))
            .count();
        assert!((50..200).contains(&downs), "got {downs}");
    }

    #[test]
    fn cluster_telemetry_captures_failovers() {
        use uptime_core::Minutes;
        let p = provider();
        let spec = ClusterSpec::builder("storage")
            .total_nodes(2)
            .standby_budget(1)
            .node_down_probability(Probability::new(0.05).unwrap())
            .failures_per_year(FailuresPerYear::new(2.0).unwrap())
            .failover_time(Minutes::from_seconds(30.0).unwrap())
            .build()
            .unwrap();
        let telemetry = p.harvest_cluster_telemetry(&spec, 50.0, 7).unwrap();
        let starts = telemetry
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, uptime_sim::TraceEventKind::FailoverStart))
            .count();
        assert!(
            starts > 10,
            "expected failovers over 50 years, got {starts}"
        );
        assert_eq!(telemetry.nodes_per_cluster, 2);
    }

    #[test]
    fn zero_fleet_clamped_to_one() {
        let p = provider();
        let telemetry = p
            .harvest_component_telemetry(ComponentKind::Storage, 0, 1.0, 1)
            .unwrap();
        assert_eq!(telemetry.clusters, 1);
    }
}
