//! Report rendering: the paper's figures as text tables and JSON.

use std::fmt::Write as _;

use uptime_catalog::{CatalogStore, CloudId, ComponentKind};
use uptime_core::TcoModel;

use crate::error::BrokerError;
use crate::recommendation::{CloudRecommendation, RankedOption, Recommendation};

/// Renders one option as a Fig. 4–9-style per-component table.
#[must_use]
pub fn render_option_table(
    option: &RankedOption,
    tiers: &[ComponentKind],
    model: &TcoModel,
) -> String {
    let mut out = String::new();
    let tco = option.evaluation().tco();
    let uptime = option.evaluation().uptime().availability();
    let _ = writeln!(
        out,
        "Solution Option #{}: {}",
        option.option_number(),
        describe(option)
    );
    let _ = writeln!(
        out,
        "{:<18} {:<24} {:>14}",
        "Component", "Proposed HA method", "C_HA ($/mo)"
    );
    for ((kind, label), cost) in tiers.iter().zip(option.labels()).zip(option.tier_costs()) {
        let _ = writeln!(
            out,
            "{:<18} {:<24} {:>14.0}",
            kind.label(),
            label,
            cost.value()
        );
    }
    let _ = writeln!(
        out,
        "System uptime U_s = {:.2}% (target {:.0}%) | slippage {:.0} h/mo | HA ${:.0} + penalty ${:.0} = TCO ${:.0}/mo",
        uptime.as_percent(),
        model.sla().as_percent(),
        tco.billed_slippage_hours(),
        tco.ha_cost().value(),
        tco.penalty().value(),
        tco.total().value(),
    );
    out
}

/// Renders one option with the paper's full Fig. 4–9 column set —
/// `P_i`, `f_i`, proposed HA method, `t_i`, `C_HA` per component, plus the
/// contract columns — by resolving reliability and failover data from the
/// knowledge base.
///
/// # Errors
///
/// Returns catalog errors when the cloud, a reliability record, or a
/// method id no longer resolves.
pub fn render_option_table_detailed(
    catalog: &CatalogStore,
    cloud: &CloudId,
    option: &RankedOption,
    tiers: &[ComponentKind],
    model: &TcoModel,
) -> Result<String, BrokerError> {
    let profile = catalog
        .cloud(cloud)
        .ok_or_else(|| BrokerError::UnknownCloud { id: cloud.clone() })?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Solution Option #{}: {}",
        option.option_number(),
        describe(option)
    );
    let _ = writeln!(
        out,
        "{:<4} {:>8} {:>8} {:<24} {:>10} {:>12}",
        "#", "P_i", "f_i/yr", "Proposed HA method", "t_i (min)", "C_HA ($/mo)"
    );
    for (i, ((kind, method_id), cost)) in tiers
        .iter()
        .zip(option.method_ids())
        .zip(option.tier_costs())
        .enumerate()
    {
        let record =
            profile
                .reliability(*kind)
                .ok_or(uptime_catalog::CatalogError::MissingReliability {
                    cloud: cloud.clone(),
                    component: *kind,
                })?;
        let method = catalog.method(method_id.as_str()).ok_or_else(|| {
            uptime_catalog::CatalogError::UnknownMethod {
                id: method_id.clone(),
            }
        })?;
        let _ = writeln!(
            out,
            "{:<4} {:>7.2}% {:>8.2} {:<24} {:>10.2} {:>12.0}",
            i + 1,
            record.down_probability().as_percent(),
            record.failures_per_year().value(),
            method.display_name(),
            method.failover_time().value(),
            cost.value(),
        );
    }
    let tco = option.evaluation().tco();
    let _ = writeln!(
        out,
        "U_SLA {:.0}% | U_s = {:.2}% | slippage {:.0} h/mo @ ${:.0}/h | TCO = ${:.0} (HA) + ${:.0} (penalty) = ${:.0}/mo",
        model.sla().as_percent(),
        option.evaluation().uptime().availability().as_percent(),
        tco.billed_slippage_hours(),
        match model.penalty() {
            uptime_core::PenaltyClause::PerHour { rate } => *rate,
            _ => f64::NAN,
        },
        tco.ha_cost().value(),
        tco.penalty().value(),
        tco.total().value(),
    );
    Ok(out)
}

/// Renders a cloud's full option list as the paper's Fig. 10 summary.
#[must_use]
pub fn render_fig10_summary(cloud: &CloudRecommendation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Summary of results on cloud `{}`:", cloud.cloud());
    let _ = writeln!(
        out,
        "{:<9} {:<52} {:<10} {:>12}",
        "Option #", "Proposed HA-Enabled Solution", "Penalty?", "TCO ($/mo)"
    );
    for option in cloud.options() {
        let _ = writeln!(
            out,
            "{:<9} {:<52} {:<10} {:>12.0}",
            option.option_number(),
            describe(option),
            if option.meets_sla() { "No" } else { "Yes" },
            option.evaluation().tco().total().value(),
        );
    }
    let _ = writeln!(
        out,
        "Recommended (min TCO): option #{} at ${:.0}/mo",
        cloud.best().option_number(),
        cloud.best().evaluation().tco().total().value()
    );
    if let Some(min_risk) = cloud.min_risk() {
        let _ = writeln!(
            out,
            "Minimum penalty risk:  option #{} at ${:.0}/mo",
            min_risk.option_number(),
            min_risk.evaluation().tco().total().value()
        );
    }
    if let (Some(as_is), Some(savings)) = (cloud.as_is(), cloud.savings_vs_as_is()) {
        let _ = writeln!(
            out,
            "As-is option #{} at ${:.0}/mo -> savings {:.0}%",
            as_is.option_number(),
            as_is.evaluation().tco().total().value(),
            savings * 100.0
        );
    }
    out
}

/// Renders the cross-cloud comparison for hybrid-brokerage scenarios.
#[must_use]
pub fn render_cross_cloud(recommendation: &Recommendation) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<34} {:>10} {:>12}",
        "Cloud", "Best option", "U_s (%)", "TCO ($/mo)"
    );
    for cloud in recommendation.clouds() {
        let best = cloud.best();
        let _ = writeln!(
            out,
            "{:<14} {:<34} {:>10.2} {:>12.0}",
            cloud.cloud().as_str(),
            describe(best),
            best.evaluation().uptime().availability().as_percent(),
            best.evaluation().tco().total().value(),
        );
    }
    if let Some(best_cloud) = recommendation.best_cloud() {
        let _ = writeln!(
            out,
            "Overall recommendation: cloud `{}`, option #{} at ${:.0}/mo",
            best_cloud.cloud(),
            best_cloud.best().option_number(),
            best_cloud.best().evaluation().tco().total().value()
        );
    }
    out
}

/// Machine-readable export of a full recommendation.
///
/// # Errors
///
/// Returns a [`serde_json::Error`] if serialization fails (it cannot for
/// these types in practice).
pub fn to_json(recommendation: &Recommendation) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(recommendation)
}

fn describe(option: &RankedOption) -> String {
    option
        .labels()
        .iter()
        .map(|label| {
            if label == "None" {
                "no HA".to_owned()
            } else {
                label.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(" / ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SolutionRequest;
    use crate::service::BrokerService;
    use uptime_catalog::{case_study, HaMethodId};

    fn recommendation() -> Recommendation {
        let service = BrokerService::new(case_study::catalog());
        let request = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .as_is(vec![
                HaMethodId::new("vmware-ha-3p1"),
                HaMethodId::new("raid1"),
                HaMethodId::new("dual-gw"),
            ])
            .build()
            .unwrap();
        service.recommend(&request).unwrap()
    }

    #[test]
    fn fig10_summary_contains_all_rows_and_savings() {
        let rec = recommendation();
        let text = render_fig10_summary(&rec.clouds()[0]);
        for tco in [
            "4300", "4000", "1250", "5900", "1350", "5500", "2850", "3550",
        ] {
            assert!(text.contains(tco), "missing TCO {tco} in:\n{text}");
        }
        assert!(text.contains("option #3 at $1250/mo"));
        assert!(text.contains("option #5 at $1350/mo"));
        assert!(text.contains("savings 62%"));
    }

    #[test]
    fn option_table_mentions_uptime_and_tiers() {
        let rec = recommendation();
        let model = case_study::tco_model();
        let option3 = &rec.clouds()[0].options()[2];
        let text = render_option_table(option3, &ComponentKind::paper_tiers(), &model);
        assert!(text.contains("Solution Option #3"));
        assert!(text.contains("96.78%"));
        assert!(text.contains("RAID 1"));
        assert!(text.contains("TCO $1250/mo"));
        assert!(text.contains("compute"));
    }

    #[test]
    fn detailed_table_shows_paper_columns() {
        let rec = recommendation();
        let model = case_study::tco_model();
        let option8 = &rec.clouds()[0].options()[7];
        let text = render_option_table_detailed(
            &case_study::catalog(),
            &case_study::cloud_id(),
            option8,
            &ComponentKind::paper_tiers(),
            &model,
        )
        .unwrap();
        // The paper's broker-supplied columns.
        assert!(text.contains("1.00%"), "{text}");
        assert!(text.contains("5.00%"), "{text}");
        assert!(text.contains("2.00%"), "{text}");
        assert!(text.contains("6.00"), "VMware t_i: {text}");
        assert!(text.contains("0.50"), "RAID t_i: {text}");
        assert!(text.contains("2200"), "{text}");
        assert!(text.contains("$3550/mo"), "{text}");
    }

    #[test]
    fn detailed_table_unknown_cloud_errors() {
        let rec = recommendation();
        let model = case_study::tco_model();
        let err = render_option_table_detailed(
            &case_study::catalog(),
            &uptime_catalog::CloudId::new("ghost"),
            rec.clouds()[0].best(),
            &ComponentKind::paper_tiers(),
            &model,
        )
        .unwrap_err();
        assert!(matches!(err, BrokerError::UnknownCloud { .. }));
    }

    #[test]
    fn cross_cloud_lists_every_cloud() {
        let rec = recommendation();
        let text = render_cross_cloud(&rec);
        assert!(text.contains("softlayer"));
        assert!(text.contains("Overall recommendation"));
    }

    #[test]
    fn json_export_parses_back() {
        let rec = recommendation();
        let json = to_json(&rec).unwrap();
        let back: Recommendation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn describe_substitutes_none() {
        let rec = recommendation();
        let option1 = &rec.clouds()[0].options()[0];
        assert_eq!(describe(option1), "no HA / no HA / no HA");
    }
}
