//! Deterministic fault injection for the broker control plane.
//!
//! [`ChaosProvider`] decorates any [`CloudProvider`] and injects seeded
//! faults at configurable rates: transient provisioning failures, harvest
//! timeouts, and corrupted / truncated / duplicated telemetry batches.
//! Every fault decision is drawn from a SplitMix64 stream seeded by
//! [`ChaosConfig::seed`], so a given seed reproduces the exact same fault
//! schedule — the property the end-to-end resilience tests pin down.
//!
//! The trace mutations are designed to be *structurally detectable* by the
//! telemetry quarantine ([`crate::telemetry::validate_batch`]):
//!
//! * **corrupt** points an event at a cluster index outside the declared
//!   frame (and scrambles capture order when there are two events to swap);
//! * **truncate** drops the capture prefix through the first completed
//!   outage, orphaning its `NodeUp`;
//! * **duplicate** replays a `NodeDown`, double-failing the node.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use uptime_catalog::{CloudId, ComponentKind};
use uptime_core::ClusterSpec;
use uptime_sim::{Trace, TraceEvent, TraceEventKind};

use crate::error::BrokerError;
use crate::planner::DeploymentPlan;
use crate::provider::{CloudProvider, DeploymentHandle, ProviderTelemetry};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fault rates for a [`ChaosProvider`]. All rates are probabilities in
/// `[0, 1]`; the three trace-mutation rates are mutually exclusive per
/// batch (at most one mutation is applied).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Seed of the fault-decision stream.
    pub seed: u64,
    /// Probability a `provision` call fails transiently.
    pub provision_failure_rate: f64,
    /// Probability a harvest call times out.
    pub harvest_timeout_rate: f64,
    /// Probability a delivered batch is corrupted (bad indices / order).
    pub corrupt_rate: f64,
    /// Probability a delivered batch loses its capture prefix.
    pub truncate_rate: f64,
    /// Probability a delivered batch replays an event.
    pub duplicate_rate: f64,
    /// Wall-clock delay injected into every harvest call, in
    /// milliseconds (default 0: no delay). Unlike the fault rates this is
    /// deterministic — every harvest sleeps — which makes it the knob the
    /// tracing e2e tests turn to manufacture a provably slow `sync` whose
    /// time is attributable to the provider stage.
    pub harvest_delay_ms: u64,
}

impl ChaosConfig {
    /// No faults at all — a transparent pass-through.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            provision_failure_rate: 0.0,
            harvest_timeout_rate: 0.0,
            corrupt_rate: 0.0,
            truncate_rate: 0.0,
            duplicate_rate: 0.0,
            harvest_delay_ms: 0,
        }
    }

    /// The fault mix the end-to-end chaos suite runs: ≥20 % of calls are
    /// disrupted in some way.
    #[must_use]
    pub fn aggressive(seed: u64) -> Self {
        ChaosConfig {
            seed,
            provision_failure_rate: 0.25,
            harvest_timeout_rate: 0.20,
            corrupt_rate: 0.15,
            truncate_rate: 0.10,
            duplicate_rate: 0.10,
            harvest_delay_ms: 0,
        }
    }

    /// Sets the transient provisioning failure rate.
    #[must_use]
    pub fn with_provision_failure_rate(mut self, rate: f64) -> Self {
        self.provision_failure_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the harvest timeout rate.
    #[must_use]
    pub fn with_harvest_timeout_rate(mut self, rate: f64) -> Self {
        self.harvest_timeout_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the batch corruption rate.
    #[must_use]
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the batch truncation rate.
    #[must_use]
    pub fn with_truncate_rate(mut self, rate: f64) -> Self {
        self.truncate_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the batch duplication rate.
    #[must_use]
    pub fn with_duplicate_rate(mut self, rate: f64) -> Self {
        self.duplicate_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the deterministic per-harvest delay.
    #[must_use]
    pub fn with_harvest_delay_ms(mut self, delay_ms: u64) -> Self {
        self.harvest_delay_ms = delay_ms;
        self
    }
}

/// Counts of injected faults, for assertions and health reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosStats {
    /// Provision calls failed transiently.
    pub provision_faults: u64,
    /// Harvest calls that timed out.
    pub harvest_timeouts: u64,
    /// Batches delivered corrupted.
    pub corrupted_batches: u64,
    /// Batches delivered truncated.
    pub truncated_batches: u64,
    /// Batches delivered with replayed events.
    pub duplicated_batches: u64,
    /// Batches delivered untouched.
    pub clean_batches: u64,
}

impl ChaosStats {
    /// Total batches mutated in any way.
    #[must_use]
    pub fn mutated_batches(&self) -> u64 {
        self.corrupted_batches + self.truncated_batches + self.duplicated_batches
    }
}

/// A seeded fault-injecting decorator around any [`CloudProvider`].
#[derive(Debug)]
pub struct ChaosProvider<P> {
    inner: P,
    config: ChaosConfig,
    rng: Mutex<u64>,
    stats: Mutex<ChaosStats>,
}

impl<P: CloudProvider> ChaosProvider<P> {
    /// Wraps `inner` with the given fault configuration.
    #[must_use]
    pub fn new(inner: P, config: ChaosConfig) -> Self {
        ChaosProvider {
            inner,
            config,
            rng: Mutex::new(config.seed),
            stats: Mutex::new(ChaosStats::default()),
        }
    }

    /// The wrapped provider.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The fault configuration.
    #[must_use]
    pub fn config(&self) -> ChaosConfig {
        self.config
    }

    /// A snapshot of the fault counters.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        *self.stats.lock()
    }

    /// A uniform draw in `[0, 1)` from the fault stream.
    fn roll(&self) -> f64 {
        let mut state = self.rng.lock();
        let bits = splitmix64(&mut state) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }

    /// A uniform index below `n` (`n > 0`) from the fault stream.
    fn roll_index(&self, n: usize) -> usize {
        let mut state = self.rng.lock();
        (splitmix64(&mut state) % n as u64) as usize
    }

    /// Applies at most one trace mutation according to the configured
    /// rates.
    fn disturb(&self, mut telemetry: ProviderTelemetry) -> ProviderTelemetry {
        let u = self.roll();
        let c = self.config;
        let mut stats = self.stats.lock();
        if u < c.corrupt_rate {
            telemetry.trace = corrupt(
                &telemetry.trace,
                telemetry.clusters,
                self.roll_index(telemetry.trace.len().max(1)),
            );
            stats.corrupted_batches += 1;
        } else if u < c.corrupt_rate + c.truncate_rate {
            if let Some(truncated) = truncate(&telemetry.trace) {
                telemetry.trace = truncated;
                stats.truncated_batches += 1;
            } else {
                stats.clean_batches += 1;
            }
        } else if u < c.corrupt_rate + c.truncate_rate + c.duplicate_rate {
            if let Some(duplicated) = duplicate(&telemetry.trace) {
                telemetry.trace = duplicated;
                stats.duplicated_batches += 1;
            } else {
                stats.clean_batches += 1;
            }
        } else {
            stats.clean_batches += 1;
        }
        telemetry
    }
}

/// Points one event at a cluster outside the declared frame and, when two
/// events exist, swaps the first two timestamps to break capture order.
fn corrupt(trace: &Trace, clusters: u32, victim: usize) -> Trace {
    let mut events: Vec<TraceEvent> = trace.events().to_vec();
    if let Some(event) = events.get_mut(victim) {
        event.cluster = clusters as usize + 1;
    }
    if events.len() >= 2 && events[0].at != events[1].at {
        let (a, b) = (events[0].at, events[1].at);
        events[0].at = b;
        events[1].at = a;
    }
    rebuild(events)
}

/// Drops the prefix through the first `NodeDown` whose matching `NodeUp`
/// appears later, orphaning that `NodeUp`. Returns `None` when the trace
/// has no completed outage to orphan.
fn truncate(trace: &Trace) -> Option<Trace> {
    let events = trace.events();
    let cut = events.iter().enumerate().find_map(|(i, e)| {
        let TraceEventKind::NodeDown { node } = e.kind else {
            return None;
        };
        let completed = events[i + 1..].iter().any(|later| {
            later.cluster == e.cluster && later.kind == TraceEventKind::NodeUp { node }
        });
        completed.then_some(i)
    })?;
    Some(rebuild(events[cut + 1..].to_vec()))
}

/// Replays the first `NodeDown` immediately after itself, double-failing
/// the node. Returns `None` when the trace has no `NodeDown`.
fn duplicate(trace: &Trace) -> Option<Trace> {
    let events = trace.events();
    let i = events
        .iter()
        .position(|e| matches!(e.kind, TraceEventKind::NodeDown { .. }))?;
    let mut doubled: Vec<TraceEvent> = Vec::with_capacity(events.len() + 1);
    doubled.extend_from_slice(&events[..=i]);
    doubled.push(events[i]);
    doubled.extend_from_slice(&events[i + 1..]);
    Some(rebuild(doubled))
}

fn rebuild(events: Vec<TraceEvent>) -> Trace {
    let mut trace = Trace::new();
    for e in events {
        trace.record(e.at, e.cluster, e.kind);
    }
    trace
}

impl<P: CloudProvider> CloudProvider for ChaosProvider<P> {
    fn id(&self) -> &CloudId {
        self.inner.id()
    }

    fn display_name(&self) -> &str {
        self.inner.display_name()
    }

    fn provision(&mut self, plan: &DeploymentPlan) -> Result<DeploymentHandle, BrokerError> {
        if self.roll() < self.config.provision_failure_rate {
            self.stats.lock().provision_faults += 1;
            return Err(BrokerError::ProviderUnavailable {
                cloud: self.inner.id().clone(),
                reason: "injected transient provisioning fault".into(),
            });
        }
        self.inner.provision(plan)
    }

    fn deprovision(&mut self, handle: DeploymentHandle) -> bool {
        self.inner.deprovision(handle)
    }

    fn deployments(&self) -> Vec<DeploymentHandle> {
        self.inner.deployments()
    }

    fn harvest_component_telemetry(
        &self,
        kind: ComponentKind,
        fleet: u32,
        years: f64,
        seed: u64,
    ) -> Result<ProviderTelemetry, BrokerError> {
        if self.config.harvest_delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                self.config.harvest_delay_ms,
            ));
        }
        if self.roll() < self.config.harvest_timeout_rate {
            self.stats.lock().harvest_timeouts += 1;
            return Err(BrokerError::Timeout {
                operation: "harvest_component_telemetry".into(),
            });
        }
        let telemetry = self
            .inner
            .harvest_component_telemetry(kind, fleet, years, seed)?;
        Ok(self.disturb(telemetry))
    }

    fn harvest_cluster_telemetry(
        &self,
        spec: &ClusterSpec,
        years: f64,
        seed: u64,
    ) -> Result<ProviderTelemetry, BrokerError> {
        if self.roll() < self.config.harvest_timeout_rate {
            self.stats.lock().harvest_timeouts += 1;
            return Err(BrokerError::Timeout {
                operation: "harvest_cluster_telemetry".into(),
            });
        }
        let telemetry = self.inner.harvest_cluster_telemetry(spec, years, seed)?;
        Ok(self.disturb(telemetry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{GroundTruth, SimulatedProvider};
    use crate::telemetry::validate_batch;
    use uptime_core::{FailuresPerYear, Probability};

    fn sim() -> SimulatedProvider {
        SimulatedProvider::new("softlayer", "sim").with_ground_truth(
            ComponentKind::Storage,
            GroundTruth {
                down_probability: Probability::new(0.05).unwrap(),
                failures_per_year: FailuresPerYear::new(2.0).unwrap(),
            },
        )
    }

    fn harvest(p: &impl CloudProvider) -> Result<ProviderTelemetry, BrokerError> {
        p.harvest_component_telemetry(ComponentKind::Storage, 10, 5.0, 3)
    }

    #[test]
    fn quiet_config_is_transparent() {
        let chaos = ChaosProvider::new(sim(), ChaosConfig::quiet(1));
        let direct = harvest(&sim()).unwrap();
        let via = harvest(&chaos).unwrap();
        assert_eq!(via, direct);
        assert_eq!(chaos.stats().clean_batches, 1);
        assert_eq!(chaos.stats().mutated_batches(), 0);
        assert_eq!(chaos.id().as_str(), "softlayer");
        assert_eq!(chaos.display_name(), "sim");
    }

    #[test]
    fn corrupted_batches_fail_validation() {
        let config = ChaosConfig::quiet(5).with_corrupt_rate(1.0);
        let chaos = ChaosProvider::new(sim(), config);
        let batch = harvest(&chaos).unwrap();
        assert!(validate_batch(&batch).is_err());
        assert_eq!(chaos.stats().corrupted_batches, 1);
    }

    #[test]
    fn truncated_batches_fail_validation() {
        let config = ChaosConfig::quiet(5).with_truncate_rate(1.0);
        let chaos = ChaosProvider::new(sim(), config);
        let batch = harvest(&chaos).unwrap();
        assert!(validate_batch(&batch).is_err());
        assert_eq!(chaos.stats().truncated_batches, 1);
    }

    #[test]
    fn duplicated_batches_fail_validation() {
        let config = ChaosConfig::quiet(5).with_duplicate_rate(1.0);
        let chaos = ChaosProvider::new(sim(), config);
        let batch = harvest(&chaos).unwrap();
        assert!(validate_batch(&batch).is_err());
        assert_eq!(chaos.stats().duplicated_batches, 1);
    }

    #[test]
    fn timeouts_surface_as_timeout_errors() {
        let config = ChaosConfig::quiet(5).with_harvest_timeout_rate(1.0);
        let chaos = ChaosProvider::new(sim(), config);
        assert!(matches!(harvest(&chaos), Err(BrokerError::Timeout { .. })));
        assert_eq!(chaos.stats().harvest_timeouts, 1);
    }

    #[test]
    fn provision_faults_are_transient_provider_unavailable() {
        use crate::planner::ProvisionStep;
        use uptime_catalog::HaMethodId;
        let config = ChaosConfig::quiet(5).with_provision_failure_rate(1.0);
        let mut chaos = ChaosProvider::new(sim(), config);
        let plan = DeploymentPlan::new(
            CloudId::new("softlayer"),
            vec![ProvisionStep::new(
                ComponentKind::Storage,
                HaMethodId::new("raid1"),
                "RAID 1",
                2,
            )],
        );
        assert!(matches!(
            chaos.provision(&plan),
            Err(BrokerError::ProviderUnavailable { .. })
        ));
        assert_eq!(chaos.stats().provision_faults, 1);
        assert!(chaos.deployments().is_empty());
    }

    #[test]
    fn identical_seeds_identical_fault_schedule() {
        let schedule = |seed: u64| -> Vec<bool> {
            let chaos = ChaosProvider::new(sim(), ChaosConfig::aggressive(seed));
            (0..20).map(|_| harvest(&chaos).is_ok()).collect()
        };
        assert_eq!(schedule(99), schedule(99));
    }

    #[test]
    fn aggressive_mix_disrupts_a_meaningful_share() {
        let chaos = ChaosProvider::new(sim(), ChaosConfig::aggressive(4));
        let mut failures = 0;
        for _ in 0..50 {
            match harvest(&chaos) {
                Ok(batch) => {
                    if validate_batch(&batch).is_err() {
                        failures += 1;
                    }
                }
                Err(_) => failures += 1,
            }
        }
        let stats = chaos.stats();
        assert!(
            failures >= 10,
            "≥20 % disruption expected, got {failures}/50"
        );
        assert!(stats.harvest_timeouts > 0);
        assert!(stats.mutated_batches() > 0);
        assert!(stats.clean_batches > 0, "clean batches still get through");
    }
}
