//! Control-plane resilience primitives: retry with backoff and circuit
//! breaking.
//!
//! The paper's broker is a long-running intermediary between customers and
//! IaaS providers; provider calls (provisioning, telemetry harvest) fail
//! transiently in practice. This module supplies the two standard guards:
//!
//! * [`RetryPolicy`] — bounded exponential backoff with deterministic,
//!   seeded jitter and a total *deadline budget*. Time is **virtual**
//!   (no wall clock, no sleeping), which keeps every retry schedule
//!   reproducible from its seed — the same discipline the simulator uses.
//! * [`CircuitBreaker`] — the classic closed → open → half-open machine,
//!   one per fronted provider, driven by a virtual tick that advances on
//!   every admission check.
//!
//! Both are plain state machines so they can be unit-tested exhaustively
//! and replayed identically across runs (the chaos harness depends on
//! this).

use std::fmt;

use serde::{Deserialize, Serialize};

/// SplitMix64 step — the same generator the vendored `rand` seeds with,
/// used here for deterministic jitter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bounded exponential backoff with seeded "equal jitter" and a total
/// virtual-time budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_delay_ms: u64,
    max_delay_ms: u64,
    budget_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 100,
            max_delay_ms: 5_000,
            budget_ms: 10_000,
        }
    }
}

impl RetryPolicy {
    /// Creates a policy. `max_attempts` is clamped to at least one.
    #[must_use]
    pub fn new(max_attempts: u32, base_delay_ms: u64, max_delay_ms: u64, budget_ms: u64) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay_ms,
            max_delay_ms,
            budget_ms,
        }
    }

    /// Maximum number of attempts (first try included).
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Total virtual-time deadline budget across all backoff waits.
    #[must_use]
    pub fn budget_ms(&self) -> u64 {
        self.budget_ms
    }

    /// The jittered virtual delay before retrying after failed attempt
    /// `attempt` (1-based). Equal jitter: half the exponential delay is
    /// kept, the other half is drawn uniformly from the seed.
    #[must_use]
    pub fn delay_after(&self, attempt: u32, seed: u64) -> u64 {
        let shift = attempt.saturating_sub(1).min(20);
        let full = self
            .base_delay_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_delay_ms);
        let half = full / 2;
        let mut state = seed ^ u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F);
        let jitter = if half == 0 {
            0
        } else {
            splitmix64(&mut state) % (half + 1)
        };
        half + jitter
    }

    /// Runs `op` up to `max_attempts` times, backing off between attempts.
    ///
    /// Only errors for which `transient` returns `true` are retried;
    /// anything else is returned immediately. The virtual clock is advanced
    /// by each backoff delay and the loop stops early once the deadline
    /// budget would be exceeded.
    pub fn run<T, E>(
        &self,
        seed: u64,
        mut transient: impl FnMut(&E) -> bool,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> RetryOutcome<T, E> {
        let mut elapsed_ms = 0u64;
        for attempt in 1..=self.max_attempts {
            match op(attempt) {
                Ok(value) => {
                    return RetryOutcome {
                        result: Ok(value),
                        attempts: attempt,
                        virtual_elapsed_ms: elapsed_ms,
                        budget_exhausted: false,
                    }
                }
                Err(err) => {
                    if !transient(&err) || attempt == self.max_attempts {
                        return RetryOutcome {
                            result: Err(err),
                            attempts: attempt,
                            virtual_elapsed_ms: elapsed_ms,
                            budget_exhausted: false,
                        };
                    }
                    let delay = self.delay_after(attempt, seed);
                    if elapsed_ms.saturating_add(delay) > self.budget_ms {
                        return RetryOutcome {
                            result: Err(err),
                            attempts: attempt,
                            virtual_elapsed_ms: elapsed_ms,
                            budget_exhausted: true,
                        };
                    }
                    elapsed_ms += delay;
                }
            }
        }
        unreachable!("loop returns on success or final failure")
    }
}

/// What a [`RetryPolicy::run`] call did.
#[derive(Debug)]
pub struct RetryOutcome<T, E> {
    /// The final result: first success, or the last error observed.
    pub result: Result<T, E>,
    /// Attempts actually made (1-based count).
    pub attempts: u32,
    /// Virtual milliseconds spent backing off.
    pub virtual_elapsed_ms: u64,
    /// Whether the loop stopped because the deadline budget ran out
    /// before `max_attempts` was reached.
    pub budget_exhausted: bool,
}

/// The admission state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls are rejected; the provider is cooling down.
    Open,
    /// Cooldown elapsed; a single probe call is admitted.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Per-provider circuit breaker over a virtual tick clock.
///
/// Every [`allow`](CircuitBreaker::allow) advances the clock by one tick.
/// After `failure_threshold` consecutive failures the breaker opens; once
/// `cooldown_ticks` admission checks have passed it half-opens and admits
/// exactly one probe. A successful probe closes the breaker, a failed one
/// re-opens it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown_ticks: u64,
    consecutive_failures: u32,
    open_since: Option<u64>,
    probing: bool,
    now: u64,
    times_opened: u64,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(3, 8)
    }
}

impl CircuitBreaker {
    /// Creates a breaker that opens after `failure_threshold` consecutive
    /// failures and half-opens after `cooldown_ticks` admission checks.
    #[must_use]
    pub fn new(failure_threshold: u32, cooldown_ticks: u64) -> Self {
        CircuitBreaker {
            failure_threshold: failure_threshold.max(1),
            cooldown_ticks: cooldown_ticks.max(1),
            consecutive_failures: 0,
            open_since: None,
            probing: false,
            now: 0,
            times_opened: 0,
        }
    }

    /// Current state, accounting for cooldown expiry.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        match self.open_since {
            None => BreakerState::Closed,
            Some(at) if self.now.saturating_sub(at) >= self.cooldown_ticks => {
                BreakerState::HalfOpen
            }
            Some(_) => BreakerState::Open,
        }
    }

    /// Consecutive failures since the last success.
    #[must_use]
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// How many times the breaker has tripped open.
    #[must_use]
    pub fn times_opened(&self) -> u64 {
        self.times_opened
    }

    /// The breaker's virtual clock: how many admission checks it has seen.
    /// Incident-log entries use this as their transition timestamp.
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.now
    }

    /// How many ticks the breaker has been non-closed, or `None` when
    /// closed — the degraded-mode duration in admission checks.
    #[must_use]
    pub fn open_ticks(&self) -> Option<u64> {
        self.open_since.map(|at| self.now.saturating_sub(at))
    }

    /// Asks whether a call may proceed, advancing the virtual clock by one
    /// tick. Half-open admits a single probe until its outcome is
    /// recorded.
    pub fn allow(&mut self) -> bool {
        self.now += 1;
        match self.state() {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probing {
                    false
                } else {
                    self.probing = true;
                    true
                }
            }
        }
    }

    /// Records a successful call: the breaker closes and the failure
    /// streak resets.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.open_since = None;
        self.probing = false;
    }

    /// Records a failed call: a failed half-open probe re-opens the
    /// breaker immediately; in the closed state, reaching the threshold
    /// opens it.
    pub fn record_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = if self.probing {
            true
        } else {
            self.open_since.is_none() && self.consecutive_failures >= self.failure_threshold
        };
        if trip {
            self.open_since = Some(self.now);
            self.probing = false;
            self.times_opened += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_succeeds_first_try() {
        let policy = RetryPolicy::default();
        let outcome = policy.run(1, |_: &&str| true, |_| Ok::<_, &str>(42));
        assert_eq!(outcome.result.unwrap(), 42);
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.virtual_elapsed_ms, 0);
        assert!(!outcome.budget_exhausted);
    }

    #[test]
    fn retry_recovers_from_transient_errors() {
        let policy = RetryPolicy::new(5, 10, 100, 10_000);
        let mut calls = 0;
        let outcome = policy.run(
            7,
            |_: &&str| true,
            |attempt| {
                calls += 1;
                if attempt < 3 {
                    Err("flaky")
                } else {
                    Ok("done")
                }
            },
        );
        assert_eq!(outcome.result.unwrap(), "done");
        assert_eq!(outcome.attempts, 3);
        assert_eq!(calls, 3);
        assert!(outcome.virtual_elapsed_ms > 0, "backed off between tries");
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        let policy = RetryPolicy::new(3, 1, 10, 10_000);
        let outcome = policy.run(9, |_: &&str| true, |_| Err::<(), _>("down"));
        assert_eq!(outcome.result.unwrap_err(), "down");
        assert_eq!(outcome.attempts, 3);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let outcome = policy.run(
            1,
            |e: &&str| *e == "transient",
            |_| {
                calls += 1;
                Err::<(), _>("permanent")
            },
        );
        assert!(outcome.result.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn budget_caps_backoff() {
        // Base delay 1000 ms with a 1500 ms budget: one wait fits, the
        // second (≥1000 ms) would exceed it.
        let policy = RetryPolicy::new(10, 1000, 4000, 1500);
        let outcome = policy.run(3, |_: &&str| true, |_| Err::<(), _>("down"));
        assert!(outcome.budget_exhausted);
        assert!(outcome.attempts < 10);
        assert!(outcome.virtual_elapsed_ms <= 1500);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::new(6, 100, 5000, 60_000);
        for attempt in 1..=5 {
            let a = policy.delay_after(attempt, 42);
            let b = policy.delay_after(attempt, 42);
            assert_eq!(a, b, "same seed, same delay");
            let full = (100u64 << (attempt - 1)).min(5000);
            assert!(a >= full / 2 && a <= full + 1, "attempt {attempt}: {a}");
        }
        // Different seeds usually differ.
        let spread: std::collections::BTreeSet<u64> =
            (0..16).map(|s| policy.delay_after(3, s)).collect();
        assert!(spread.len() > 1, "jitter varies across seeds");
    }

    #[test]
    fn identical_seeds_identical_schedule() {
        let policy = RetryPolicy::new(5, 50, 2000, 60_000);
        let run = |seed| {
            let mut delays = Vec::new();
            let _ = policy.run(
                seed,
                |_: &&str| true,
                |attempt| {
                    if attempt > 1 {
                        delays.push(policy.delay_after(attempt - 1, seed));
                    }
                    Err::<(), _>("x")
                },
            );
            delays
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn breaker_opens_after_threshold() {
        let mut b = CircuitBreaker::new(3, 5);
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert!(b.allow());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 1);
        assert!(!b.allow(), "open breaker rejects");
    }

    #[test]
    fn breaker_half_opens_after_cooldown_and_closes_on_probe_success() {
        let mut b = CircuitBreaker::new(1, 3);
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown: rejected admission checks advance the clock; the
        // breaker half-opens once three ticks have elapsed since opening.
        assert!(!b.allow());
        assert!(!b.allow());
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(), "cooldown elapsed: half-open admits one probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "second concurrent probe rejected");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
        assert!(b.allow());
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(1, 2);
        assert!(b.allow());
        b.record_failure();
        while !b.allow() {}
        // Probe admitted; it fails.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 2);
        assert!(!b.allow());
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(3, 5);
        for _ in 0..2 {
            assert!(b.allow());
            b.record_failure();
        }
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.consecutive_failures(), 0);
        // Two more failures do not trip the (3-failure) breaker.
        for _ in 0..2 {
            assert!(b.allow());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn display_names() {
        assert_eq!(BreakerState::Closed.to_string(), "closed");
        assert_eq!(BreakerState::Open.to_string(), "open");
        assert_eq!(BreakerState::HalfOpen.to_string(), "half-open");
    }
}
