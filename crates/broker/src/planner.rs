//! Deployment planning: recommendation → provisioning steps.

use serde::{Deserialize, Serialize};
use uptime_catalog::{CloudId, ComponentKind, HaMethodId};

/// One provisioning action: engineer an HA method for a component tier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvisionStep {
    component: ComponentKind,
    method: HaMethodId,
    method_label: String,
    nodes: u32,
}

impl ProvisionStep {
    /// Creates a step.
    pub fn new(
        component: ComponentKind,
        method: HaMethodId,
        method_label: impl Into<String>,
        nodes: u32,
    ) -> Self {
        ProvisionStep {
            component,
            method,
            method_label: method_label.into(),
            nodes,
        }
    }

    /// The component tier this step provisions.
    #[must_use]
    pub fn component(&self) -> ComponentKind {
        self.component
    }

    /// The HA method to engineer.
    #[must_use]
    pub fn method(&self) -> &HaMethodId {
        &self.method
    }

    /// Human-readable method name.
    #[must_use]
    pub fn method_label(&self) -> &str {
        &self.method_label
    }

    /// Total nodes to provision for the tier.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.nodes
    }
}

/// An ordered provisioning plan for one cloud.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeploymentPlan {
    cloud: CloudId,
    steps: Vec<ProvisionStep>,
}

impl DeploymentPlan {
    /// Creates a plan.
    #[must_use]
    pub fn new(cloud: CloudId, steps: Vec<ProvisionStep>) -> Self {
        DeploymentPlan { cloud, steps }
    }

    /// The target cloud.
    #[must_use]
    pub fn cloud(&self) -> &CloudId {
        &self.cloud
    }

    /// The provisioning steps, tier by tier in serial order.
    #[must_use]
    pub fn steps(&self) -> &[ProvisionStep] {
        &self.steps
    }

    /// Total nodes across all tiers.
    #[must_use]
    pub fn total_nodes(&self) -> u32 {
        self.steps.iter().map(ProvisionStep::nodes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> DeploymentPlan {
        DeploymentPlan::new(
            CloudId::new("softlayer"),
            vec![
                ProvisionStep::new(
                    ComponentKind::Compute,
                    HaMethodId::new("none-compute"),
                    "None",
                    1,
                ),
                ProvisionStep::new(
                    ComponentKind::Storage,
                    HaMethodId::new("raid1"),
                    "RAID 1",
                    2,
                ),
                ProvisionStep::new(
                    ComponentKind::NetworkGateway,
                    HaMethodId::new("dual-gw"),
                    "Dual Node GW Cluster",
                    2,
                ),
            ],
        )
    }

    #[test]
    fn accessors_and_totals() {
        let p = plan();
        assert_eq!(p.cloud().as_str(), "softlayer");
        assert_eq!(p.steps().len(), 3);
        assert_eq!(p.total_nodes(), 5);
        assert_eq!(p.steps()[1].method().as_str(), "raid1");
        assert_eq!(p.steps()[1].method_label(), "RAID 1");
        assert_eq!(p.steps()[1].component(), ComponentKind::Storage);
        assert_eq!(p.steps()[1].nodes(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let p = plan();
        let json = serde_json::to_string(&p).unwrap();
        let back: DeploymentPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
