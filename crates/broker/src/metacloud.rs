//! Metacloud optimization — the paper's stated "larger goal" (§V):
//!
//! > "The larger goal of our research is to design what we envisage as
//! > next-generation cloud brokerage that constructs a commercial
//! > meta-cloud whose ownership is scattered across cloud providers."
//!
//! Instead of evaluating each cloud's option space separately and picking
//! the best cloud, the metacloud search lets **every tier** be placed on
//! **any** fronted cloud: a candidate is a `(cloud, HA method)` pair, and
//! the serial chain may span providers. The search space grows to
//! `Π_i (Σ_c k_{i,c})` but remains exact under the same optimizers.

use serde::{Deserialize, Serialize};
use uptime_catalog::{CloudId, ComponentKind, HaMethodId};
use uptime_core::MoneyPerMonth;
use uptime_optimizer::{
    branch_bound, parallel, Candidate, ComponentChoices, Evaluation, Objective, SearchSpace,
};

use crate::error::BrokerError;
use crate::recommendation::DegradedMode;
use crate::request::SolutionRequest;
use crate::service::{BrokerService, SearchEngine};

/// One tier's placement in a metacloud deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The tier being placed.
    pub component: ComponentKind,
    /// The cloud hosting it.
    pub cloud: CloudId,
    /// The HA method engineered on that cloud.
    pub method: HaMethodId,
    /// The tier's monthly `C_HA` contribution.
    pub monthly_cost: MoneyPerMonth,
}

/// The metacloud recommendation: a cross-provider serial chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetacloudRecommendation {
    placements: Vec<Placement>,
    evaluation: Evaluation,
    clouds_used: Vec<CloudId>,
    assignments_searched: u128,
    degraded: Option<DegradedMode>,
}

impl MetacloudRecommendation {
    /// Tier placements, in serial order.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// The winning evaluation (uptime + TCO).
    #[must_use]
    pub fn evaluation(&self) -> &Evaluation {
        &self.evaluation
    }

    /// Distinct clouds the deployment spans, in first-use order.
    #[must_use]
    pub fn clouds_used(&self) -> &[CloudId] {
        &self.clouds_used
    }

    /// Whether the deployment actually spans more than one provider.
    #[must_use]
    pub fn is_cross_cloud(&self) -> bool {
        self.clouds_used.len() > 1
    }

    /// Size of the searched space.
    #[must_use]
    pub fn assignments_searched(&self) -> u128 {
        self.assignments_searched
    }

    /// Degradation metadata, when the answer rests on a stale catalog.
    #[must_use]
    pub fn degraded(&self) -> Option<&DegradedMode> {
        self.degraded.as_ref()
    }

    /// Whether the answer was served in degraded mode.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

impl BrokerService {
    /// Runs the metacloud search: every tier may land on any fronted cloud
    /// (or any subset named in the request), minimizing total TCO.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::UnknownCloud`] for a requested cloud the broker
    ///   does not front.
    /// * [`BrokerError::NoCandidates`] when no cloud can host some tier.
    /// * Catalog errors for inconsistent knowledge-base entries.
    pub fn recommend_metacloud(
        &self,
        request: &SolutionRequest,
    ) -> Result<MetacloudRecommendation, BrokerError> {
        self.recommend_metacloud_traced(request, &uptime_obs::TraceSpan::disabled())
    }

    /// [`Self::recommend_metacloud`] under a request trace: hangs a
    /// `broker.recommend.metacloud` span — with the engine child carrying
    /// the search counters — below `parent`. Identical answer otherwise.
    ///
    /// # Errors
    ///
    /// Same as [`Self::recommend_metacloud`].
    pub fn recommend_metacloud_traced(
        &self,
        request: &SolutionRequest,
        parent: &uptime_obs::TraceSpan,
    ) -> Result<MetacloudRecommendation, BrokerError> {
        let mut trace_span = parent.child("broker.recommend.metacloud");
        if request.topology().is_some() {
            // The metacloud search already spreads tiers across clouds;
            // an archetype shape on top has no defined placement space.
            return Err(BrokerError::InvalidRequest {
                reason: "topology archetypes are not supported by the metacloud search".into(),
            });
        }
        let catalog = self.catalog_snapshot();
        let clouds: Vec<CloudId> = if request.clouds().is_empty() {
            catalog.cloud_ids().cloned().collect()
        } else {
            for id in request.clouds() {
                if catalog.cloud(id).is_none() {
                    return Err(BrokerError::UnknownCloud { id: id.clone() });
                }
            }
            request.clouds().to_vec()
        };

        // Build the joint space: per tier, candidates from every cloud
        // whose knowledge base can host it.
        let mut components = Vec::with_capacity(request.tiers().len());
        let mut keys: Vec<Vec<(CloudId, HaMethodId)>> = Vec::with_capacity(request.tiers().len());
        for kind in request.tiers() {
            let mut candidates = Vec::new();
            let mut tier_keys = Vec::new();
            for cloud in &clouds {
                let profile = catalog.cloud(cloud).expect("validated above");
                if profile.reliability(*kind).is_none() {
                    continue;
                }
                for method in catalog.methods_for(*kind) {
                    let Ok(cluster) = catalog.cluster_spec(cloud, *kind, method.id()) else {
                        continue;
                    };
                    let Ok(quote) = catalog.quote(cloud, method.id()) else {
                        continue;
                    };
                    candidates.push(Candidate::new(
                        format!("{}@{}", method.display_name(), cloud),
                        cluster,
                        quote.total(),
                        method.is_none(),
                    ));
                    tier_keys.push((cloud.clone(), method.id().clone()));
                }
            }
            if candidates.is_empty() {
                return Err(BrokerError::NoCandidates);
            }
            components.push(ComponentChoices::new(kind.label(), candidates)?);
            keys.push(tier_keys);
        }
        let space = SearchSpace::new(components)?;
        let searched = space.assignment_count();

        let model = request.tco_model();
        // Only the argmin matters here, and joint spaces multiply fast
        // (Π_i Σ_c k_{i,c}); stream through the factorized engine instead
        // of materializing every evaluation. Both backends return the
        // same winner; branch-and-bound additionally prunes subtrees the
        // admissible bound proves suboptimal.
        trace_span.attr_u64("variants", u64::try_from(searched).unwrap_or(u64::MAX));
        let outcome = match self.engine() {
            SearchEngine::Exhaustive => parallel::search_best(&space, &model, Objective::MinTco),
            SearchEngine::BranchBound => branch_bound::search_with_threads_recorded(
                &space,
                &model,
                0,
                self.obs_recorder(),
                &trace_span,
            ),
        };
        let best = outcome.best().ok_or(BrokerError::NoCandidates)?.clone();

        let placements: Vec<Placement> = best
            .assignment()
            .iter()
            .zip(request.tiers())
            .zip(&keys)
            .zip(space.components())
            .map(|(((&idx, kind), tier_keys), comp)| {
                let (cloud, method) = tier_keys[idx].clone();
                Placement {
                    component: *kind,
                    cloud,
                    method,
                    monthly_cost: comp.candidates()[idx].monthly_cost(),
                }
            })
            .collect();
        let mut clouds_used: Vec<CloudId> = Vec::new();
        for placement in &placements {
            if !clouds_used.contains(&placement.cloud) {
                clouds_used.push(placement.cloud.clone());
            }
        }
        Ok(MetacloudRecommendation {
            degraded: self.degraded_mode(&clouds),
            placements,
            evaluation: best,
            clouds_used,
            assignments_searched: searched,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_catalog::{case_study, extended};

    fn request() -> SolutionRequest {
        SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn single_cloud_metacloud_equals_plain_recommendation() {
        let broker = BrokerService::new(case_study::catalog());
        let req = request();
        let meta = broker.recommend_metacloud(&req).unwrap();
        let plain = broker.recommend(&req).unwrap();
        assert_eq!(
            meta.evaluation().tco().total(),
            plain.clouds()[0].best().evaluation().tco().total()
        );
        assert!(!meta.is_cross_cloud());
        assert_eq!(meta.assignments_searched(), 8);
    }

    #[test]
    fn metacloud_never_worse_than_best_single_cloud() {
        let broker = BrokerService::new(extended::hybrid_catalog());
        let req = request();
        let meta = broker.recommend_metacloud(&req).unwrap();
        let per_cloud = broker.recommend(&req).unwrap();
        let best_single = per_cloud.best_tco().unwrap();
        assert!(
            meta.evaluation().tco().total() <= best_single,
            "metacloud {} must be ≤ best single cloud {}",
            meta.evaluation().tco().total(),
            best_single
        );
        // Space: per tier, 3 clouds × (3 or 4) methods.
        assert_eq!(meta.assignments_searched(), 9 * 12 * 9);
    }

    #[test]
    fn placements_cover_all_tiers() {
        let broker = BrokerService::new(extended::hybrid_catalog());
        let meta = broker.recommend_metacloud(&request()).unwrap();
        assert_eq!(meta.placements().len(), 3);
        for (placement, kind) in meta.placements().iter().zip(ComponentKind::paper_tiers()) {
            assert_eq!(placement.component, kind);
        }
        assert!(!meta.clouds_used().is_empty());
        // Total placement cost equals the evaluation's C_HA.
        let total: MoneyPerMonth = meta.placements().iter().map(|p| p.monthly_cost).sum();
        assert_eq!(total, meta.evaluation().tco().ha_cost());
    }

    #[test]
    fn restricting_clouds_restricts_placements() {
        let broker = BrokerService::new(extended::hybrid_catalog());
        let req = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .cloud(extended::stratus_id())
            .build()
            .unwrap();
        let meta = broker.recommend_metacloud(&req).unwrap();
        assert_eq!(meta.clouds_used(), &[extended::stratus_id()]);
    }

    #[test]
    fn unknown_cloud_rejected() {
        let broker = BrokerService::new(case_study::catalog());
        let req = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .cloud(CloudId::new("ghost"))
            .build()
            .unwrap();
        assert!(matches!(
            broker.recommend_metacloud(&req),
            Err(BrokerError::UnknownCloud { .. })
        ));
    }

    #[test]
    fn serde_roundtrip() {
        let broker = BrokerService::new(extended::hybrid_catalog());
        let meta = broker.recommend_metacloud(&request()).unwrap();
        let json = serde_json::to_string(&meta).unwrap();
        let back: MetacloudRecommendation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, meta);
    }
}
