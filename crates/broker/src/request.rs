//! Solution requests: what a customer hands the broker (paper §II.C).

use serde::{DeError, Deserialize, Serialize, Value};
use uptime_catalog::{CloudId, ComponentKind, HaMethodId};
use uptime_core::{PenaltyClause, RoundingPolicy, SlaTarget, TcoModel};

use crate::error::BrokerError;

/// A customer's intake to the brokered service:
///
/// 1. the base architecture as an ordered serial chain of component tiers,
/// 2. the uptime SLA and the contractual slippage penalty, and
/// 3. the clouds to consider (empty = every cloud the broker fronts),
///
/// optionally with the customer's current ("as-is") HA choices so the
/// recommendation can quote savings (the paper's Fig. 10 comparison).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SolutionRequest {
    tiers: Vec<ComponentKind>,
    sla: SlaTarget,
    penalty: PenaltyClause,
    rounding: RoundingPolicy,
    clouds: Vec<CloudId>,
    as_is: Option<Vec<HaMethodId>>,
    topology: Option<String>,
}

// Hand-written so wire clients may omit the optional intake fields:
// `rounding` defaults to the paper-matching ceiling, `clouds` to "all
// known", `as_is` to none. A request spelled with or without those keys
// deserializes to the same value — which is what lets the serving layer's
// canonical fingerprint treat them as the same cache entry.
impl Deserialize for SolutionRequest {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let object = value
            .as_object()
            .ok_or_else(|| DeError::expected("a solution-request object", value))?;
        let field = |name: &str| object.get(name).unwrap_or(&Value::Null);
        let tiers =
            Vec::<ComponentKind>::from_value(field("tiers")).map_err(|e| e.in_field("tiers"))?;
        let sla = SlaTarget::from_value(field("sla")).map_err(|e| e.in_field("sla"))?;
        let penalty =
            PenaltyClause::from_value(field("penalty")).map_err(|e| e.in_field("penalty"))?;
        let rounding = match field("rounding") {
            Value::Null => RoundingPolicy::default(),
            other => RoundingPolicy::from_value(other).map_err(|e| e.in_field("rounding"))?,
        };
        let clouds = match field("clouds") {
            Value::Null => Vec::new(),
            other => Vec::<CloudId>::from_value(other).map_err(|e| e.in_field("clouds"))?,
        };
        let as_is = Option::<Vec<HaMethodId>>::from_value(field("as_is"))
            .map_err(|e| e.in_field("as_is"))?;
        let topology =
            Option::<String>::from_value(field("topology")).map_err(|e| e.in_field("topology"))?;
        Ok(SolutionRequest {
            tiers,
            sla,
            penalty,
            rounding,
            clouds,
            as_is,
            topology,
        })
    }
}

impl SolutionRequest {
    /// Starts building a request.
    #[must_use]
    pub fn builder() -> SolutionRequestBuilder {
        SolutionRequestBuilder::default()
    }

    /// The serial tiers, in order.
    #[must_use]
    pub fn tiers(&self) -> &[ComponentKind] {
        &self.tiers
    }

    /// The SLA target.
    #[must_use]
    pub fn sla(&self) -> SlaTarget {
        self.sla
    }

    /// The penalty clause.
    #[must_use]
    pub fn penalty(&self) -> &PenaltyClause {
        &self.penalty
    }

    /// The slippage-hour rounding policy.
    #[must_use]
    pub fn rounding(&self) -> RoundingPolicy {
        self.rounding
    }

    /// Clouds to consider; empty means "all known".
    #[must_use]
    pub fn clouds(&self) -> &[CloudId] {
        &self.clouds
    }

    /// The customer's current HA choice per tier, if provided.
    #[must_use]
    pub fn as_is(&self) -> Option<&[HaMethodId]> {
        self.as_is.as_deref()
    }

    /// The requested deployment-archetype topology (e.g. `"regional"`),
    /// if any. When set, the broker searches the archetype's
    /// series–parallel composition space instead of the serial chain.
    #[must_use]
    pub fn topology(&self) -> Option<&str> {
        self.topology.as_deref()
    }

    /// The contract as a [`TcoModel`].
    #[must_use]
    pub fn tco_model(&self) -> TcoModel {
        TcoModel::with_rounding(self.sla, self.penalty.clone(), self.rounding)
    }
}

/// Builder for [`SolutionRequest`].
#[derive(Debug, Clone, Default)]
pub struct SolutionRequestBuilder {
    tiers: Vec<ComponentKind>,
    sla: Option<SlaTarget>,
    penalty: Option<PenaltyClause>,
    rounding: RoundingPolicy,
    clouds: Vec<CloudId>,
    as_is: Option<Vec<HaMethodId>>,
    topology: Option<String>,
}

impl SolutionRequestBuilder {
    /// Appends one tier to the serial chain.
    #[must_use]
    pub fn tier(mut self, kind: ComponentKind) -> Self {
        self.tiers.push(kind);
        self
    }

    /// Appends many tiers.
    #[must_use]
    pub fn tiers(mut self, kinds: impl IntoIterator<Item = ComponentKind>) -> Self {
        self.tiers.extend(kinds);
        self
    }

    /// Sets the SLA from a percentage.
    ///
    /// # Errors
    ///
    /// Propagates [`uptime_core::ModelError::InvalidSlaTarget`].
    pub fn sla_percent(mut self, percent: f64) -> Result<Self, BrokerError> {
        self.sla = Some(SlaTarget::from_percent(percent)?);
        Ok(self)
    }

    /// Sets a flat per-hour penalty.
    ///
    /// # Errors
    ///
    /// Propagates [`uptime_core::ModelError::InvalidQuantity`].
    pub fn penalty_per_hour(mut self, rate: f64) -> Result<Self, BrokerError> {
        self.penalty = Some(PenaltyClause::per_hour(rate)?);
        Ok(self)
    }

    /// Sets an arbitrary penalty clause.
    #[must_use]
    pub fn penalty(mut self, clause: PenaltyClause) -> Self {
        self.penalty = Some(clause);
        self
    }

    /// Overrides the slippage-hour rounding policy (default: the
    /// paper-matching ceiling).
    #[must_use]
    pub fn rounding(mut self, policy: RoundingPolicy) -> Self {
        self.rounding = policy;
        self
    }

    /// Restricts the search to one cloud (may be called repeatedly).
    #[must_use]
    pub fn cloud(mut self, id: CloudId) -> Self {
        self.clouds.push(id);
        self
    }

    /// Declares the customer's current HA method per tier (same order as
    /// the tiers), enabling the savings comparison.
    #[must_use]
    pub fn as_is(mut self, methods: impl IntoIterator<Item = HaMethodId>) -> Self {
        self.as_is = Some(methods.into_iter().collect());
        self
    }

    /// Requests a deployment-archetype topology (e.g. `"regional"`): the
    /// broker replicates the tiers into that series–parallel shape and
    /// searches the composition space instead of the serial chain.
    #[must_use]
    pub fn topology(mut self, name: impl Into<String>) -> Self {
        self.topology = Some(name.into());
        self
    }

    /// Validates and builds the request.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::InvalidRequest`] when tiers are empty, the
    /// SLA or penalty is missing, or the as-is arity mismatches the tiers.
    pub fn build(self) -> Result<SolutionRequest, BrokerError> {
        if self.tiers.is_empty() {
            return Err(BrokerError::InvalidRequest {
                reason: "at least one tier is required".into(),
            });
        }
        let sla = self.sla.ok_or_else(|| BrokerError::InvalidRequest {
            reason: "an uptime SLA is required".into(),
        })?;
        let penalty = self.penalty.ok_or_else(|| BrokerError::InvalidRequest {
            reason: "a slippage penalty clause is required".into(),
        })?;
        if let Some(as_is) = &self.as_is {
            if as_is.len() != self.tiers.len() {
                return Err(BrokerError::InvalidRequest {
                    reason: format!(
                        "as-is has {} methods for {} tiers",
                        as_is.len(),
                        self.tiers.len()
                    ),
                });
            }
            if self.topology.is_some() {
                return Err(BrokerError::InvalidRequest {
                    reason: "as-is comparison is not supported with a topology archetype".into(),
                });
            }
        }
        Ok(SolutionRequest {
            tiers: self.tiers,
            sla,
            penalty,
            rounding: self.rounding,
            clouds: self.clouds,
            as_is: self.as_is,
            topology: self.topology,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SolutionRequestBuilder {
        SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
    }

    #[test]
    fn happy_path() {
        let r = base().cloud(CloudId::new("softlayer")).build().unwrap();
        assert_eq!(r.tiers().len(), 3);
        assert_eq!(r.sla().as_percent(), 98.0);
        assert_eq!(r.clouds().len(), 1);
        assert!(r.as_is().is_none());
        let model = r.tco_model();
        assert_eq!(model.rounding(), RoundingPolicy::CeilHour);
    }

    #[test]
    fn missing_pieces_rejected() {
        assert!(matches!(
            SolutionRequest::builder().build(),
            Err(BrokerError::InvalidRequest { .. })
        ));
        assert!(matches!(
            SolutionRequest::builder()
                .tier(ComponentKind::Compute)
                .build(),
            Err(BrokerError::InvalidRequest { .. })
        ));
        let no_penalty = SolutionRequest::builder()
            .tier(ComponentKind::Compute)
            .sla_percent(99.0)
            .unwrap();
        assert!(matches!(
            no_penalty.build(),
            Err(BrokerError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn invalid_sla_propagates() {
        assert!(SolutionRequest::builder().sla_percent(0.0).is_err());
        assert!(SolutionRequest::builder().penalty_per_hour(-5.0).is_err());
    }

    #[test]
    fn as_is_arity_checked() {
        let bad = base().as_is(vec![HaMethodId::new("raid1")]).build();
        assert!(matches!(bad, Err(BrokerError::InvalidRequest { .. })));
        let good = base()
            .as_is(vec![
                HaMethodId::new("vmware-ha-3p1"),
                HaMethodId::new("raid1"),
                HaMethodId::new("dual-gw"),
            ])
            .build()
            .unwrap();
        assert_eq!(good.as_is().unwrap().len(), 3);
    }

    #[test]
    fn rounding_override() {
        let r = base().rounding(RoundingPolicy::Exact).build().unwrap();
        assert_eq!(r.tco_model().rounding(), RoundingPolicy::Exact);
    }

    #[test]
    fn serde_roundtrip() {
        let r = base().build().unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: SolutionRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn omitted_optional_fields_default() {
        let full = base().build().unwrap();
        let Value::Object(mut map) = serde_json::to_value(&full) else {
            panic!("requests serialize as objects");
        };
        map.remove("rounding");
        map.remove("clouds");
        map.remove("as_is");
        map.remove("topology");
        let back = SolutionRequest::from_value(&Value::Object(map)).unwrap();
        assert_eq!(back, full, "omitted fields take their defaults");
    }

    #[test]
    fn topology_round_trips_and_defaults_to_none() {
        let plain = base().build().unwrap();
        assert!(plain.topology().is_none());
        let r = base().topology("regional").build().unwrap();
        assert_eq!(r.topology(), Some("regional"));
        let json = serde_json::to_string(&r).unwrap();
        let back: SolutionRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn topology_with_as_is_rejected() {
        let bad = base()
            .topology("regional")
            .as_is(vec![
                HaMethodId::new("vmware-ha-3p1"),
                HaMethodId::new("raid1"),
                HaMethodId::new("dual-gw"),
            ])
            .build();
        assert!(matches!(bad, Err(BrokerError::InvalidRequest { .. })));
    }

    #[test]
    fn missing_required_field_rejected() {
        let full = base().build().unwrap();
        let Value::Object(mut map) = serde_json::to_value(&full) else {
            panic!("requests serialize as objects");
        };
        map.remove("sla");
        assert!(SolutionRequest::from_value(&Value::Object(map)).is_err());
    }
}
