//! The production [`ServeBackend`]: wires [`BrokerService`] into the
//! `uptime-serve` daemon.
//!
//! Two things live here:
//!
//! 1. [`canonical_fingerprint`] — the cache key. It hashes the *parsed*
//!    [`SolutionRequest`], not the client's JSON text, so float formatting
//!    (`98.0` vs `9.8e1`), key order, and omitted defaulted fields all
//!    collapse to one fingerprint, while anything that changes the
//!    optimization problem (tier order, SLA, penalty schedule, rounding,
//!    cloud restriction, as-is baseline) changes it.
//! 2. [`ServingBroker`] — endpoint routing. `recommend` and `metacloud`
//!    are pure functions of `(request, knowledge base)` and therefore
//!    cacheable; `health` and `sync` observe or mutate broker state and
//!    are declared uncacheable via a `None` fingerprint.

use std::sync::Arc;

use serde::Value;
use uptime_catalog::{CloudId, ComponentKind};
use uptime_core::{PenaltyClause, RoundingPolicy};
use uptime_serve::{BackendError, ServeBackend};

use crate::error::BrokerError;
use crate::request::SolutionRequest;
use crate::service::BrokerService;
use crate::slo::FrontierRequest;

/// Version of the `health` payload shape (shared by `brokerctl health
/// --json` and the daemon's `health` endpoint). Bump when the top-level
/// layout changes.
pub const HEALTH_SCHEMA_VERSION: u32 = 1;

/// 128-bit FNV-1a, the canonical-byte hasher behind request fingerprints.
struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    const OFFSET_BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    fn new() -> Self {
        Fnv128 {
            state: Self::OFFSET_BASIS,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u128::from(byte);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Bit-exact float encoding: `to_bits` distinguishes every distinct
    /// f64 (including `-0.0` from `0.0`) and is stable across formatting.
    fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed so `["ab","c"]` and `["a","bc"]` cannot collide.
    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    fn finish(&self) -> u128 {
        self.state
    }
}

/// Computes the canonical fingerprint of `(endpoint, request)`.
///
/// The encoding is order-preserving where order is semantic (tiers,
/// clouds, as-is methods, penalty tiers) and normalizes everything that is
/// not: two JSON spellings that deserialize to the same request always
/// fingerprint identically.
#[must_use]
pub fn canonical_fingerprint(endpoint: &str, request: &SolutionRequest) -> u128 {
    let mut h = Fnv128::new();
    h.write_str("uptime-serve/fingerprint/v1");
    h.write_str(endpoint);

    h.write_u64(request.tiers().len() as u64);
    for kind in request.tiers() {
        h.write_str(kind.label());
    }

    h.write_f64(request.sla().target().value());

    match request.penalty() {
        PenaltyClause::PerHour { rate } => {
            h.write_u8(0);
            h.write_f64(*rate);
        }
        PenaltyClause::Tiered { tiers } => {
            h.write_u8(1);
            h.write_u64(tiers.len() as u64);
            for tier in tiers {
                h.write_f64(tier.up_to_hours);
                h.write_f64(tier.rate);
            }
        }
        // `PenaltyClause` is non-exhaustive; give any future variant a
        // distinct, deterministic encoding via its debug form.
        other => {
            h.write_u8(255);
            h.write_str(&format!("{other:?}"));
        }
    }

    h.write_u8(match request.rounding() {
        RoundingPolicy::Exact => 0,
        RoundingPolicy::NearestHour => 1,
        RoundingPolicy::CeilHour => 2,
    });

    h.write_u64(request.clouds().len() as u64);
    for cloud in request.clouds() {
        h.write_str(cloud.as_str());
    }

    match request.as_is() {
        None => h.write_u8(0),
        Some(methods) => {
            h.write_u8(1);
            h.write_u64(methods.len() as u64);
            for method in methods {
                h.write_str(method.as_str());
            }
        }
    }

    match request.topology() {
        None => h.write_u8(0),
        Some(topology) => {
            h.write_u8(1);
            h.write_str(topology);
        }
    }

    h.finish()
}

/// Computes the canonical fingerprint of a `frontier` request: the
/// envelope's canonical encoding (tiers, derived SLA, penalty, rounding,
/// clouds, topology) extended with every SLO objective's
/// `(metric, mode, weight, threshold)` tuple and the epsilon-dominance
/// margin. Two spec spellings that parse to the same objective list
/// fingerprint identically; any change to the optimization problem —
/// a threshold nudge, a hard/soft flip, a reweighting — does not.
#[must_use]
pub fn frontier_fingerprint(request: &FrontierRequest) -> u128 {
    let mut h = Fnv128::new();
    h.write_str("uptime-serve/fingerprint/frontier/v1");
    h.write(&canonical_fingerprint("frontier", request.base()).to_le_bytes());
    let objectives = request.spec().objectives();
    h.write_u64(objectives.len() as u64);
    for objective in objectives {
        h.write_u8(objective.metric().tag());
        h.write_u8(objective.mode().tag());
        h.write_f64(objective.weight());
        h.write_f64(objective.threshold());
    }
    h.write_f64(request.spec().epsilon());
    h.finish()
}

/// [`BrokerService`] adapted to the daemon's [`ServeBackend`] interface.
///
/// Endpoints:
///
/// | endpoint    | cacheable | body                                  |
/// |-------------|-----------|---------------------------------------|
/// | `recommend` | yes       | a [`SolutionRequest`]                 |
/// | `metacloud` | yes       | a [`SolutionRequest`]                 |
/// | `frontier`  | yes       | a [`FrontierRequest`] (SLO spec)      |
/// | `health`    | no        | ignored                               |
/// | `sync`      | no        | optional `{ "seed": u64 }`            |
///
/// `sync` drives one telemetry round over the configured sync targets and
/// reports the resulting epoch — the serve-layer hook for "new telemetry
/// arrived, recompute on next ask".
pub struct ServingBroker {
    service: Arc<BrokerService>,
    sync_targets: Vec<(CloudId, Vec<ComponentKind>)>,
    flight_recorder: Option<Arc<uptime_obs::FlightRecorder>>,
    serve_core: Option<&'static str>,
}

impl ServingBroker {
    /// Fronts the given service with no sync targets (the `sync` endpoint
    /// becomes a no-op reporting the current epoch).
    #[must_use]
    pub fn new(service: Arc<BrokerService>) -> Self {
        ServingBroker {
            service,
            sync_targets: Vec::new(),
            flight_recorder: None,
            serve_core: None,
        }
    }

    /// Declares which `(cloud, components)` pairs one `sync` round
    /// harvests; the clouds must have registered providers.
    #[must_use]
    pub fn with_sync_targets(mut self, targets: Vec<(CloudId, Vec<ComponentKind>)>) -> Self {
        self.sync_targets = targets;
        self
    }

    /// Shares the daemon's flight recorder so `health` can report ring
    /// occupancy alongside broker health. (Broker spans attach to the
    /// request trace through [`ServeBackend::handle_traced`] regardless;
    /// this only feeds the health payload.)
    #[must_use]
    pub fn with_flight_recorder(mut self, recorder: Arc<uptime_obs::FlightRecorder>) -> Self {
        self.flight_recorder = Some(recorder);
        self
    }

    /// Declares which serving core (`"threads"` or `"reactor"`) fronts
    /// this backend, so `health` can report it alongside broker health.
    #[must_use]
    pub fn with_serve_core(mut self, core: &'static str) -> Self {
        self.serve_core = Some(core);
        self
    }

    /// The wrapped service.
    #[must_use]
    pub fn service(&self) -> &Arc<BrokerService> {
        &self.service
    }

    fn parse_request(body: &Value) -> Result<SolutionRequest, BackendError> {
        serde_json::from_value(body).map_err(|err| BackendError::BadRequest(err.to_string()))
    }

    fn parse_frontier(body: &Value) -> Result<FrontierRequest, BackendError> {
        serde_json::from_value(body).map_err(|err| BackendError::BadRequest(err.to_string()))
    }

    fn health_body(&self) -> Value {
        let trace = match &self.flight_recorder {
            Some(recorder) => {
                let stats = recorder.stats();
                serde_json::json!({
                    "enabled": true,
                    "capacity": stats.capacity,
                    "occupancy": stats.occupancy,
                    "completed": stats.completed,
                    "recorded": stats.recorded,
                    "sampled_out": stats.sampled_out,
                    "evicted": stats.evicted,
                    "unwound": stats.unwound,
                })
            }
            None => serde_json::json!({
                "enabled": false,
                "capacity": 0,
                "occupancy": 0,
                "completed": 0,
                "recorded": 0,
                "sampled_out": 0,
                "evicted": 0,
                "unwound": 0,
            }),
        };
        let mut body = serde_json::json!({
            "schema_version": HEALTH_SCHEMA_VERSION,
            "epoch": self.service.telemetry_epoch(),
            "health": self.service.health(),
            "incidents": self.service.incidents(),
            "trace": trace,
        });
        if let (Some(core), Value::Object(map)) = (self.serve_core, &mut body) {
            map.insert("serve".to_owned(), serde_json::json!({ "core": core }));
        }
        body
    }

    fn sync_body(
        &self,
        body: &Value,
        parent: &uptime_obs::TraceSpan,
    ) -> Result<Value, BackendError> {
        let seed = match body.get("seed") {
            None | Some(Value::Null) => 7,
            Some(value) => value
                .as_u64()
                .ok_or_else(|| BackendError::BadRequest("`seed` must be a u64".into()))?,
        };
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for (cloud, kinds) in &self.sync_targets {
            for (k, kind) in kinds.iter().enumerate() {
                match self.service.sync_telemetry_traced(
                    cloud,
                    *kind,
                    20,
                    5.0,
                    seed.wrapping_add(k as u64 * 31),
                    parent,
                ) {
                    Ok(_) => accepted += 1,
                    Err(_) => rejected += 1,
                }
            }
        }
        Ok(serde_json::json!({
            "epoch": self.service.telemetry_epoch(),
            "accepted": accepted,
            "rejected": rejected,
        }))
    }
}

/// Maps domain failures onto wire error classes: request-shaped problems
/// are the client's fault, everything else is the broker's.
fn classify(err: &BrokerError) -> BackendError {
    match err {
        BrokerError::InvalidRequest { .. }
        | BrokerError::UnknownCloud { .. }
        | BrokerError::NoCandidates
        | BrokerError::SloSpec { .. }
        | BrokerError::SloInfeasible { .. } => BackendError::BadRequest(err.to_string()),
        other => BackendError::Internal(other.to_string()),
    }
}

impl ServeBackend for ServingBroker {
    fn epoch(&self) -> u64 {
        self.service.telemetry_epoch()
    }

    fn fingerprint(&self, endpoint: &str, body: &Value) -> Result<Option<u128>, BackendError> {
        match endpoint {
            "recommend" | "metacloud" => {
                let request = Self::parse_request(body)?;
                Ok(Some(canonical_fingerprint(endpoint, &request)))
            }
            "frontier" => {
                let request = Self::parse_frontier(body)?;
                Ok(Some(frontier_fingerprint(&request)))
            }
            "health" | "sync" => Ok(None),
            other => Err(BackendError::UnknownEndpoint(other.to_owned())),
        }
    }

    fn handle(&self, endpoint: &str, body: &Value) -> Result<Value, BackendError> {
        self.handle_traced(endpoint, body, &uptime_obs::TraceSpan::disabled())
    }

    fn handle_traced(
        &self,
        endpoint: &str,
        body: &Value,
        parent: &uptime_obs::TraceSpan,
    ) -> Result<Value, BackendError> {
        match endpoint {
            "recommend" => {
                let request = Self::parse_request(body)?;
                let recommendation = self
                    .service
                    .recommend_traced(&request, parent)
                    .map_err(|e| classify(&e))?;
                Ok(serde_json::to_value(&recommendation))
            }
            "metacloud" => {
                let request = Self::parse_request(body)?;
                let recommendation = self
                    .service
                    .recommend_metacloud_traced(&request, parent)
                    .map_err(|e| classify(&e))?;
                Ok(serde_json::to_value(&recommendation))
            }
            "frontier" => {
                let request = Self::parse_frontier(body)?;
                let report = self
                    .service
                    .solve_slo_traced(&request, parent)
                    .map_err(|e| classify(&e))?;
                Ok(serde_json::to_value(&report))
            }
            "health" => Ok(self.health_body()),
            "sync" => self.sync_body(body, parent),
            other => Err(BackendError::UnknownEndpoint(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;
    use uptime_catalog::{case_study, HaMethodId};

    fn request(percent: f64) -> SolutionRequest {
        SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(percent)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn equal_requests_fingerprint_identically() {
        assert_eq!(
            canonical_fingerprint("recommend", &request(98.0)),
            canonical_fingerprint("recommend", &request(98.0))
        );
    }

    #[test]
    fn sla_and_endpoint_discriminate() {
        let base = canonical_fingerprint("recommend", &request(98.0));
        assert_ne!(base, canonical_fingerprint("recommend", &request(98.5)));
        assert_ne!(base, canonical_fingerprint("metacloud", &request(98.0)));
    }

    #[test]
    fn cloud_order_is_semantic_but_json_spelling_is_not() {
        let ab: SolutionRequest = serde_json::from_str(
            &serde_json::to_string(&{
                SolutionRequest::builder()
                    .tiers(ComponentKind::paper_tiers())
                    .sla_percent(98.0)
                    .unwrap()
                    .penalty_per_hour(100.0)
                    .unwrap()
                    .cloud(CloudId::new("a"))
                    .cloud(CloudId::new("b"))
                    .build()
                    .unwrap()
            })
            .unwrap(),
        )
        .unwrap();
        let ba = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .cloud(CloudId::new("b"))
            .cloud(CloudId::new("a"))
            .build()
            .unwrap();
        let ab_direct = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .cloud(CloudId::new("a"))
            .cloud(CloudId::new("b"))
            .build()
            .unwrap();
        assert_eq!(
            canonical_fingerprint("recommend", &ab),
            canonical_fingerprint("recommend", &ab_direct),
            "serde roundtrip preserves the fingerprint"
        );
        assert_ne!(
            canonical_fingerprint("recommend", &ab),
            canonical_fingerprint("recommend", &ba),
            "cloud preference order is part of the request"
        );
    }

    #[test]
    fn as_is_discriminates() {
        let with = SolutionRequest::builder()
            .tiers(ComponentKind::paper_tiers())
            .sla_percent(98.0)
            .unwrap()
            .penalty_per_hour(100.0)
            .unwrap()
            .as_is(vec![
                HaMethodId::new("vmware-ha-3p1"),
                HaMethodId::new("raid1"),
                HaMethodId::new("dual-gw"),
            ])
            .build()
            .unwrap();
        assert_ne!(
            canonical_fingerprint("recommend", &request(98.0)),
            canonical_fingerprint("recommend", &with)
        );
    }

    #[test]
    fn topology_discriminates() {
        let archetype = |name: &str| {
            SolutionRequest::builder()
                .tiers(ComponentKind::paper_tiers())
                .sla_percent(98.0)
                .unwrap()
                .penalty_per_hour(100.0)
                .unwrap()
                .topology(name)
                .build()
                .unwrap()
        };
        // A serial request and every archetype must all cache separately.
        let serial = canonical_fingerprint("recommend", &request(98.0));
        let zonal = canonical_fingerprint("recommend", &archetype("zonal"));
        let regional = canonical_fingerprint("recommend", &archetype("regional"));
        assert_ne!(serial, zonal, "archetype requests answer differently");
        assert_ne!(zonal, regional, "each shape is its own cache entry");
        // Same topology spelled identically still coalesces.
        assert_eq!(
            regional,
            canonical_fingerprint("recommend", &archetype("regional"))
        );
    }

    #[test]
    fn backend_routes_and_classifies() {
        let service = Arc::new(BrokerService::new(case_study::catalog()));
        let backend = ServingBroker::new(service);
        // Cacheable endpoints fingerprint; admin endpoints do not.
        let body = serde_json::to_value(&request(98.0));
        assert!(backend.fingerprint("recommend", &body).unwrap().is_some());
        assert!(backend
            .fingerprint("health", &Value::Null)
            .unwrap()
            .is_none());
        assert!(matches!(
            backend.fingerprint("nope", &Value::Null),
            Err(BackendError::UnknownEndpoint(_))
        ));
        // A garbage body is the client's fault.
        assert!(matches!(
            backend.fingerprint("recommend", &serde_json::json!({"tiers": 3})),
            Err(BackendError::BadRequest(_))
        ));
        // The happy path answers with the same payload `recommend` gives.
        let direct = backend.service().recommend(&request(98.0)).unwrap();
        let served = backend.handle("recommend", &body).unwrap();
        assert_eq!(served, serde_json::to_value(&direct));
    }

    fn frontier_body(threshold: f64, weight: f64) -> Value {
        serde_json::json!({
            "tiers": ["Compute", "Storage", "NetworkGateway"],
            "penalty": { "PerHour": { "rate": 100.0 } },
            "slo": { "objectives": [
                { "metric": "uptime", "threshold": threshold, "mode": "hard" },
                { "metric": "cost", "threshold": 1500.0, "mode": "soft", "weight": weight },
            ] },
        })
    }

    #[test]
    fn frontier_fingerprint_tracks_the_spec() {
        let parse = |v: &Value| FrontierRequest::from_value(v).unwrap();
        let base = frontier_fingerprint(&parse(&frontier_body(98.0, 2.0)));
        assert_eq!(
            base,
            frontier_fingerprint(&parse(&frontier_body(98.0, 2.0))),
            "equal specs coalesce"
        );
        assert_ne!(
            base,
            frontier_fingerprint(&parse(&frontier_body(99.0, 2.0))),
            "threshold is part of the problem"
        );
        assert_ne!(
            base,
            frontier_fingerprint(&parse(&frontier_body(98.0, 3.0))),
            "soft weight is part of the problem"
        );
        let Value::Object(mut with_eps) = frontier_body(98.0, 2.0) else {
            unreachable!()
        };
        let Some(Value::Object(slo)) = with_eps.get_mut("slo") else {
            unreachable!()
        };
        slo.insert("epsilon".into(), serde_json::json!(0.5));
        assert_ne!(
            base,
            frontier_fingerprint(&parse(&Value::Object(with_eps))),
            "epsilon is part of the problem"
        );
    }

    #[test]
    fn frontier_endpoint_routes_and_classifies() {
        let service = Arc::new(BrokerService::new(case_study::catalog()));
        let backend = ServingBroker::new(service);
        let body = frontier_body(98.0, 2.0);
        assert!(backend.fingerprint("frontier", &body).unwrap().is_some());

        // Served bytes equal the direct service answer.
        let request = FrontierRequest::from_value(&body).unwrap();
        let direct = backend.service().solve_slo(&request).unwrap();
        let served = backend.handle("frontier", &body).unwrap();
        assert_eq!(served, serde_json::to_value(&direct));

        // A bad spec is the client's fault, at fingerprint time already.
        let bad = serde_json::json!({
            "tiers": ["Compute"],
            "penalty": { "PerHour": { "rate": 100.0 } },
            "slo": { "objectives": [] },
        });
        assert!(matches!(
            backend.fingerprint("frontier", &bad),
            Err(BackendError::BadRequest(_))
        ));

        // Infeasible hard constraints classify as a bad request too.
        let infeasible = serde_json::json!({
            "tiers": ["Compute", "Storage", "NetworkGateway"],
            "penalty": { "PerHour": { "rate": 100.0 } },
            "slo": { "objectives": [
                { "metric": "uptime", "threshold": 99.999, "mode": "hard" },
                { "metric": "cost", "threshold": 1.0, "mode": "hard" },
            ] },
        });
        assert!(matches!(
            backend.handle("frontier", &infeasible),
            Err(BackendError::BadRequest(_))
        ));
    }

    #[test]
    fn sync_without_targets_reports_epoch() {
        let service = Arc::new(BrokerService::new(case_study::catalog()));
        let backend = ServingBroker::new(service);
        let out = backend.handle("sync", &Value::Null).unwrap();
        assert_eq!(out.get("accepted").and_then(Value::as_u64), Some(0));
        assert_eq!(out.get("epoch").and_then(Value::as_u64), Some(0));
    }
}
