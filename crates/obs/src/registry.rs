//! A concrete [`Recorder`]: lock-cheap counters, gauges, and fixed-bucket
//! histograms, plus the event ring.
//!
//! Registration (first touch of a metric name) takes a write lock on the
//! relevant map; every later touch takes a read lock and performs one
//! atomic operation. Maps are `BTreeMap`s so snapshots iterate in sorted
//! name order — deterministic exporter output for a deterministic run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::recorder::Recorder;
use crate::ring::{EventRecord, EventRing};

/// Version stamp embedded in every exported snapshot (and mirrored by
/// `schemas/obs_snapshot.schema.json`). Bump on breaking shape changes.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Number of exponential histogram buckets: bucket `i` counts samples with
/// `value <= 2^i`, `i` in `0..HISTOGRAM_BUCKETS`; larger samples land in
/// the implicit `+Inf` overflow. `2^39` ns ≈ 9 minutes, comfortably above
/// any span this workspace times, and the same bounds serve millisecond
/// and plain-count histograms.
const HISTOGRAM_BUCKETS: usize = 40;

/// The default bucket upper bounds (`le` values) shared by every
/// histogram: `1, 2, 4, …, 2^39`.
pub const DEFAULT_NS_BUCKETS: usize = HISTOGRAM_BUCKETS;

/// One histogram: per-bucket counts plus running count/sum/min/max.
#[derive(Debug)]
struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// f64 bit-patterns maintained with CAS loops; histogram recording is
    /// per-phase, not per-variant, so contention is negligible.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn record(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let value = value.max(0.0);
        if let Some(i) = bucket_index(value) {
            self.buckets[i].fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        fold_f64(&self.sum_bits, |s| s + value);
        fold_f64(&self.min_bits, |m| m.min(value));
        fold_f64(&self.max_bits, |m| m.max(value));
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let (min, max) = if count == 0 { (0.0, 0.0) } else { (min, max) };
        let quantile = |q: f64| estimate_quantile(&counts, count, q, min, max);
        // Cumulative `le` buckets, non-empty prefix trimmed to the last
        // occupied bucket (the exporter adds the +Inf bucket itself).
        let mut cumulative = Vec::new();
        let mut acc = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            acc += c;
            cumulative.push((bucket_bound(i), acc));
        }
        while cumulative.last().is_some_and(|&(_, c)| c == acc)
            && cumulative.len() > 1
            && cumulative[cumulative.len() - 2].1 == acc
        {
            cumulative.pop();
        }
        HistogramSnapshot {
            name: name.to_owned(),
            count,
            sum,
            min,
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            buckets: cumulative,
        }
    }
}

/// CAS-folds a new f64 into an atomic bit store.
fn fold_f64(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut current = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(current)).to_bits();
        match bits.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Bucket index for a sample, or `None` for the implicit overflow bucket.
fn bucket_index(value: f64) -> Option<usize> {
    (0..HISTOGRAM_BUCKETS).find(|&i| value <= bucket_bound(i))
}

/// Upper bound (`le`) of bucket `i`: `2^i`.
fn bucket_bound(i: usize) -> f64 {
    (1u64 << i) as f64
}

/// Bucket-walk quantile estimate: the upper bound of the first bucket
/// whose cumulative count reaches `q`, clamped into the observed
/// `[min, max]` range (exact for the tails a fixed-bucket histogram can
/// resolve; ±1 bucket like any Prometheus-style histogram).
fn estimate_quantile(counts: &[u64], total: u64, q: f64, min: f64, max: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut acc = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        acc += c;
        if acc >= rank {
            return bucket_bound(i).clamp(min, max);
        }
    }
    max
}

/// A point-in-time, alphabetically-ordered copy of everything a
/// [`MetricsRegistry`] holds.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Schema stamp ([`SNAPSHOT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// The event ring's contents, oldest first.
    pub events: Vec<EventRecord>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, if it was ever touched.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The value of gauge `name`, if it was ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// The histogram named `name`, if it ever recorded a sample.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|h| h.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i])
    }

    /// Counter deltas since `earlier`: every counter whose value grew,
    /// with how much it grew by, sorted by name. Counters absent from
    /// `earlier` count from zero; counters that did not move are omitted
    /// — the diffing layer behind `brokerctl obs --watch`.
    #[must_use]
    pub fn counter_deltas(&self, earlier: &MetricsSnapshot) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter_map(|(name, now)| {
                let before = earlier.counter(name).unwrap_or(0);
                (*now > before).then(|| (name.clone(), now - before))
            })
            .collect()
    }
}

/// Exported state of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name (`layer.subsystem.name`).
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Estimated 50th percentile.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Cumulative `(le, count)` buckets, trailing saturated buckets
    /// trimmed; the `+Inf` bucket is implicit (`count`).
    pub buckets: Vec<(f64, u64)>,
}

/// The workspace's standard recorder.
///
/// Thread-safe; share it as `Arc<MetricsRegistry>` (it is also usable as
/// `Arc<dyn Recorder>` / `&dyn Recorder`).
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    events: EventRing,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry with the default (256-entry) event ring.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            events: EventRing::new(256),
        }
    }

    /// An empty registry whose event ring keeps at most `capacity`
    /// entries.
    #[must_use]
    pub fn with_event_capacity(capacity: usize) -> Self {
        MetricsRegistry {
            events: EventRing::new(capacity),
            ..MetricsRegistry::new()
        }
    }

    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(cell) = self.counters.read().expect("lock poisoned").get(name) {
            return Arc::clone(cell);
        }
        Arc::clone(
            self.counters
                .write()
                .expect("lock poisoned")
                .entry(name.to_owned())
                .or_default(),
        )
    }

    fn gauge_cell(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(cell) = self.gauges.read().expect("lock poisoned").get(name) {
            return Arc::clone(cell);
        }
        Arc::clone(
            self.gauges
                .write()
                .expect("lock poisoned")
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
        )
    }

    fn histogram_cell(&self, name: &str) -> Arc<Histogram> {
        if let Some(cell) = self.histograms.read().expect("lock poisoned").get(name) {
            return Arc::clone(cell);
        }
        Arc::clone(
            self.histograms
                .write()
                .expect("lock poisoned")
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Copies out every metric and the event ring.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("lock poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("lock poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), f64::from_bits(cell.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("lock poisoned")
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        MetricsSnapshot {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            counters,
            gauges,
            histograms,
            events: self.events.drain_copy(),
        }
    }
}

impl Recorder for MetricsRegistry {
    fn counter_add(&self, name: &str, delta: u64) {
        self.counter_cell(name).fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.gauge_cell(name)
            .store(value.to_bits(), Ordering::Relaxed);
    }

    fn observe(&self, name: &str, value: f64) {
        self.histogram_cell(name).record(value);
    }

    fn event(&self, name: &str, detail: &str) {
        self.events.push(name, detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::new();
        r.counter_add("a.b.c", 2);
        r.counter_add("a.b.c", 3);
        r.counter_add("x.y.z", 1);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.b.c"), Some(5));
        assert_eq!(snap.counter("x.y.z"), Some(1));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.schema_version, SNAPSHOT_SCHEMA_VERSION);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = MetricsRegistry::new();
        r.gauge_set("g", 1.5);
        r.gauge_set("g", -2.25);
        assert_eq!(r.snapshot().gauge("g"), Some(-2.25));
    }

    #[test]
    fn histogram_counts_sum_and_extremes() {
        let r = MetricsRegistry::new();
        for v in [1.0, 2.0, 3.0, 100.0] {
            r.observe("h", v);
        }
        let snap = r.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 4);
        assert!((h.sum - 106.0).abs() < 1e-9);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!(h.p50 >= 1.0 && h.p50 <= 4.0, "p50 {}", h.p50);
        assert!(h.p99 <= 128.0 && h.p99 >= 64.0, "p99 {}", h.p99);
    }

    #[test]
    fn histogram_quantiles_bracket_uniform_samples() {
        let r = MetricsRegistry::new();
        for v in 1..=1000 {
            r.observe("u", f64::from(v));
        }
        let snap = r.snapshot();
        let h = snap.histogram("u").unwrap();
        // Power-of-two buckets: p50 of U(1,1000) is ~500, resolved to the
        // bucket bound 512; p95 → 1000-clamped bound.
        assert_eq!(h.count, 1000);
        assert!(h.p50 >= 256.0 && h.p50 <= 1000.0, "p50 {}", h.p50);
        assert!(h.p95 >= h.p50, "p95 {} < p50 {}", h.p95, h.p50);
        assert!(h.p99 >= h.p95);
        assert!(h.p99 <= h.max);
    }

    #[test]
    fn histogram_ignores_non_finite_and_clamps_negative() {
        let r = MetricsRegistry::new();
        r.observe("h", f64::NAN);
        r.observe("h", f64::INFINITY);
        r.observe("h", -5.0);
        let snap = r.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 1, "only the clamped negative sample counts");
        assert_eq!(h.min, 0.0);
    }

    #[test]
    fn empty_histogram_absent_from_snapshot() {
        let r = MetricsRegistry::new();
        assert!(r.snapshot().histogram("never").is_none());
    }

    #[test]
    fn buckets_are_cumulative_and_trimmed() {
        let r = MetricsRegistry::new();
        r.observe("h", 1.0);
        r.observe("h", 3.0);
        let snap = r.snapshot();
        let h = snap.histogram("h").unwrap();
        let mut last = 0;
        for &(le, c) in &h.buckets {
            assert!(le > 0.0);
            assert!(c >= last, "cumulative counts never decrease");
            last = c;
        }
        assert_eq!(last, h.count);
        // Trimmed: nowhere near 40 buckets for samples <= 4.
        assert!(h.buckets.len() <= 4, "{:?}", h.buckets);
    }

    #[test]
    fn events_flow_into_snapshot() {
        let r = MetricsRegistry::new();
        r.event("breaker.opened", "softlayer");
        r.event("quarantine.rejected", "nan in trace");
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].name, "breaker.opened");
        assert_eq!(snap.events[1].seq, 1);
    }

    #[test]
    fn default_span_implementation_lands_in_histogram() {
        let r = MetricsRegistry::new();
        r.span_ns("layer.op", 1500);
        let snap = r.snapshot();
        assert_eq!(snap.counter("layer.op.calls"), Some(1));
        assert_eq!(snap.histogram("layer.op.ns").unwrap().count, 1);
    }

    #[test]
    fn concurrent_counter_adds_do_not_lose_updates() {
        let r = std::sync::Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    r.counter_add("contended", 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.snapshot().counter("contended"), Some(8000));
    }

    #[test]
    fn counter_deltas_report_growth_only() {
        let r = MetricsRegistry::new();
        r.counter_add("a", 3);
        r.counter_add("b", 1);
        let before = r.snapshot();
        r.counter_add("a", 2);
        r.counter_add("c", 7);
        let after = r.snapshot();
        assert_eq!(
            after.counter_deltas(&before),
            vec![("a".to_owned(), 2), ("c".to_owned(), 7)],
            "unchanged counters are omitted, new ones count from zero"
        );
        assert!(after.counter_deltas(&after).is_empty());
    }
}
