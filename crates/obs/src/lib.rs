//! # uptime-obs
//!
//! Zero-dependency observability for the uptime broker: a lock-cheap
//! metrics registry, wall-clock span timers, and a structured event ring
//! buffer, all behind a [`Recorder`] trait whose no-op default makes
//! instrumented hot paths cost nothing when observability is disabled.
//!
//! The crate is deliberately std-only (not even the vendored workspace
//! dependencies) so that every layer — core math, optimizer engines, the
//! simulator, the broker control plane, the CLI — can depend on it without
//! dragging anything into its hot loops.
//!
//! ## Architecture
//!
//! * [`Recorder`] — the sink trait. All methods have no-op defaults;
//!   [`NoopRecorder`] is a zero-sized type whose calls compile away.
//!   Instrumented code accumulates counts *locally* inside hot loops and
//!   flushes through the trait once per phase, so even dynamic dispatch
//!   costs a handful of calls per search, not per variant.
//! * [`MetricsRegistry`] — a concrete recorder: monotonic counters,
//!   last-write-wins gauges, and fixed-bucket histograms with
//!   p50/p95/p99 estimation. Counter/histogram touches after the first
//!   take a read lock plus one atomic op.
//! * [`span!`] — a scope timer. The guard records elapsed wall-clock
//!   nanoseconds into `<name>.ns` (histogram) and bumps `<name>.calls`
//!   when dropped; nesting is expressed through dotted metric names.
//! * [`EventRing`] — a bounded ring of structured events (breaker
//!   transitions, quarantine verdicts, …) for "what just happened"
//!   debugging without unbounded memory.
//! * [`export`] — renders a [`MetricsSnapshot`] as a JSON document or in
//!   Prometheus text exposition format (`brokerctl obs --json|--prom`).
//!
//! ## Naming convention
//!
//! Metric names are `layer.subsystem.name` — e.g.
//! `optimizer.fast.variants`, `broker.sync.attempts`,
//! `sim.events.processed`. Span metrics append a suffix: `<span>.ns` and
//! `<span>.calls`. The convention is documented in DESIGN.md §10 and is
//! load-bearing for the Prometheus exporter, which rewrites dots to
//! underscores and prefixes `uptime_`.
//!
//! ## Example
//!
//! ```
//! use uptime_obs::{MetricsRegistry, Recorder};
//!
//! let registry = MetricsRegistry::new();
//! registry.counter_add("broker.sync.retries", 3);
//! registry.observe("broker.sync.attempts", 2.0);
//! {
//!     let _span = uptime_obs::span!(&registry, "optimizer.fast.search");
//!     // ... timed work ...
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("broker.sync.retries"), Some(3));
//! assert_eq!(snapshot.counter("optimizer.fast.search.calls"), Some(1));
//! let json = uptime_obs::export::to_json(&snapshot);
//! assert!(json.contains("\"broker.sync.retries\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
mod recorder;
mod registry;
mod ring;
mod span;
pub mod trace;

pub use recorder::{NoopRecorder, Recorder, NOOP};
pub use registry::{
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot, DEFAULT_NS_BUCKETS,
    SNAPSHOT_SCHEMA_VERSION,
};
pub use ring::{EventRecord, EventRing};
pub use span::SpanGuard;
pub use trace::{
    trace_seed_from_bytes, trace_seed_from_fingerprint, traces_to_chrome, traces_to_json,
    ActiveTrace, FlightRecorder, RecorderStats, TraceConfig, TraceContext, TraceOutcome,
    TraceRecord, TraceSpan, TRACE_SCHEMA_VERSION,
};
