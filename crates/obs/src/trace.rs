//! Request-scoped hierarchical tracing and the flight recorder.
//!
//! Where [`crate::span!`] aggregates flat wall-clock histograms across
//! *all* requests, this module answers the per-request question: what did
//! *this* frame spend its time on? A trace is born at the serve frame
//! boundary ([`FlightRecorder::begin`]), its id seeded deterministically
//! from the request fingerprint (same request → same trace id, so tests
//! replay bit-identically), and a tree of [`TraceSpan`]s is threaded by
//! reference down through cache, single-flight, broker, durability, and
//! the optimizer engines. Each span records its start offset, duration,
//! and attributes (engine counters, cache verdicts) when its guard drops —
//! drops may happen out of order or during a panic unwind; the tree is
//! reconstructed from parent ids at finish, so neither hurts.
//!
//! Completed traces land in the [`FlightRecorder`]: a bounded ring with
//! **tail-sampling** — the keep/drop decision happens *after* the trace
//! completes, so the interesting ones (errors, sheds, slow-over-threshold)
//! are always kept and only boring fast successes are probabilistically
//! thinned ([`TraceConfig::sample_one_in`]). The sampling coin is
//! `splitmix64(trace_id)`, not a real RNG, so a given request is either
//! always or never sampled — deterministic for tests.
//!
//! Everything is exported two ways: a schema'd JSON document
//! ([`traces_to_json`], `schemas/trace.schema.json`) and Chrome
//! `trace_event` format ([`traces_to_chrome`]) loadable in
//! `about:tracing` / Perfetto.
//!
//! Disabled tracing is free-ish: [`TraceSpan::disabled`] is an
//! `Option::None` wrapper whose child/attr calls are no-ops, so the
//! `*_recorded` optimizer wrappers keep their <5% no-op overhead budget.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::export::{json_number, json_string};

/// Version of the trace export document (`schemas/trace.schema.json`).
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// SplitMix64 — the workspace-standard seeded generator, used here to
/// derive trace ids and the deterministic sampling coin.
#[must_use]
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds a 128-bit request fingerprint into the 64-bit trace-id seed.
#[must_use]
pub fn trace_seed_from_fingerprint(fingerprint: u128) -> u64 {
    (fingerprint as u64) ^ ((fingerprint >> 64) as u64)
}

/// FNV-1a over `bytes` — the seed for traces without a fingerprint
/// (uncacheable endpoints), keyed by whatever identifies the request.
#[must_use]
pub fn trace_seed_from_bytes(bytes: &[u8]) -> u64 {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// Tunables for one [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch; disabled recorders hand out inert traces whose
    /// span operations are no-ops and record nothing.
    pub enabled: bool,
    /// Ring capacity: how many completed traces are retained (FIFO
    /// eviction; evictions are counted, never silent).
    pub capacity: usize,
    /// A trace at least this long is always kept, whatever the sampler
    /// says.
    pub slow_threshold_ns: u64,
    /// Keep roughly one in this many fast, successful traces (errors,
    /// sheds, and slow traces are always kept). `1` keeps everything;
    /// `0` is treated as `1`.
    pub sample_one_in: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            capacity: 256,
            slow_threshold_ns: 25_000_000, // 25 ms
            sample_one_in: 1,
        }
    }
}

impl TraceConfig {
    /// A recorder that records nothing and costs (almost) nothing.
    #[must_use]
    pub fn disabled() -> Self {
        TraceConfig {
            enabled: false,
            ..TraceConfig::default()
        }
    }
}

/// How a traced request ended — the always-keep classes of tail-sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Served successfully.
    Ok,
    /// Failed with the given wire code.
    Error(u16),
    /// Shed by admission control.
    Shed,
}

impl TraceOutcome {
    /// The lowercase wire form (matches the serve `status` field).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::Error(_) => "error",
            TraceOutcome::Shed => "shed",
        }
    }
}

/// One span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An integer counter (nodes visited, variants skipped, …).
    U64(u64),
    /// A float measurement.
    F64(f64),
    /// A short label (cache verdict, single-flight role, …).
    Text(String),
    /// A boolean flag.
    Flag(bool),
}

impl AttrValue {
    fn to_json(&self) -> String {
        match self {
            AttrValue::U64(v) => v.to_string(),
            AttrValue::F64(v) => json_number(*v),
            AttrValue::Text(s) => json_string(s),
            AttrValue::Flag(b) => b.to_string(),
        }
    }
}

/// One completed span: a node of the trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span id, unique within the trace; the root is always id `1`.
    pub id: u64,
    /// Parent span id; `0` marks the root.
    pub parent: u64,
    /// Dotted span name, e.g. `serve.execute`, `broker.recommend`.
    pub name: &'static str,
    /// Start offset from the trace's start, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Attributes attached while the span was live.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// The identity of a live span: 64-bit trace id + span id, the pair that
/// would go on the wire if traces ever crossed a process boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The request-scoped trace id (deterministic per fingerprint).
    pub trace_id: u64,
    /// This span's id within the trace.
    pub span_id: u64,
}

/// The per-trace accumulation buffer every span handle points back into.
#[derive(Debug)]
struct TraceBuf {
    trace_id: u64,
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceBuf {
    fn push(&self, record: SpanRecord) {
        // A panic while a span guard is live must not poison the trace:
        // recover the guts and keep recording.
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(record);
    }
}

/// A live span: an RAII guard that records itself into its trace when
/// dropped. Dropping out of order, on another thread, or during a panic
/// unwind is all fine — the tree is rebuilt from parent ids at finish.
///
/// A disabled span ([`TraceSpan::disabled`]) is the no-op form that flows
/// through un-traced call paths; all its operations return immediately.
#[derive(Debug)]
pub struct TraceSpan {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    buf: Arc<TraceBuf>,
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl TraceSpan {
    /// The inert span: children are inert, attributes vanish, drop does
    /// nothing. This is what un-traced call sites pass to `*_recorded`
    /// optimizer wrappers and traced broker entry points.
    #[must_use]
    pub const fn disabled() -> Self {
        TraceSpan { inner: None }
    }

    /// Whether this span actually records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's identity, or `None` when tracing is disabled.
    #[must_use]
    pub fn context(&self) -> Option<TraceContext> {
        self.inner.as_ref().map(|inner| TraceContext {
            trace_id: inner.buf.trace_id,
            span_id: inner.id,
        })
    }

    /// Opens a child span. The returned guard records itself when dropped.
    #[must_use]
    pub fn child(&self, name: &'static str) -> TraceSpan {
        match &self.inner {
            None => TraceSpan::disabled(),
            Some(inner) => TraceSpan {
                inner: Some(SpanInner {
                    buf: Arc::clone(&inner.buf),
                    id: inner.buf.next_id.fetch_add(1, Ordering::Relaxed),
                    parent: inner.id,
                    name,
                    start: Instant::now(),
                    attrs: Vec::new(),
                }),
            },
        }
    }

    /// Records an already-elapsed child span of the given duration ending
    /// now — for phases that finished before the trace existed (queue
    /// wait, for one: the job sat in the admission queue before a worker
    /// picked it up and opened the trace).
    pub fn child_completed_ns(&self, name: &'static str, duration_ns: u64) {
        let Some(inner) = &self.inner else { return };
        let now_ns = offset_ns(&inner.buf, Instant::now());
        inner.buf.push(SpanRecord {
            id: inner.buf.next_id.fetch_add(1, Ordering::Relaxed),
            parent: inner.id,
            name,
            start_ns: now_ns.saturating_sub(duration_ns),
            duration_ns,
            attrs: Vec::new(),
        });
    }

    /// Attaches an integer attribute (engine counters and friends).
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push((key, AttrValue::U64(value)));
        }
    }

    /// Attaches a float attribute.
    pub fn attr_f64(&mut self, key: &'static str, value: f64) {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push((key, AttrValue::F64(value)));
        }
    }

    /// Attaches a short text attribute (cache verdict, role, …).
    pub fn attr_text(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push((key, AttrValue::Text(value.into())));
        }
    }

    /// Attaches a boolean attribute.
    pub fn attr_flag(&mut self, key: &'static str, value: bool) {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push((key, AttrValue::Flag(value)));
        }
    }
}

fn offset_ns(buf: &TraceBuf, at: Instant) -> u64 {
    at.checked_duration_since(buf.epoch)
        .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let start_ns = offset_ns(&inner.buf, inner.start);
        let duration_ns = u64::try_from(inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let buf = Arc::clone(&inner.buf);
        buf.push(SpanRecord {
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            start_ns,
            duration_ns,
            attrs: inner.attrs,
        });
    }
}

/// One completed trace: the span tree plus its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Monotonic completion sequence number (unique per recorder, unlike
    /// the deterministic `trace_id`, which repeats for repeated requests).
    pub seq: u64,
    /// The deterministic request-scoped trace id.
    pub trace_id: u64,
    /// The endpoint the request hit.
    pub endpoint: String,
    /// How the request ended.
    pub outcome: TraceOutcome,
    /// End-to-end wall clock in nanoseconds.
    pub total_ns: u64,
    /// Why tail-sampling kept it: `"error"`, `"shed"`, `"slow"`, or
    /// `"sampled"`.
    pub kept_because: &'static str,
    /// All spans, sorted by `(start_ns, id)`. The root has `parent == 0`.
    pub spans: Vec<SpanRecord>,
}

impl TraceRecord {
    /// The trace id in the canonical 16-hex-digit wire form (JSON numbers
    /// cannot carry a full u64 faithfully).
    #[must_use]
    pub fn trace_id_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// The direct children of span `parent` (in recorded order).
    #[must_use]
    pub fn children_of(&self, parent: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == parent).collect()
    }

    /// The root span, if the trace recorded one.
    #[must_use]
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent == 0)
    }
}

/// A trace being recorded: owns the root span, finishes (or is finished
/// by its [`Drop`] impl, outcome included, if a panic unwinds past it).
#[derive(Debug)]
pub struct ActiveTrace {
    root: Option<TraceSpan>,
    ctx: Option<FinishCtx>,
}

#[derive(Debug)]
struct FinishCtx {
    recorder: Arc<FlightRecorder>,
    buf: Arc<TraceBuf>,
    endpoint: String,
}

impl ActiveTrace {
    /// An inert trace (disabled recorder): root is a disabled span,
    /// finish returns `None`.
    #[must_use]
    pub fn disabled() -> Self {
        ActiveTrace {
            root: Some(TraceSpan::disabled()),
            ctx: None,
        }
    }

    /// Whether this trace records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.ctx.is_some()
    }

    /// The root span — open children off this.
    ///
    /// # Panics
    ///
    /// Never: the root is only taken at finish, which consumes `self`.
    #[must_use]
    pub fn root(&self) -> &TraceSpan {
        self.root.as_ref().expect("root lives until finish")
    }

    /// Mutable root access, for attaching request-level attributes.
    #[must_use]
    pub fn root_mut(&mut self) -> &mut TraceSpan {
        self.root.as_mut().expect("root lives until finish")
    }

    /// Completes the trace: closes the root span, assembles the span
    /// tree, runs tail-sampling, and returns the assembled record (also
    /// returned when sampling dropped it from the ring — the caller may
    /// still want it for an inline `explain`). `None` iff disabled.
    pub fn finish(mut self, outcome: TraceOutcome) -> Option<Arc<TraceRecord>> {
        self.finish_inner(outcome)
    }

    fn finish_inner(&mut self, outcome: TraceOutcome) -> Option<Arc<TraceRecord>> {
        drop(self.root.take()); // records the root span
        let ctx = self.ctx.take()?;
        let total_ns = u64::try_from(ctx.buf.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut spans =
            std::mem::take(&mut *ctx.buf.spans.lock().unwrap_or_else(PoisonError::into_inner));
        spans.sort_by_key(|s| (s.start_ns, s.id));
        Some(
            ctx.recorder
                .submit(ctx.buf.trace_id, ctx.endpoint, outcome, total_ns, spans),
        )
    }
}

impl Drop for ActiveTrace {
    fn drop(&mut self) {
        if self.ctx.is_none() {
            return;
        }
        // A trace dropped without finish is an unwind in flight (or a
        // caller bug); either way, record it as an error so it is always
        // kept, and never panic out of this drop.
        if std::thread::panicking() {
            if let Some(ctx) = &self.ctx {
                ctx.recorder.unwound.fetch_add(1, Ordering::Relaxed);
            }
        }
        let _ = self.finish_inner(TraceOutcome::Error(500));
    }
}

/// Occupancy and loss counters — what `stats`/`health` surface so
/// sampling loss is observable rather than silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Ring capacity.
    pub capacity: u64,
    /// Traces currently retained.
    pub occupancy: u64,
    /// Traces completed over the recorder's lifetime.
    pub completed: u64,
    /// Traces tail-sampling kept.
    pub recorded: u64,
    /// Fast, successful traces the sampler dropped.
    pub sampled_out: u64,
    /// Retained traces later evicted by ring capacity.
    pub evicted: u64,
    /// Traces finished by a panic unwinding past their guard.
    pub unwound: u64,
}

/// The bounded, lock-light ring of completed traces.
///
/// One short mutex acquisition per completed trace (push + maybe evict);
/// live spans never touch it. All counters are atomics.
#[derive(Debug)]
pub struct FlightRecorder {
    config: TraceConfig,
    ring: Mutex<VecDeque<Arc<TraceRecord>>>,
    completed: AtomicU64,
    recorded: AtomicU64,
    sampled_out: AtomicU64,
    evicted: AtomicU64,
    unwound: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with the given tuning.
    #[must_use]
    pub fn new(config: TraceConfig) -> Self {
        FlightRecorder {
            config,
            ring: Mutex::new(VecDeque::with_capacity(config.capacity.min(1024))),
            completed: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            unwound: AtomicU64::new(0),
        }
    }

    /// The recorder's configuration.
    #[must_use]
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Opens a trace for `endpoint`. `seed` should be deterministic per
    /// request ([`trace_seed_from_fingerprint`] /
    /// [`trace_seed_from_bytes`]); the trace id is `splitmix64(seed)`.
    #[must_use]
    pub fn begin(self: &Arc<Self>, seed: u64, endpoint: &str) -> ActiveTrace {
        if !self.config.enabled {
            return ActiveTrace::disabled();
        }
        let buf = Arc::new(TraceBuf {
            trace_id: splitmix64(seed),
            epoch: Instant::now(),
            next_id: AtomicU64::new(2),
            spans: Mutex::new(Vec::with_capacity(8)),
        });
        let root = TraceSpan {
            inner: Some(SpanInner {
                buf: Arc::clone(&buf),
                id: 1,
                parent: 0,
                name: "serve.request",
                start: buf.epoch,
                attrs: Vec::new(),
            }),
        };
        ActiveTrace {
            root: Some(root),
            ctx: Some(FinishCtx {
                recorder: Arc::clone(self),
                buf,
                endpoint: endpoint.to_owned(),
            }),
        }
    }

    /// Tail-sampling + ring admission. Always returns the assembled
    /// record; bumps `sampled_out` instead of retaining when the sampler
    /// drops it.
    fn submit(
        &self,
        trace_id: u64,
        endpoint: String,
        outcome: TraceOutcome,
        total_ns: u64,
        spans: Vec<SpanRecord>,
    ) -> Arc<TraceRecord> {
        let seq = self.completed.fetch_add(1, Ordering::Relaxed);
        let kept_because = match outcome {
            TraceOutcome::Error(_) => Some("error"),
            TraceOutcome::Shed => Some("shed"),
            TraceOutcome::Ok if total_ns >= self.config.slow_threshold_ns => Some("slow"),
            TraceOutcome::Ok => {
                let one_in = self.config.sample_one_in.max(1);
                splitmix64(trace_id)
                    .is_multiple_of(one_in)
                    .then_some("sampled")
            }
        };
        let record = Arc::new(TraceRecord {
            seq,
            trace_id,
            endpoint,
            outcome,
            total_ns,
            kept_because: kept_because.unwrap_or("sampled_out"),
            spans,
        });
        if kept_because.is_some() {
            self.recorded.fetch_add(1, Ordering::Relaxed);
            let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
            if ring.len() >= self.config.capacity.max(1) {
                ring.pop_front();
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(Arc::clone(&record));
        } else {
            self.sampled_out.fetch_add(1, Ordering::Relaxed);
        }
        record
    }

    /// All retained traces, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Arc<TraceRecord>> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// The `n` slowest retained traces, slowest first.
    #[must_use]
    pub fn slowest(&self, n: usize) -> Vec<Arc<TraceRecord>> {
        let mut all = self.snapshot();
        all.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.seq.cmp(&b.seq)));
        all.truncate(n);
        all
    }

    /// Retained traces that did not end `ok`, oldest first.
    #[must_use]
    pub fn errors(&self) -> Vec<Arc<TraceRecord>> {
        self.snapshot()
            .into_iter()
            .filter(|t| t.outcome != TraceOutcome::Ok)
            .collect()
    }

    /// Occupancy and loss counters.
    #[must_use]
    pub fn stats(&self) -> RecorderStats {
        RecorderStats {
            capacity: self.config.capacity as u64,
            occupancy: self
                .ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len() as u64,
            completed: self.completed.load(Ordering::Relaxed),
            recorded: self.recorded.load(Ordering::Relaxed),
            sampled_out: self.sampled_out.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            unwound: self.unwound.load(Ordering::Relaxed),
        }
    }
}

fn span_json(span: &SpanRecord) -> String {
    let mut attrs = String::from("{");
    for (i, (key, value)) in span.attrs.iter().enumerate() {
        if i > 0 {
            attrs.push_str(", ");
        }
        attrs.push_str(&json_string(key));
        attrs.push_str(": ");
        attrs.push_str(&value.to_json());
    }
    attrs.push('}');
    format!(
        "{{ \"id\": {}, \"parent\": {}, \"name\": {}, \"start_ns\": {}, \
         \"duration_ns\": {}, \"attrs\": {} }}",
        span.id,
        span.parent,
        json_string(span.name),
        span.start_ns,
        span.duration_ns,
        attrs
    )
}

fn trace_json(trace: &TraceRecord) -> String {
    let mut spans = String::from("[");
    for (i, span) in trace.spans.iter().enumerate() {
        if i > 0 {
            spans.push(',');
        }
        spans.push_str("\n      ");
        spans.push_str(&span_json(span));
    }
    if !trace.spans.is_empty() {
        spans.push_str("\n    ");
    }
    spans.push(']');
    format!(
        "{{\n    \"seq\": {}, \"trace_id\": {}, \"endpoint\": {}, \
         \"outcome\": {}, \"total_ns\": {}, \"kept_because\": {},\n    \"spans\": {}\n  }}",
        trace.seq,
        json_string(&trace.trace_id_hex()),
        json_string(&trace.endpoint),
        json_string(trace.outcome.as_str()),
        trace.total_ns,
        json_string(trace.kept_because),
        spans
    )
}

/// Renders traces plus recorder counters as the schema'd JSON document
/// (`schemas/trace.schema.json`) the `traces` endpoint and
/// `brokerctl trace --json` emit.
#[must_use]
pub fn traces_to_json(traces: &[Arc<TraceRecord>], stats: &RecorderStats) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!(
            "  \"schema_version\": {TRACE_SCHEMA_VERSION},\n  \"recorder\": {{ \
             \"capacity\": {}, \"occupancy\": {}, \"completed\": {}, \"recorded\": {}, \
             \"sampled_out\": {}, \"evicted\": {}, \"unwound\": {} }},\n",
            stats.capacity,
            stats.occupancy,
            stats.completed,
            stats.recorded,
            stats.sampled_out,
            stats.evicted,
            stats.unwound
        ),
    );
    out.push_str("  \"traces\": [");
    for (i, trace) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&trace_json(trace));
    }
    if !traces.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

/// Renders traces in Chrome `trace_event` format (the JSON-object form
/// with a `traceEvents` array of complete `"X"` events), loadable in
/// `about:tracing` and Perfetto. Each trace becomes one "thread" (`tid` =
/// completion seq) so overlapping requests stack instead of interleaving;
/// timestamps are the in-trace offsets in microseconds.
#[must_use]
pub fn traces_to_chrome(traces: &[Arc<TraceRecord>]) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    let mut first = true;
    for trace in traces {
        for span in &trace.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let mut args = format!(
                "{{\"trace_id\": {}, \"outcome\": {}",
                json_string(&trace.trace_id_hex()),
                json_string(trace.outcome.as_str())
            );
            for (key, value) in &span.attrs {
                args.push_str(", ");
                args.push_str(&json_string(key));
                args.push_str(": ");
                args.push_str(&value.to_json());
            }
            args.push('}');
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "\n  {{\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"ts\": {}, \
                     \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {}}}",
                    json_string(span.name),
                    json_string(&trace.endpoint),
                    json_number(span.start_ns as f64 / 1_000.0),
                    json_number(span.duration_ns as f64 / 1_000.0),
                    trace.seq,
                    args
                ),
            );
        }
    }
    if !first {
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(config: TraceConfig) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder::new(config))
    }

    #[test]
    fn trace_ids_are_deterministic_per_seed() {
        let fr = recorder(TraceConfig::default());
        let a = fr.begin(42, "recommend").finish(TraceOutcome::Ok).unwrap();
        let b = fr.begin(42, "recommend").finish(TraceOutcome::Ok).unwrap();
        let c = fr.begin(43, "recommend").finish(TraceOutcome::Ok).unwrap();
        assert_eq!(a.trace_id, b.trace_id, "same request, same trace id");
        assert_ne!(a.seq, b.seq, "but each completion is unique");
        assert_ne!(a.trace_id, c.trace_id, "different request, different id");
    }

    #[test]
    fn span_tree_records_nesting_and_attrs() {
        let fr = recorder(TraceConfig::default());
        let trace = fr.begin(7, "recommend");
        {
            let mut outer = trace.root().child("broker.recommend");
            outer.attr_u64("clouds", 2);
            {
                let mut engine = outer.child("optimizer.bnb.search");
                engine.attr_u64("nodes_visited", 99);
                engine.attr_text("engine", "branch_bound");
            }
        }
        let record = trace.finish(TraceOutcome::Ok).unwrap();
        let root = record.root().expect("root span recorded");
        assert_eq!(root.name, "serve.request");
        let broker = record
            .spans
            .iter()
            .find(|s| s.name == "broker.recommend")
            .unwrap();
        assert_eq!(broker.parent, root.id);
        let engine = record
            .spans
            .iter()
            .find(|s| s.name == "optimizer.bnb.search")
            .unwrap();
        assert_eq!(engine.parent, broker.id);
        assert!(engine
            .attrs
            .contains(&("nodes_visited", AttrValue::U64(99))));
        assert!(record.total_ns >= root.duration_ns);
    }

    #[test]
    fn out_of_order_drops_still_reconstruct() {
        let fr = recorder(TraceConfig::default());
        let trace = fr.begin(7, "recommend");
        let a = trace.root().child("stage.a");
        let b = trace.root().child("stage.b");
        // Drop in reverse creation order.
        drop(a);
        drop(b);
        let record = trace.finish(TraceOutcome::Ok).unwrap();
        let root_id = record.root().unwrap().id;
        let children = record.children_of(root_id);
        assert_eq!(children.len(), 2);
        assert!(children.iter().all(|s| s.parent == root_id));
        // Sorted by start: a was created first.
        assert_eq!(children[0].name, "stage.a");
    }

    #[test]
    fn completed_child_backdates_its_start() {
        let fr = recorder(TraceConfig::default());
        let trace = fr.begin(7, "recommend");
        trace
            .root()
            .child_completed_ns("serve.queue.wait", 5_000_000);
        let record = trace.finish(TraceOutcome::Ok).unwrap();
        let wait = record
            .spans
            .iter()
            .find(|s| s.name == "serve.queue.wait")
            .unwrap();
        assert_eq!(wait.duration_ns, 5_000_000);
    }

    #[test]
    fn panic_during_traced_closure_neither_poisons_nor_deadlocks() {
        let fr = recorder(TraceConfig::default());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let trace = fr.begin(13, "recommend");
            let _guard = trace.root().child("serve.execute");
            panic!("backend blew up");
        }));
        assert!(result.is_err());
        // The unwound trace was finished as an error and kept.
        let stats = fr.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.unwound, 1);
        let errors = fr.errors();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].kept_because, "error");
        assert!(
            errors[0].spans.iter().any(|s| s.name == "serve.execute"),
            "the guard dropped during unwind still recorded its span"
        );
        // And the recorder keeps working afterwards.
        let after = fr.begin(14, "recommend").finish(TraceOutcome::Ok).unwrap();
        assert_eq!(after.outcome, TraceOutcome::Ok);
        assert_eq!(fr.stats().completed, 2);
    }

    #[test]
    fn tail_sampling_always_keeps_errors_sheds_and_slow() {
        let fr = recorder(TraceConfig {
            sample_one_in: u64::MAX, // sampler alone would keep ~nothing
            slow_threshold_ns: 10,   // but everything is "slow"
            ..TraceConfig::default()
        });
        fr.begin(1, "recommend").finish(TraceOutcome::Ok).unwrap();
        let fr2 = recorder(TraceConfig {
            sample_one_in: u64::MAX,
            slow_threshold_ns: u64::MAX,
            ..TraceConfig::default()
        });
        let ok = fr2.begin(1, "a").finish(TraceOutcome::Ok).unwrap();
        let err = fr2.begin(2, "b").finish(TraceOutcome::Error(500)).unwrap();
        let shed = fr2.begin(3, "c").finish(TraceOutcome::Shed).unwrap();
        assert_eq!(fr.stats().recorded, 1, "slow trace kept");
        assert_eq!(fr.snapshot()[0].kept_because, "slow");
        assert_eq!(ok.kept_because, "sampled_out");
        assert_eq!(err.kept_because, "error");
        assert_eq!(shed.kept_because, "shed");
        let stats = fr2.stats();
        assert_eq!(stats.recorded, 2);
        assert_eq!(stats.sampled_out, 1);
    }

    #[test]
    fn sampling_is_deterministic_per_trace_id() {
        let fr = recorder(TraceConfig {
            sample_one_in: 4,
            slow_threshold_ns: u64::MAX,
            ..TraceConfig::default()
        });
        let first = fr.begin(11, "r").finish(TraceOutcome::Ok).unwrap();
        for _ in 0..5 {
            let again = fr.begin(11, "r").finish(TraceOutcome::Ok).unwrap();
            assert_eq!(again.kept_because, first.kept_because);
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_it() {
        let fr = recorder(TraceConfig {
            capacity: 2,
            ..TraceConfig::default()
        });
        for seed in 0..5 {
            fr.begin(seed, "r").finish(TraceOutcome::Ok).unwrap();
        }
        let stats = fr.stats();
        assert_eq!(stats.occupancy, 2);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.evicted, 3);
        let kept = fr.snapshot();
        assert_eq!(kept.len(), 2);
        assert!(kept[0].seq < kept[1].seq, "oldest first");
        assert_eq!(kept[1].seq, 4, "newest retained");
    }

    #[test]
    fn disabled_recorder_and_spans_are_inert() {
        let fr = recorder(TraceConfig::disabled());
        let trace = fr.begin(1, "recommend");
        assert!(!trace.is_enabled());
        let mut child = trace.root().child("anything");
        child.attr_u64("k", 1);
        child.child_completed_ns("sub", 5);
        assert!(child.context().is_none());
        drop(child);
        assert!(trace.finish(TraceOutcome::Ok).is_none());
        assert_eq!(fr.stats().completed, 0);
        // The standalone disabled span behaves the same way.
        let span = TraceSpan::disabled();
        assert!(!span.is_enabled());
        assert!(!span.child("x").is_enabled());
    }

    #[test]
    fn slowest_and_errors_queries_filter_and_order() {
        let fr = recorder(TraceConfig::default());
        fr.begin(1, "a").finish(TraceOutcome::Ok).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        // This trace lives longer, so it is the slowest.
        let trace = fr.begin(2, "b");
        std::thread::sleep(std::time::Duration::from_millis(5));
        trace.finish(TraceOutcome::Error(500)).unwrap();
        let slowest = fr.slowest(1);
        assert_eq!(slowest.len(), 1);
        assert_eq!(slowest[0].endpoint, "b");
        let errors = fr.errors();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].endpoint, "b");
    }

    #[test]
    fn json_export_is_schema_shaped_and_escaped() {
        let fr = recorder(TraceConfig::default());
        let trace = fr.begin(5, "reco\"mmend");
        {
            let mut span = trace.root().child("serve.execute");
            span.attr_text("verdict", "hit \"quoted\"");
            span.attr_f64("ratio", 0.5);
            span.attr_flag("cached", true);
        }
        trace.finish(TraceOutcome::Ok).unwrap();
        let json = traces_to_json(&fr.snapshot(), &fr.stats());
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"recorder\""));
        assert!(json.contains("\"reco\\\"mmend\""));
        assert!(json.contains("\"hit \\\"quoted\\\"\""));
        assert!(json.contains("\"ratio\": 0.5"));
        assert!(json.contains("\"cached\": true"));
        assert!(json.contains("\"kept_because\": \"sampled\""));
        // Exactly 16 hex digits for the id.
        let id = fr.snapshot()[0].trace_id_hex();
        assert_eq!(id.len(), 16);
        assert!(json.contains(&id));
    }

    #[test]
    fn chrome_export_emits_complete_events() {
        let fr = recorder(TraceConfig::default());
        let trace = fr.begin(5, "recommend");
        drop(trace.root().child("serve.execute"));
        trace.finish(TraceOutcome::Ok).unwrap();
        let chrome = traces_to_chrome(&fr.snapshot());
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\": \"X\""));
        assert!(chrome.contains("\"name\": \"serve.execute\""));
        assert!(chrome.contains("\"cat\": \"recommend\""));
        assert!(chrome.contains("\"pid\": 1"));
        // Empty input still renders a valid document.
        assert!(traces_to_chrome(&[]).contains("\"traceEvents\": []"));
    }

    #[test]
    fn seed_helpers_are_stable() {
        assert_eq!(
            trace_seed_from_fingerprint(0x1111_0000_0000_0000_0000_0000_0000_2222),
            0x1111_0000_0000_2222
        );
        assert_eq!(
            trace_seed_from_bytes(b"sync"),
            trace_seed_from_bytes(b"sync")
        );
        assert_ne!(
            trace_seed_from_bytes(b"sync"),
            trace_seed_from_bytes(b"ping")
        );
    }
}
