//! The sink trait instrumented code talks to.

/// A sink for metrics and events.
///
/// Every method has a no-op default, so a recorder only implements what it
/// cares about and [`NoopRecorder`] implements nothing at all. All methods
/// take `&self`: recorders are shared across threads (`Send + Sync`) and
/// must synchronize internally.
///
/// Instrumentation discipline: hot loops accumulate into locals and flush
/// through this trait once per phase (per search, per sync, per trial) —
/// never per variant or per event. That keeps the cost of the dynamic
/// dispatch bounded by phase count, which is why the no-op overhead budget
/// of <5 % on `fast_search` holds trivially.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the monotonic counter `name`.
    fn counter_add(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the gauge `name` to `value` (last write wins).
    fn gauge_set(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records one sample into the histogram `name`.
    fn observe(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records a completed span: `nanos` wall-clock nanoseconds under
    /// `name`. The default files it as histogram `<name>.ns` plus counter
    /// `<name>.calls`, so any recorder that implements [`Recorder::observe`]
    /// and [`Recorder::counter_add`] gets spans for free.
    fn span_ns(&self, name: &str, nanos: u64) {
        // Span names are 'static in practice but the trait takes &str; the
        // suffixing allocates only when a non-noop recorder is installed.
        self.observe(&format!("{name}.ns"), nanos as f64);
        self.counter_add(&format!("{name}.calls"), 1);
    }

    /// Records a structured event (`name` is the event kind, `detail` a
    /// human-readable payload).
    fn event(&self, name: &str, detail: &str) {
        let _ = (name, detail);
    }
}

/// The do-nothing recorder: a zero-sized type whose trait methods inherit
/// the empty defaults (overriding `span_ns` so not even the format
/// allocation happens).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn span_ns(&self, _name: &str, _nanos: u64) {}
}

/// A shared static no-op recorder, usable as `&NOOP` wherever a
/// `&dyn Recorder` is expected.
pub static NOOP: NoopRecorder = NoopRecorder;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingSink {
        counters: AtomicU64,
        spans: AtomicU64,
    }

    impl Recorder for CountingSink {
        fn counter_add(&self, _name: &str, delta: u64) {
            self.counters.fetch_add(delta, Ordering::Relaxed);
        }
    }

    #[test]
    fn defaults_are_noops() {
        let noop = NoopRecorder;
        noop.counter_add("a", 1);
        noop.gauge_set("b", 2.0);
        noop.observe("c", 3.0);
        noop.span_ns("d", 4);
        noop.event("e", "detail");
    }

    #[test]
    fn default_span_routes_through_counter_and_histogram() {
        let sink = CountingSink::default();
        sink.span_ns("layer.thing", 125);
        // Default span_ns bumps `<name>.calls` via counter_add.
        assert_eq!(sink.counters.load(Ordering::Relaxed), 1);
        assert_eq!(sink.spans.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn noop_is_object_safe_and_static() {
        let dyn_rec: &dyn Recorder = &NOOP;
        dyn_rec.counter_add("x", 7);
    }
}
