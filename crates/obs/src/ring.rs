//! A bounded ring of structured events.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One structured event: a monotonically-increasing sequence number, the
/// event kind, and a human-readable detail payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Order of occurrence across the whole ring's lifetime (does not
    /// reset when old events are evicted).
    pub seq: u64,
    /// Event kind, dotted like metric names (e.g. `broker.breaker.opened`).
    pub name: String,
    /// Free-form detail.
    pub detail: String,
}

/// A fixed-capacity, thread-safe ring buffer of [`EventRecord`]s: pushing
/// beyond capacity evicts the oldest entry, so memory stays bounded no
/// matter how long the broker runs.
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<RingState>,
    capacity: usize,
}

#[derive(Debug)]
struct RingState {
    events: VecDeque<EventRecord>,
    next_seq: u64,
    evicted: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        EventRing {
            inner: Mutex::new(RingState {
                events: VecDeque::new(),
                next_seq: 0,
                evicted: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, name: &str, detail: &str) {
        let mut state = self.inner.lock().expect("lock poisoned");
        if state.events.len() == self.capacity {
            state.events.pop_front();
            state.evicted += 1;
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.events.push_back(EventRecord {
            seq,
            name: name.to_owned(),
            detail: detail.to_owned(),
        });
    }

    /// The retained events, oldest first (the ring itself is untouched).
    #[must_use]
    pub fn drain_copy(&self) -> Vec<EventRecord> {
        self.inner
            .lock()
            .expect("lock poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Events evicted so far because the ring was full.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.inner.lock().expect("lock poisoned").evicted
    }

    /// Maximum events retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_when_full() {
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.push("e", &format!("d{i}"));
        }
        let events = ring.drain_copy();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].detail, "d2");
        assert_eq!(events[2].detail, "d4");
        // Sequence numbers keep counting across evictions.
        assert_eq!(events[2].seq, 4);
        assert_eq!(ring.evicted(), 2);
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let ring = EventRing::new(0);
        ring.push("a", "1");
        ring.push("b", "2");
        let events = ring.drain_copy();
        assert_eq!(ring.capacity(), 1);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "b");
    }

    #[test]
    fn drain_copy_does_not_consume() {
        let ring = EventRing::new(4);
        ring.push("a", "1");
        assert_eq!(ring.drain_copy().len(), 1);
        assert_eq!(ring.drain_copy().len(), 1);
    }
}
