//! Snapshot exporters: JSON and Prometheus text exposition format.
//!
//! Both are hand-rolled over [`MetricsSnapshot`] so this crate stays
//! dependency-free; metric names are workspace-controlled
//! (`layer.subsystem.name`) and event details are escaped.

use std::fmt::Write as _;

use crate::registry::{HistogramSnapshot, MetricsSnapshot};

/// Renders the snapshot as a pretty-printed JSON document.
///
/// Shape (mirrored by `schemas/obs_snapshot.schema.json`):
///
/// ```json
/// {
///   "schema_version": 1,
///   "counters": { "broker.sync.retries": 3 },
///   "gauges": { "broker.degraded.active": 0.0 },
///   "histograms": {
///     "broker.sync.attempts": {
///       "count": 4, "sum": 7.0, "min": 1.0, "max": 3.0,
///       "p50": 2.0, "p95": 3.0, "p99": 3.0,
///       "buckets": [ { "le": 1.0, "count": 1 } ]
///     }
///   },
///   "events": [ { "seq": 0, "name": "...", "detail": "..." } ]
/// }
/// ```
#[must_use]
pub fn to_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {},", snapshot.schema_version);

    out.push_str("  \"counters\": {");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        push_sep(&mut out, i);
        let _ = write!(out, "    {}: {value}", json_string(name));
    }
    close_obj(&mut out, snapshot.counters.is_empty());

    out.push_str("  \"gauges\": {");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        push_sep(&mut out, i);
        let _ = write!(out, "    {}: {}", json_string(name), json_number(*value));
    }
    close_obj(&mut out, snapshot.gauges.is_empty());

    out.push_str("  \"histograms\": {");
    for (i, h) in snapshot.histograms.iter().enumerate() {
        push_sep(&mut out, i);
        let _ = write!(out, "    {}: {}", json_string(&h.name), histogram_json(h));
    }
    close_obj(&mut out, snapshot.histograms.is_empty());

    out.push_str("  \"events\": [");
    for (i, event) in snapshot.events.iter().enumerate() {
        push_sep(&mut out, i);
        let _ = write!(
            out,
            "    {{ \"seq\": {}, \"name\": {}, \"detail\": {} }}",
            event.seq,
            json_string(&event.name),
            json_string(&event.detail)
        );
    }
    if !snapshot.events.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn push_sep(out: &mut String, i: usize) {
    if i > 0 {
        out.push(',');
    }
    out.push('\n');
}

fn close_obj(out: &mut String, empty: bool) {
    if !empty {
        out.push_str("\n  ");
    }
    out.push_str("},\n");
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    for (i, (le, count)) in h.buckets.iter().enumerate() {
        if i > 0 {
            buckets.push_str(", ");
        }
        let _ = write!(
            buckets,
            "{{ \"le\": {}, \"count\": {count} }}",
            json_number(*le)
        );
    }
    buckets.push(']');
    format!(
        "{{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
         \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": {} }}",
        h.count,
        json_number(h.sum),
        json_number(h.min),
        json_number(h.max),
        json_number(h.p50),
        json_number(h.p95),
        json_number(h.p99),
        buckets
    )
}

/// A finite f64 as a JSON number (always with a decimal point or exponent
/// so consumers parse it as floating); non-finite values become `null`.
pub(crate) fn json_number(value: f64) -> String {
    if !value.is_finite() {
        return "null".to_owned();
    }
    // f64's Debug form is shortest-roundtrip with a mandatory `.0` or
    // exponent — exactly JSON's float shape.
    format!("{value:?}")
}

/// A JSON string literal with the mandatory escapes.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the snapshot in Prometheus text exposition format (version
/// 0.0.4): metric names are `uptime_` + the dotted name with dots and
/// dashes rewritten to underscores; histograms emit cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`. Events are not
/// exported (Prometheus has no event type); scrape the JSON form for
/// those.
#[must_use]
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    for (name, value) in &snapshot.counters {
        let prom = prom_name(name);
        let _ = writeln!(out, "# TYPE {prom} counter");
        let _ = writeln!(out, "{prom} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let prom = prom_name(name);
        let _ = writeln!(out, "# TYPE {prom} gauge");
        let _ = writeln!(out, "{prom} {}", prom_number(*value));
    }
    for h in &snapshot.histograms {
        let prom = prom_name(&h.name);
        let _ = writeln!(out, "# TYPE {prom} histogram");
        for (le, count) in &h.buckets {
            let _ = writeln!(out, "{prom}_bucket{{le=\"{}\"}} {count}", prom_number(*le));
        }
        let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{prom}_sum {}", prom_number(h.sum));
        let _ = writeln!(out, "{prom}_count {}", h.count);
    }
    out
}

fn prom_name(dotted: &str) -> String {
    let mut out = String::with_capacity(dotted.len() + 7);
    out.push_str("uptime_");
    for c in dotted.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_number(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_owned()
    } else if value == f64::INFINITY {
        "+Inf".to_owned()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::registry::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter_add("optimizer.fast.variants", 46656);
        r.gauge_set("optimizer.pruned.cut_rate", 0.125);
        r.observe("broker.sync.attempts", 1.0);
        r.observe("broker.sync.attempts", 3.0);
        r.event("broker.breaker.opened", "softlayer: 3 consecutive faults");
        r.snapshot()
    }

    #[test]
    fn json_has_all_sections_and_schema_version() {
        let json = to_json(&sample_snapshot());
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"optimizer.fast.variants\": 46656"));
        assert!(json.contains("\"optimizer.pruned.cut_rate\": 0.125"));
        assert!(json.contains("\"broker.sync.attempts\""));
        assert!(json.contains("\"p95\""));
        assert!(json.contains("\"broker.breaker.opened\""));
    }

    #[test]
    fn json_of_empty_snapshot_is_well_formed() {
        let json = to_json(&MetricsRegistry::new().snapshot());
        assert!(json.contains("\"counters\": {},"));
        assert!(json.contains("\"events\": []"));
    }

    #[test]
    fn json_escapes_details() {
        let r = MetricsRegistry::new();
        r.event("e", "line1\nline2 \"quoted\" back\\slash");
        let json = to_json(&r.snapshot());
        assert!(json.contains("line1\\nline2 \\\"quoted\\\" back\\\\slash"));
    }

    #[test]
    fn json_numbers_keep_float_shape() {
        assert_eq!(json_number(2.0), "2.0");
        assert_eq!(json_number(0.5), "0.5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(1e300), "1e300");
    }

    #[test]
    fn prometheus_renders_all_metric_kinds() {
        let prom = to_prometheus(&sample_snapshot());
        assert!(prom.contains("# TYPE uptime_optimizer_fast_variants counter"));
        assert!(prom.contains("uptime_optimizer_fast_variants 46656"));
        assert!(prom.contains("# TYPE uptime_optimizer_pruned_cut_rate gauge"));
        assert!(prom.contains("uptime_optimizer_pruned_cut_rate 0.125"));
        assert!(prom.contains("# TYPE uptime_broker_sync_attempts histogram"));
        assert!(prom.contains("uptime_broker_sync_attempts_bucket{le=\"1\"} 1"));
        assert!(prom.contains("uptime_broker_sync_attempts_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("uptime_broker_sync_attempts_sum 4"));
        assert!(prom.contains("uptime_broker_sync_attempts_count 2"));
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("a.b-c.d"), "uptime_a_b_c_d");
    }
}
