//! Scope timers: measure a block's wall-clock time into a recorder.

use std::time::Instant;

use crate::recorder::Recorder;

/// An RAII scope timer created by [`crate::span!`]. On drop it reports the
/// elapsed wall-clock nanoseconds through [`Recorder::span_ns`], which by
/// default lands in histogram `<name>.ns` and counter `<name>.calls`.
///
/// Nested timings are expressed with dotted names
/// (`broker.recommend` containing `optimizer.exhaustive.search`), matching
/// the workspace's `layer.subsystem.name` convention.
pub struct SpanGuard<'r> {
    recorder: &'r dyn Recorder,
    name: &'static str,
    started: Instant,
}

impl std::fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .field("started", &self.started)
            .finish_non_exhaustive()
    }
}

impl<'r> SpanGuard<'r> {
    /// Starts timing `name` against `recorder`. Prefer the [`crate::span!`]
    /// macro.
    #[must_use]
    pub fn start(recorder: &'r dyn Recorder, name: &'static str) -> Self {
        SpanGuard {
            recorder,
            name,
            started: Instant::now(),
        }
    }

    /// The span's metric name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Nanoseconds elapsed so far (the guard keeps running).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder.span_ns(self.name, self.elapsed_ns());
    }
}

/// Times the enclosing scope: `let _span = obs::span!(&recorder, "layer.op");`
///
/// The guard records into the given recorder when dropped. Bind it to a
/// named variable (`_span`, not `_`) or it drops immediately.
#[macro_export]
macro_rules! span {
    ($recorder:expr, $name:literal) => {
        $crate::SpanGuard::start($recorder, $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn span_records_duration_and_call_count() {
        let registry = MetricsRegistry::new();
        {
            let _span = crate::span!(&registry, "test.block");
            std::hint::black_box(1 + 1);
        }
        {
            let _span = crate::span!(&registry, "test.block");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("test.block.calls"), Some(2));
        let h = snap.histogram("test.block.ns").unwrap();
        assert_eq!(h.count, 2);
        assert!(h.sum >= 0.0);
    }

    #[test]
    fn elapsed_is_monotone() {
        let registry = MetricsRegistry::new();
        let span = SpanGuard::start(&registry, "test.mono");
        let a = span.elapsed_ns();
        let b = span.elapsed_ns();
        assert!(b >= a);
        assert_eq!(span.name(), "test.mono");
    }

    #[test]
    fn noop_span_is_silent() {
        let _span = crate::span!(&crate::NOOP, "test.noop");
    }
}
