//! Property-based suite for the journal record codec: whatever bytes are
//! on disk — pure garbage, a valid journal sheared at an arbitrary
//! offset, or a journal with a flipped bit — decoding never panics and
//! always returns the longest valid prefix.

use proptest::prelude::*;
use uptime_durability::{decode_all, encode_record, TruncationReason, HEADER_LEN};

/// Framed length of one record.
fn framed(payload: &[u8]) -> usize {
    HEADER_LEN + payload.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: the decoder must never panic, must never claim
    /// more valid bytes than exist, and the payload bytes it returns
    /// must account exactly for the valid prefix.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let decoded = decode_all(&bytes);
        prop_assert!(decoded.valid_len <= bytes.len() as u64);
        let accounted: u64 = decoded
            .payloads
            .iter()
            .map(|p| framed(p) as u64)
            .sum();
        prop_assert_eq!(accounted, decoded.valid_len);
        // Garbage that doesn't happen to end exactly at a record
        // boundary must report why decoding stopped.
        if decoded.valid_len < bytes.len() as u64 {
            prop_assert!(decoded.truncation.is_some());
        }
    }

    /// A well-formed journal truncated at EVERY possible offset decodes
    /// to exactly the records that fit wholly before the cut, and the
    /// reported truncation (if any) sits at the last record boundary.
    #[test]
    fn truncation_at_every_offset_yields_longest_valid_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            1..8,
        ),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut journal = Vec::new();
        let mut boundaries = vec![0usize];
        for payload in &payloads {
            journal.extend_from_slice(&encode_record(payload));
            boundaries.push(journal.len());
        }
        let cut = ((journal.len() as f64) * cut_fraction) as usize;
        let sheared = &journal[..cut];

        let decoded = decode_all(sheared);
        // Number of records wholly contained in the sheared prefix.
        let expected = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        prop_assert_eq!(decoded.payloads.len(), expected);
        for (got, want) in decoded.payloads.iter().zip(&payloads) {
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(decoded.valid_len, boundaries[expected] as u64);
        if boundaries[expected] == cut {
            prop_assert!(decoded.truncation.is_none(), "cut on a boundary is clean");
        } else {
            let truncation = decoded.truncation.expect("mid-record cut is reported");
            prop_assert_eq!(truncation.offset, boundaries[expected] as u64);
            prop_assert!(matches!(
                truncation.reason,
                TruncationReason::TornHeader | TruncationReason::TornPayload
            ));
        }
    }

    /// Flipping any single bit anywhere in a journal never panics the
    /// decoder, and every record lying wholly before the flipped byte
    /// still decodes intact (CRC-32 catches all single-bit errors, so a
    /// flipped record can never be accepted).
    #[test]
    fn single_bit_flip_never_panics_and_preserves_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48),
            1..6,
        ),
        flip_pick in any::<u64>(),
    ) {
        let mut journal = Vec::new();
        let mut boundaries = vec![0usize];
        for payload in &payloads {
            journal.extend_from_slice(&encode_record(payload));
            boundaries.push(journal.len());
        }
        let byte = (flip_pick / 8) as usize % journal.len();
        let bit = (flip_pick % 8) as u8;
        journal[byte] ^= 1 << bit;

        let decoded = decode_all(&journal);
        prop_assert!(decoded.valid_len <= journal.len() as u64);
        // Records that end at or before the flipped byte are untouched
        // on disk and must all decode.
        let intact = boundaries.iter().filter(|&&b| b > 0 && b <= byte).count();
        prop_assert!(decoded.payloads.len() >= intact);
        for (got, want) in decoded.payloads.iter().take(intact).zip(&payloads) {
            prop_assert_eq!(got, want);
        }
        // The record containing the flip is rejected, so decoding stops
        // no later than that record's end — the flip is never absorbed.
        let containing_end = boundaries
            .iter()
            .find(|&&b| b > byte)
            .copied()
            .expect("flip lies inside some record");
        prop_assert!(decoded.valid_len < containing_end as u64);
    }

    /// Round trip: encode-then-decode returns every payload verbatim
    /// with no truncation.
    #[test]
    fn round_trip_is_lossless(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256),
            0..10,
        ),
    ) {
        let mut journal = Vec::new();
        for payload in &payloads {
            journal.extend_from_slice(&encode_record(payload));
        }
        let decoded = decode_all(&journal);
        prop_assert!(decoded.truncation.is_none());
        prop_assert_eq!(decoded.valid_len, journal.len() as u64);
        prop_assert_eq!(&decoded.payloads, &payloads);
    }
}
