//! The journal's on-disk record codec.
//!
//! Each record is a fixed 12-byte header followed by the payload:
//!
//! ```text
//! ┌────────────┬───────────┬────────────┬────────────────┐
//! │ magic u32  │ len u32   │ crc32 u32  │ payload (len)  │
//! │ (LE)       │ (LE)      │ (LE, IEEE) │                │
//! └────────────┴───────────┴────────────┴────────────────┘
//! ```
//!
//! The decoder walks records front to back and stops at the **first**
//! byte sequence that is not a complete, checksum-valid record — a torn
//! header, a torn payload, a bad magic, an absurd length, or a CRC
//! mismatch. Everything before that point is returned; everything after
//! it is untrusted tail. Decoding never panics and never allocates more
//! than the valid payload bytes, whatever garbage it is fed — the
//! property the proptest suite pins down.

/// Magic marking the start of every record (`"UJL1"` little-endian).
pub const RECORD_MAGIC: u32 = 0x314C_4A55;

/// Fixed header size: magic + length + checksum, 4 bytes each.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a single record's payload. Anything larger is treated
/// as corruption (a flipped length byte must not make the decoder try to
/// slurp gigabytes).
pub const MAX_PAYLOAD_LEN: usize = 64 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        let index = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[index];
    }
    !crc
}

/// Why decoding stopped before the end of the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationReason {
    /// Fewer than [`HEADER_LEN`] bytes remained — a torn header.
    TornHeader,
    /// The magic did not match — the tail is not a record boundary.
    BadMagic,
    /// The declared length exceeds [`MAX_PAYLOAD_LEN`].
    OversizedLength,
    /// The payload extends past the end of the input — a torn write.
    TornPayload,
    /// The payload is present but its checksum does not match.
    ChecksumMismatch,
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TruncationReason::TornHeader => "torn header",
            TruncationReason::BadMagic => "bad magic",
            TruncationReason::OversizedLength => "oversized length",
            TruncationReason::TornPayload => "torn payload",
            TruncationReason::ChecksumMismatch => "checksum mismatch",
        })
    }
}

/// Where and why the valid prefix ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncation {
    /// Byte offset of the first invalid record.
    pub offset: u64,
    /// What made it invalid.
    pub reason: TruncationReason,
}

/// The result of decoding a byte stream: the longest valid record prefix
/// plus, when the input did not end cleanly on a record boundary, where
/// and why it stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// Payloads of every valid record, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Length in bytes of the valid prefix (a record boundary).
    pub valid_len: u64,
    /// Set when trailing bytes after the valid prefix were discarded.
    pub truncation: Option<Truncation>,
}

/// Encodes one record (header + payload) ready for appending.
#[must_use]
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    encode_record_into(&mut out, payload);
    out
}

/// Appends one framed record to `out`, reusing its capacity. The journal
/// appends on the telemetry absorb path, so the steady state should not
/// allocate per record.
pub fn encode_record_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.reserve(HEADER_LEN + payload.len());
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(raw)
}

/// Decodes every complete, checksum-valid record from the front of
/// `bytes`, stopping at the first invalid tail. Never panics.
#[must_use]
pub fn decode_all(bytes: &[u8]) -> Decoded {
    let mut payloads = Vec::new();
    let mut offset = 0usize;
    let mut truncation = None;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < HEADER_LEN {
            truncation = Some(Truncation {
                offset: offset as u64,
                reason: TruncationReason::TornHeader,
            });
            break;
        }
        if read_u32(bytes, offset) != RECORD_MAGIC {
            truncation = Some(Truncation {
                offset: offset as u64,
                reason: TruncationReason::BadMagic,
            });
            break;
        }
        let len = read_u32(bytes, offset + 4) as usize;
        if len > MAX_PAYLOAD_LEN {
            truncation = Some(Truncation {
                offset: offset as u64,
                reason: TruncationReason::OversizedLength,
            });
            break;
        }
        if remaining < HEADER_LEN + len {
            truncation = Some(Truncation {
                offset: offset as u64,
                reason: TruncationReason::TornPayload,
            });
            break;
        }
        let payload = &bytes[offset + HEADER_LEN..offset + HEADER_LEN + len];
        if crc32(payload) != read_u32(bytes, offset + 8) {
            truncation = Some(Truncation {
                offset: offset as u64,
                reason: TruncationReason::ChecksumMismatch,
            });
            break;
        }
        payloads.push(payload.to_vec());
        offset += HEADER_LEN + len;
    }
    Decoded {
        payloads,
        valid_len: offset.min(bytes.len()) as u64,
        truncation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_multiple_records() {
        let mut stream = Vec::new();
        for payload in [b"alpha".as_slice(), b"".as_slice(), b"gamma!".as_slice()] {
            stream.extend_from_slice(&encode_record(payload));
        }
        let decoded = decode_all(&stream);
        assert_eq!(
            decoded.payloads,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma!".to_vec()]
        );
        assert_eq!(decoded.valid_len, stream.len() as u64);
        assert!(decoded.truncation.is_none());
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let mut stream = encode_record(b"keep me");
        let keep = stream.len() as u64;
        stream.extend_from_slice(&encode_record(b"torn away"));
        stream.truncate(stream.len() - 3);
        let decoded = decode_all(&stream);
        assert_eq!(decoded.payloads, vec![b"keep me".to_vec()]);
        assert_eq!(decoded.valid_len, keep);
        assert_eq!(
            decoded.truncation.unwrap().reason,
            TruncationReason::TornPayload
        );
    }

    #[test]
    fn flipped_payload_bit_is_caught_by_crc() {
        let mut stream = encode_record(b"pristine");
        let last = stream.len() - 1;
        stream[last] ^= 0x40;
        let decoded = decode_all(&stream);
        assert!(decoded.payloads.is_empty());
        assert_eq!(
            decoded.truncation.unwrap().reason,
            TruncationReason::ChecksumMismatch
        );
    }

    #[test]
    fn absurd_length_does_not_allocate() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.extend_from_slice(&[0, 0, 0, 0]);
        let decoded = decode_all(&stream);
        assert!(decoded.payloads.is_empty());
        assert_eq!(
            decoded.truncation.unwrap().reason,
            TruncationReason::OversizedLength
        );
    }

    #[test]
    fn garbage_prefix_yields_nothing() {
        let decoded = decode_all(b"not a journal at all, sorry");
        assert!(decoded.payloads.is_empty());
        assert_eq!(decoded.valid_len, 0);
        assert_eq!(
            decoded.truncation.unwrap().reason,
            TruncationReason::BadMagic
        );
    }
}
