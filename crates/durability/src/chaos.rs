//! Seeded disk-fault injection.
//!
//! Two injectors, mirroring the PR 1 `ChaosProvider` idiom (deterministic
//! splitmix64 streams so every CI seed reproduces bit-identically):
//!
//! * [`DiskChaos`] — *post-mortem* corruption: given a state directory
//!   left behind by a killed process, apply one seeded fault (torn tail,
//!   short write, bit flip, missing snapshot) before recovery runs. This
//!   is what the kill-and-recover e2e and the `recovery-smoke` CI job
//!   drive across seeds 0–4.
//! * [`WriteChaos`] — *in-flight* faults on the journal's write path
//!   (short writes, fsync failures) for unit-testing the error handling
//!   in [`crate::journal::Journal::append`].

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::record::HEADER_LEN;
use crate::snapshot::StateDir;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The disk fault a [`DiskChaos`] seed maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// No corruption — the clean-kill baseline.
    CleanStop,
    /// The journal's last record loses its tail bytes (torn write).
    TornTail,
    /// A partial header lands after the last record (short write).
    ShortWrite,
    /// One payload bit in the last record flips (media corruption).
    BitFlip,
    /// The snapshot and its manifest vanish (lost accelerator state).
    MissingSnapshot,
}

impl std::fmt::Display for DiskFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DiskFault::CleanStop => "clean-stop",
            DiskFault::TornTail => "torn-tail",
            DiskFault::ShortWrite => "short-write",
            DiskFault::BitFlip => "bit-flip",
            DiskFault::MissingSnapshot => "missing-snapshot",
        })
    }
}

/// Post-mortem disk-fault injector. Seeds 0–4 map one-to-one onto the
/// five [`DiskFault`] kinds; higher seeds cycle through them with
/// seed-varied offsets.
#[derive(Debug)]
pub struct DiskChaos {
    seed: u64,
    rng: u64,
}

impl DiskChaos {
    /// Creates an injector for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> DiskChaos {
        DiskChaos {
            seed,
            rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD15C_C4A0,
        }
    }

    /// The fault this seed will apply.
    #[must_use]
    pub fn fault(&self) -> DiskFault {
        match self.seed % 5 {
            0 => DiskFault::CleanStop,
            1 => DiskFault::TornTail,
            2 => DiskFault::ShortWrite,
            3 => DiskFault::BitFlip,
            _ => DiskFault::MissingSnapshot,
        }
    }

    fn roll(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            splitmix64(&mut self.rng) % bound
        }
    }

    /// Applies this seed's fault to `state_dir` and reports what was
    /// done. Faults that need a journal tail degrade to
    /// [`DiskFault::CleanStop`] when the journal is empty.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn mangle(&mut self, state_dir: &StateDir) -> io::Result<DiskFault> {
        let fault = self.fault();
        let journal = state_dir.journal_path();
        match fault {
            DiskFault::CleanStop => Ok(DiskFault::CleanStop),
            DiskFault::TornTail => {
                let len = file_len(&journal)?;
                if len == 0 {
                    return Ok(DiskFault::CleanStop);
                }
                // Shear off 1..=HEADER_LEN+7 trailing bytes, keeping at
                // least the first byte so a tail really exists.
                let cut = 1 + self.roll((HEADER_LEN as u64) + 7);
                let keep = len.saturating_sub(cut).max(1).min(len - 1);
                let file = std::fs::OpenOptions::new().write(true).open(&journal)?;
                file.set_len(keep)?;
                Ok(DiskFault::TornTail)
            }
            DiskFault::ShortWrite => {
                // A crashed append that only got part of a header out.
                let mut file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&journal)?;
                let partial = 1 + self.roll((HEADER_LEN as u64) - 1);
                let frame = crate::record::encode_record(b"{\"short\":true}");
                file.write_all(&frame[..partial as usize])?;
                Ok(DiskFault::ShortWrite)
            }
            DiskFault::BitFlip => {
                let len = file_len(&journal)?;
                if len == 0 {
                    return Ok(DiskFault::CleanStop);
                }
                let at = self.roll(len);
                let bit = self.roll(8) as u32;
                let mut file = std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&journal)?;
                file.seek(SeekFrom::Start(at))?;
                let mut byte = [0u8; 1];
                file.read_exact(&mut byte)?;
                byte[0] ^= 1 << bit;
                file.seek(SeekFrom::Start(at))?;
                file.write_all(&byte)?;
                Ok(DiskFault::BitFlip)
            }
            DiskFault::MissingSnapshot => {
                remove_if_present(&state_dir.snapshot_path())?;
                remove_if_present(&state_dir.manifest_path())?;
                Ok(DiskFault::MissingSnapshot)
            }
        }
    }
}

fn file_len(path: &Path) -> io::Result<u64> {
    match std::fs::metadata(path) {
        Ok(meta) => Ok(meta.len()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(e),
    }
}

fn remove_if_present(path: &Path) -> io::Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// In-flight write-path fault injector for unit tests: schedules short
/// writes and fsync failures on specific upcoming operations.
#[derive(Debug, Default)]
pub struct WriteChaos {
    rng: u64,
    /// Appends until the next injected short write (`None` = never).
    short_write_in: Option<u32>,
    /// Fsyncs until the next injected failure (`None` = never).
    fail_fsync_in: Option<u32>,
}

impl WriteChaos {
    /// Creates an injector with no scheduled faults.
    #[must_use]
    pub fn new(seed: u64) -> WriteChaos {
        WriteChaos {
            rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5707_C4A0,
            ..WriteChaos::default()
        }
    }

    /// Schedules a short write on the Nth upcoming append (0 = next).
    #[must_use]
    pub fn short_write_after(mut self, appends: u32) -> WriteChaos {
        self.short_write_in = Some(appends);
        self
    }

    /// Schedules an fsync failure on the Nth upcoming sync (0 = next).
    #[must_use]
    pub fn fail_fsync_after(mut self, syncs: u32) -> WriteChaos {
        self.fail_fsync_in = Some(syncs);
        self
    }

    /// Called per append with the framed length; returns how many bytes
    /// to actually write when this append should be torn.
    pub(crate) fn short_write(&mut self, framed_len: usize) -> Option<usize> {
        match self.short_write_in {
            Some(0) => {
                self.short_write_in = None;
                let max = framed_len.saturating_sub(1).max(1) as u64;
                Some((1 + splitmix64(&mut self.rng) % max) as usize)
            }
            Some(n) => {
                self.short_write_in = Some(n - 1);
                None
            }
            None => None,
        }
    }

    /// Called per sync; true when this fsync should fail.
    pub(crate) fn fail_fsync(&mut self) -> bool {
        match self.fail_fsync_in {
            Some(0) => {
                self.fail_fsync_in = None;
                true
            }
            Some(n) => {
                self.fail_fsync_in = Some(n - 1);
                false
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{FsyncPolicy, Journal};
    use crate::record::TruncationReason;

    fn scratch(name: &str) -> StateDir {
        let root =
            std::env::temp_dir().join(format!("uptime-diskchaos-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        StateDir::create(&root).unwrap()
    }

    fn seed_journal(dir: &StateDir, records: usize) {
        let mut journal = Journal::open(dir.journal_path(), FsyncPolicy::Os).unwrap();
        for i in 0..records {
            journal
                .append(format!("{{\"record\":{i}}}").as_bytes())
                .unwrap();
        }
    }

    #[test]
    fn seeds_cover_all_fault_kinds() {
        let kinds: Vec<DiskFault> = (0..5).map(|s| DiskChaos::new(s).fault()).collect();
        assert_eq!(
            kinds,
            vec![
                DiskFault::CleanStop,
                DiskFault::TornTail,
                DiskFault::ShortWrite,
                DiskFault::BitFlip,
                DiskFault::MissingSnapshot,
            ]
        );
    }

    #[test]
    fn torn_tail_loses_at_most_one_record() {
        let dir = scratch("torn");
        seed_journal(&dir, 5);
        let applied = DiskChaos::new(1).mangle(&dir).unwrap();
        assert_eq!(applied, DiskFault::TornTail);
        let decoded = Journal::replay(dir.journal_path()).unwrap();
        assert!(decoded.payloads.len() >= 4);
        assert!(decoded.truncation.is_some());
    }

    #[test]
    fn short_write_leaves_replayable_prefix() {
        let dir = scratch("shortw");
        seed_journal(&dir, 3);
        let applied = DiskChaos::new(2).mangle(&dir).unwrap();
        assert_eq!(applied, DiskFault::ShortWrite);
        let decoded = Journal::replay(dir.journal_path()).unwrap();
        assert_eq!(decoded.payloads.len(), 3);
        assert_eq!(
            decoded.truncation.unwrap().reason,
            TruncationReason::TornHeader
        );
    }

    #[test]
    fn bit_flip_never_panics_replay() {
        for seed in [3u64, 8, 13, 18, 23] {
            let dir = scratch(&format!("flip{seed}"));
            seed_journal(&dir, 4);
            let applied = DiskChaos::new(seed).mangle(&dir).unwrap();
            assert_eq!(applied, DiskFault::BitFlip);
            let decoded = Journal::replay(dir.journal_path()).unwrap();
            assert!(decoded.payloads.len() <= 4);
        }
    }

    #[test]
    fn injected_short_write_tears_the_tail() {
        let dir = scratch("inject");
        let mut journal = Journal::open(dir.journal_path(), FsyncPolicy::Os)
            .unwrap()
            .with_chaos(WriteChaos::new(7).short_write_after(2));
        journal.append(b"a").unwrap();
        journal.append(b"b").unwrap();
        assert!(journal.append(b"c").is_err());
        drop(journal);
        let decoded = Journal::repair(dir.journal_path()).unwrap();
        assert_eq!(decoded.payloads, vec![b"a".to_vec(), b"b".to_vec()]);
        assert!(decoded.truncation.is_some());
    }

    #[test]
    fn injected_fsync_failure_surfaces() {
        let dir = scratch("fsync");
        let mut journal = Journal::open(dir.journal_path(), FsyncPolicy::Always)
            .unwrap()
            .with_chaos(WriteChaos::new(9).fail_fsync_after(1));
        journal.append(b"ok").unwrap();
        assert!(journal.append(b"doomed sync").is_err());
    }
}
