//! Crash-only persistence for the uptime broker.
//!
//! The broker is the availability-critical component of the brokered
//! architecture, yet (pre-PR 6) all of its learned state — absorbed
//! telemetry, the monotonic epoch, quarantine verdicts, the incident
//! log — lived in process memory. This crate makes that state durable
//! the crash-only way: there is no graceful-shutdown path to get right,
//! because recovery *is* the startup path.
//!
//! * [`record`] — the length-prefixed, CRC-checksummed on-disk codec.
//!   Decoding tolerates arbitrary corruption: it returns the longest
//!   valid prefix and never panics.
//! * [`journal`] — the append-only write-ahead [`Journal`]. Every
//!   accepted telemetry batch is journaled *before* the absorb commits;
//!   [`FsyncPolicy`] trades durability window against append cost.
//! * [`snapshot`] — [`StateDir`] layout plus atomic, manifest-carrying
//!   [`SnapshotStore`] snapshots that act as replay accelerators (the
//!   journal stays the source of truth).
//! * [`chaos`] — seeded [`DiskChaos`] / [`WriteChaos`] fault injectors
//!   (torn tails, short writes, bit flips, fsync failures, vanished
//!   snapshots) powering the kill-and-recover CI matrix.
//!
//! The broker-side wiring (what goes *into* a journal record, how
//! replay feeds the quarantine pipeline, epoch continuity) lives in
//! `uptime-broker`'s `durability` module; this crate knows only bytes,
//! files, and faults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod journal;
pub mod record;
pub mod snapshot;

pub use chaos::{DiskChaos, DiskFault, WriteChaos};
pub use journal::{FsyncPolicy, Journal, JournalStats};
pub use record::{decode_all, encode_record, Decoded, Truncation, TruncationReason, HEADER_LEN};
pub use snapshot::{LoadedSnapshot, SnapshotManifest, SnapshotStore, StateDir};
