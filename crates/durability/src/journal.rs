//! The append-only write-ahead journal.
//!
//! A [`Journal`] owns one file of [`crate::record`]-framed entries. The
//! broker appends the payload of every *accepted* telemetry batch before
//! the absorb commits, so after a crash the journal is a complete record
//! of everything the knowledge base had agreed to absorb.
//!
//! Durability is policy-driven ([`FsyncPolicy`]):
//!
//! * [`FsyncPolicy::Os`] (default) — `write(2)` completes, no explicit
//!   `fsync`. Data lives in the kernel page cache, which **survives
//!   process death** (SIGKILL, panic, OOM-kill) — the crash-only case
//!   this subsystem exists for. Only an OS crash or power loss can lose
//!   the un-synced tail, and recovery then truncates to the last valid
//!   record.
//! * [`FsyncPolicy::EveryN`] — `fsync` every Nth append: bounded loss
//!   window under power failure at a fraction of the cost.
//! * [`FsyncPolicy::Always`] — `fsync` every append: no loss window.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::chaos::WriteChaos;
use crate::record::{decode_all, encode_record_into, Decoded};

/// When the journal calls `fsync` after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Never fsync explicitly; rely on the OS page cache (survives
    /// process crashes, not power loss). The default.
    #[default]
    Os,
    /// Fsync after every Nth append (`EveryN(1)` ≡ [`FsyncPolicy::Always`]).
    EveryN(u32),
    /// Fsync after every append.
    Always,
}

impl FsyncPolicy {
    /// Whether this policy promises durability across power loss (any
    /// explicit fsync), as opposed to process crashes only. Consumers use
    /// this to decide whether *other* state files (snapshots) need
    /// fsyncing: under [`FsyncPolicy::Os`] the page cache already
    /// survives the threat model, so syncing them would buy nothing and
    /// cost milliseconds.
    #[must_use]
    pub fn guards_power_loss(self) -> bool {
        !matches!(self, FsyncPolicy::Os)
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "os" | "never" => Ok(FsyncPolicy::Os),
            "always" => Ok(FsyncPolicy::Always),
            other => match other.strip_prefix("every:") {
                Some(n) => n
                    .parse::<u32>()
                    .ok()
                    .filter(|n| *n > 0)
                    .map(FsyncPolicy::EveryN)
                    .ok_or_else(|| format!("bad fsync interval `{n}` (want every:N, N ≥ 1)")),
                None => Err(format!(
                    "unknown fsync policy `{other}` (expected os|always|every:N)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Os => f.write_str("os"),
            FsyncPolicy::Always => f.write_str("always"),
            FsyncPolicy::EveryN(n) => write!(f, "every:{n}"),
        }
    }
}

/// Lifetime counters for one open journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended.
    pub appends: u64,
    /// Bytes written (headers included).
    pub bytes: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
}

/// An open append-only journal file.
pub struct Journal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    appends_since_sync: u32,
    len: u64,
    stats: JournalStats,
    chaos: Option<WriteChaos>,
    /// Reused per-append encode buffer — the absorb path appends one
    /// record per accepted batch and should not allocate in steady state.
    scratch: Vec<u8>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("len", &self.len)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for appending.
    ///
    /// The caller is responsible for the file ending on a valid record
    /// boundary — after an unclean shutdown, run [`Journal::repair`]
    /// first so appends land after the last valid record rather than
    /// after a torn tail.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn open(path: impl AsRef<Path>, policy: FsyncPolicy) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        let len = file.seek(SeekFrom::End(0))?;
        Ok(Journal {
            file,
            path,
            policy,
            appends_since_sync: 0,
            len,
            stats: JournalStats::default(),
            chaos: None,
            scratch: Vec::new(),
        })
    }

    /// Attaches a seeded write-fault injector (tests only): short writes
    /// and fsync failures happen per its schedule.
    #[must_use]
    pub fn with_chaos(mut self, chaos: WriteChaos) -> Journal {
        self.chaos = Some(chaos);
        self
    }

    /// The journal file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current file length in bytes (a record boundary unless a fault
    /// tore the last append).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the journal holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lifetime append/byte/fsync counters.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Appends one payload as a framed record, applying the fsync policy.
    ///
    /// # Errors
    ///
    /// Propagates write and fsync failures. After an error the on-disk
    /// tail may be torn; the journal's length bookkeeping keeps the
    /// pre-append offset so a subsequent [`Journal::repair`] (or process
    /// restart) restores the invariant.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut framed = std::mem::take(&mut self.scratch);
        framed.clear();
        encode_record_into(&mut framed, payload);
        if let Some(short) = self
            .chaos
            .as_mut()
            .and_then(|c| c.short_write(framed.len()))
        {
            // Injected torn write: only a prefix reaches the file, then
            // the append fails as a crashed write would.
            self.file.write_all(&framed[..short])?;
            self.file.flush()?;
            self.scratch = framed;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!(
                    "injected short write ({short} of {} bytes)",
                    self.scratch.len()
                ),
            ));
        }
        self.file.write_all(&framed)?;
        self.len += framed.len() as u64;
        self.stats.appends += 1;
        self.stats.bytes += framed.len() as u64;
        self.scratch = framed;
        let due = match self.policy {
            FsyncPolicy::Os => false,
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                self.appends_since_sync >= n
            }
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces an fsync now, regardless of policy.
    ///
    /// # Errors
    ///
    /// Propagates the fsync failure (including injected ones).
    pub fn sync(&mut self) -> io::Result<()> {
        self.appends_since_sync = 0;
        if self.chaos.as_mut().is_some_and(WriteChaos::fail_fsync) {
            return Err(io::Error::other("injected fsync failure"));
        }
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Truncates the journal to zero length — physical compaction. Only
    /// safe once a snapshot covering every journaled record is durable.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.len = 0;
        Ok(())
    }

    /// Reads and decodes the journal at `path` without modifying it.
    /// A missing file decodes as empty.
    ///
    /// # Errors
    ///
    /// Propagates read failures (not decode problems — those surface as
    /// [`Decoded::truncation`]).
    pub fn replay(path: impl AsRef<Path>) -> io::Result<Decoded> {
        let path = path.as_ref();
        let bytes = match std::fs::File::open(path) {
            Ok(mut file) => {
                let mut bytes = Vec::new();
                file.read_to_end(&mut bytes)?;
                bytes
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        Ok(decode_all(&bytes))
    }

    /// Like [`Journal::replay`], but also truncates the file to the valid
    /// prefix so subsequent appends land on a record boundary.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn repair(path: impl AsRef<Path>) -> io::Result<Decoded> {
        let path = path.as_ref();
        let decoded = Self::replay(path)?;
        if decoded.truncation.is_some() {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(decoded.valid_len)?;
            file.sync_data()?;
        }
        Ok(decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TruncationReason;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uptime-journal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        let mut journal = Journal::open(&path, FsyncPolicy::Always).unwrap();
        journal.append(b"one").unwrap();
        journal.append(b"two").unwrap();
        assert_eq!(journal.stats().appends, 2);
        assert_eq!(journal.stats().fsyncs, 2);
        drop(journal);
        let decoded = Journal::replay(&path).unwrap();
        assert_eq!(decoded.payloads, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(decoded.truncation.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repair_truncates_torn_tail_and_appends_continue() {
        let path = tmp("repair");
        std::fs::remove_file(&path).ok();
        let mut journal = Journal::open(&path, FsyncPolicy::Os).unwrap();
        journal.append(b"good").unwrap();
        drop(journal);
        // Tear the tail by appending half a record's worth of garbage.
        {
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(&[0x55, 0x4A, 0x4C]).unwrap();
        }
        let decoded = Journal::repair(&path).unwrap();
        assert_eq!(decoded.payloads, vec![b"good".to_vec()]);
        assert_eq!(
            decoded.truncation.unwrap().reason,
            TruncationReason::TornHeader
        );
        let mut journal = Journal::open(&path, FsyncPolicy::Os).unwrap();
        journal.append(b"after repair").unwrap();
        drop(journal);
        let decoded = Journal::replay(&path).unwrap();
        assert_eq!(
            decoded.payloads,
            vec![b"good".to_vec(), b"after repair".to_vec()]
        );
        assert!(decoded.truncation.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_replays_empty() {
        let decoded = Journal::replay("/nonexistent/uptime/journal.log").unwrap();
        assert!(decoded.payloads.is_empty());
        assert!(decoded.truncation.is_none());
    }

    #[test]
    fn every_n_policy_batches_fsyncs() {
        let path = tmp("everyn");
        std::fs::remove_file(&path).ok();
        let mut journal = Journal::open(&path, FsyncPolicy::EveryN(3)).unwrap();
        for i in 0..7u8 {
            journal.append(&[i]).unwrap();
        }
        assert_eq!(journal.stats().fsyncs, 2, "7 appends at every:3 → 2 syncs");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!("os".parse::<FsyncPolicy>(), Ok(FsyncPolicy::Os));
        assert_eq!("always".parse::<FsyncPolicy>(), Ok(FsyncPolicy::Always));
        assert_eq!("every:8".parse::<FsyncPolicy>(), Ok(FsyncPolicy::EveryN(8)));
        assert!("every:0".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::EveryN(4).to_string(), "every:4");
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::Os);
    }
}
