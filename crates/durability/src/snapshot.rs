//! State directory layout and compacting snapshots.
//!
//! A [`StateDir`] is one directory holding everything the broker needs
//! to come back from the dead:
//!
//! ```text
//! <state-dir>/
//!   journal.log        append-only record stream (source of truth)
//!   snapshot.json      serialized broker state (replay accelerator)
//!   snapshot.manifest  JSON manifest: epoch, length, crc32, journal_offset
//! ```
//!
//! The journal is the source of truth; a snapshot only accelerates
//! replay. The manifest's `journal_offset` marks how far into the
//! journal the snapshot already covers, so recovery replays only the
//! suffix — *logical* compaction. The journal is never physically
//! truncated by snapshotting: losing a snapshot (disk-chaos seed 4) is
//! always recoverable by replaying from offset zero. Physical
//! compaction happens only on explicit admin request
//! (`brokerctl recover --compact`), and only after a fresh snapshot is
//! durable.
//!
//! Snapshot writes are atomic: payload and manifest each go to a temp
//! file, are fsynced, then renamed into place — a crash mid-snapshot
//! leaves the previous snapshot intact.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::record::crc32;

/// Version stamped into every snapshot manifest.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// A broker state directory (journal + snapshot + manifest paths).
#[derive(Debug, Clone)]
pub struct StateDir {
    root: PathBuf,
}

impl StateDir {
    /// Opens `root` as a state directory, creating it if absent.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(root: impl AsRef<Path>) -> io::Result<StateDir> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(StateDir { root })
    }

    /// The directory root.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the append-only journal.
    #[must_use]
    pub fn journal_path(&self) -> PathBuf {
        self.root.join("journal.log")
    }

    /// Path of the snapshot payload.
    #[must_use]
    pub fn snapshot_path(&self) -> PathBuf {
        self.root.join("snapshot.json")
    }

    /// Path of the snapshot manifest.
    #[must_use]
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("snapshot.manifest")
    }
}

/// The manifest written alongside every snapshot payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotManifest {
    /// Manifest format version ([`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Telemetry epoch captured in the snapshot.
    pub epoch: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 (IEEE) of the payload.
    pub crc32: u32,
    /// Journal offset the snapshot covers: replay resumes here.
    pub journal_offset: u64,
}

/// A snapshot loaded back from disk.
#[derive(Debug, Clone)]
pub struct LoadedSnapshot {
    /// The snapshot payload (serialized broker state).
    pub payload: Vec<u8>,
    /// Its manifest.
    pub manifest: SnapshotManifest,
}

/// Atomic snapshot reader/writer over a [`StateDir`].
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: StateDir,
    sync: bool,
}

impl SnapshotStore {
    /// Creates a store over `dir` that fsyncs every write (power-loss
    /// safe, the conservative default).
    #[must_use]
    pub fn new(dir: StateDir) -> SnapshotStore {
        SnapshotStore { dir, sync: true }
    }

    /// Sets whether writes fsync before the rename. Pass `false` when the
    /// journal runs under [`crate::FsyncPolicy::Os`]: the page cache
    /// survives process crashes — the crash-only threat model — and an
    /// fsync per snapshot costs milliseconds on the absorb path. The
    /// temp-file + rename dance stays either way, so a crash mid-write
    /// still never corrupts the previous snapshot.
    #[must_use]
    pub fn with_sync(mut self, sync: bool) -> SnapshotStore {
        self.sync = sync;
        self
    }

    /// The underlying state directory.
    #[must_use]
    pub fn dir(&self) -> &StateDir {
        &self.dir
    }

    /// Atomically writes `payload` plus a manifest recording `epoch` and
    /// `journal_offset`. Payload first, manifest second: a crash between
    /// the two renames leaves a stale manifest whose CRC no longer
    /// matches, which [`SnapshotStore::load`] treats as no snapshot.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write(&self, payload: &[u8], epoch: u64, journal_offset: u64) -> io::Result<()> {
        let manifest = SnapshotManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            epoch,
            len: payload.len() as u64,
            crc32: crc32(payload),
            journal_offset,
        };
        let manifest_json = serde_json::to_string(&manifest)
            .map_err(|e| io::Error::other(format!("manifest encode: {e}")))?;
        atomic_write(&self.dir.snapshot_path(), payload, self.sync)?;
        atomic_write(
            &self.dir.manifest_path(),
            manifest_json.as_bytes(),
            self.sync,
        )?;
        Ok(())
    }

    /// Loads the snapshot, returning `None` when it is absent or fails
    /// integrity checks (missing/unparsable manifest, length or CRC
    /// mismatch, unknown schema version). Recovery then falls back to a
    /// full journal replay from the seed state.
    ///
    /// # Errors
    ///
    /// Propagates read failures other than the files being absent.
    pub fn load(&self) -> io::Result<Option<LoadedSnapshot>> {
        let manifest_bytes = match std::fs::read(self.dir.manifest_path()) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let Ok(manifest) = serde_json::from_slice::<SnapshotManifest>(&manifest_bytes) else {
            return Ok(None);
        };
        if manifest.schema_version != MANIFEST_SCHEMA_VERSION {
            return Ok(None);
        }
        let payload = match std::fs::read(self.dir.snapshot_path()) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        if payload.len() as u64 != manifest.len || crc32(&payload) != manifest.crc32 {
            return Ok(None);
        }
        Ok(Some(LoadedSnapshot { payload, manifest }))
    }
}

/// Writes `bytes` to `path` via temp file + optional fsync + rename.
fn atomic_write(path: &Path, bytes: &[u8], sync: bool) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        if sync {
            file.sync_data()?;
        }
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> SnapshotStore {
        let root =
            std::env::temp_dir().join(format!("uptime-snapshot-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        SnapshotStore::new(StateDir::create(&root).unwrap())
    }

    #[test]
    fn write_load_roundtrip() {
        let store = scratch("roundtrip");
        store.write(b"{\"state\":1}", 42, 1234).unwrap();
        let loaded = store.load().unwrap().expect("snapshot present");
        assert_eq!(loaded.payload, b"{\"state\":1}");
        assert_eq!(loaded.manifest.epoch, 42);
        assert_eq!(loaded.manifest.journal_offset, 1234);
        assert_eq!(loaded.manifest.schema_version, MANIFEST_SCHEMA_VERSION);
    }

    #[test]
    fn missing_snapshot_loads_none() {
        let store = scratch("missing");
        assert!(store.load().unwrap().is_none());
    }

    #[test]
    fn corrupt_payload_loads_none() {
        let store = scratch("corrupt");
        store.write(b"pristine state", 7, 0).unwrap();
        std::fs::write(store.dir().snapshot_path(), b"pristine stats").unwrap();
        assert!(store.load().unwrap().is_none());
    }

    #[test]
    fn truncated_payload_loads_none() {
        let store = scratch("short");
        store.write(b"pristine state", 7, 0).unwrap();
        std::fs::write(store.dir().snapshot_path(), b"pristine").unwrap();
        assert!(store.load().unwrap().is_none());
    }

    #[test]
    fn garbage_manifest_loads_none() {
        let store = scratch("garbage");
        store.write(b"fine", 1, 0).unwrap();
        std::fs::write(store.dir().manifest_path(), b"not json {").unwrap();
        assert!(store.load().unwrap().is_none());
    }

    #[test]
    fn newer_snapshot_replaces_older() {
        let store = scratch("replace");
        store.write(b"old", 1, 10).unwrap();
        store.write(b"new state", 2, 20).unwrap();
        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.payload, b"new state");
        assert_eq!(loaded.manifest.epoch, 2);
        assert_eq!(loaded.manifest.journal_offset, 20);
    }
}
