//! End-to-end brokered-service flow across every crate:
//! telemetry harvest → knowledge-base ingestion → recommendation →
//! deployment planning → provisioning → Monte-Carlo audit.

use uptime_suite::broker::provider::GroundTruth;
use uptime_suite::broker::{
    audit_recommendation, BrokerService, CloudProvider, QuarantinePolicy, SimulatedProvider,
    SolutionRequest,
};
use uptime_suite::catalog::{case_study, extended, ComponentKind};
use uptime_suite::core::{FailuresPerYear, Probability, SystemSpec};

#[test]
fn full_pipeline_on_case_study_catalog() {
    // 1. The broker fronts the SoftLayer-like catalog.
    let broker = BrokerService::new(case_study::catalog());

    // 2. A provider exists for that cloud, with ground truth matching the
    //    catalog's beliefs.
    let mut provider = SimulatedProvider::new(case_study::cloud_id(), "IBM SoftLayer (simulated)")
        .with_ground_truth(
            ComponentKind::Compute,
            GroundTruth {
                down_probability: Probability::new(0.01).unwrap(),
                failures_per_year: FailuresPerYear::new(1.0).unwrap(),
            },
        );

    // 3. Telemetry flows into the knowledge base.
    let telemetry = provider
        .harvest_component_telemetry(ComponentKind::Compute, 30, 50.0, 77)
        .unwrap();
    let estimate = broker
        .ingest_component_telemetry(&case_study::cloud_id(), ComponentKind::Compute, &telemetry)
        .unwrap();
    // The estimate must be near the 1 % ground truth.
    assert!((estimate.down_probability().value() - 0.01).abs() < 0.005);

    // 4. Intake and recommendation.
    let request = SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(98.0)
        .unwrap()
        .penalty_per_hour(100.0)
        .unwrap()
        .build()
        .unwrap();
    let recommendation = broker.recommend(&request).unwrap();
    let cloud = &recommendation.clouds()[0];
    // The ingested telemetry agreed with the catalog, so the paper's
    // optimum is unchanged.
    assert_eq!(cloud.best().option_number(), 3);

    // 5. Plan and provision the winner.
    let plan = broker
        .plan(cloud.cloud(), &ComponentKind::paper_tiers(), cloud.best())
        .unwrap();
    let handle = provider.provision(&plan).unwrap();
    assert_eq!(provider.deployments(), vec![handle]);

    // 6. Audit the deployed architecture against the model.
    let catalog = broker.catalog_snapshot();
    let clusters: Vec<_> = ComponentKind::paper_tiers()
        .iter()
        .zip(cloud.best().method_ids())
        .map(|(kind, method)| catalog.cluster_spec(cloud.cloud(), *kind, method).unwrap())
        .collect();
    let system = SystemSpec::new(clusters).unwrap();
    let audit = audit_recommendation(&system, 32, 25.0, 5.0, 5).unwrap();
    assert!(
        audit.passes(),
        "audit gap {} pp (analytic {}, observed {})",
        audit.gap_percent_points(),
        audit.analytic(),
        audit.estimate().mean()
    );

    // 7. Teardown.
    assert!(provider.deprovision(handle));
    assert!(provider.deployments().is_empty());
}

#[test]
fn hybrid_brokerage_ranks_clouds() {
    let broker = BrokerService::new(extended::hybrid_catalog());
    let request = SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(98.0)
        .unwrap()
        .penalty_per_hour(100.0)
        .unwrap()
        .build()
        .unwrap();
    let recommendation = broker.recommend(&request).unwrap();
    assert_eq!(recommendation.clouds().len(), 3);

    // Every cloud evaluated its full 3×4×3 = 36-option space.
    for cloud in recommendation.clouds() {
        assert_eq!(cloud.options().len(), 36, "{}", cloud.cloud());
        // Option numbering is 1..=36 and sorted by cardinality.
        let numbers: Vec<usize> = cloud.options().iter().map(|o| o.option_number()).collect();
        assert_eq!(numbers, (1..=36).collect::<Vec<_>>());
        let mut prev = 0;
        for o in cloud.options() {
            assert!(o.evaluation().cardinality() >= prev);
            prev = o.evaluation().cardinality();
        }
    }

    // A global best exists and is no worse than any per-cloud best.
    let best = recommendation.best().unwrap();
    for cloud in recommendation.clouds() {
        assert!(best.evaluation().tco().total() <= cloud.best().evaluation().tco().total());
    }
}

#[test]
fn skewed_telemetry_changes_the_recommendation() {
    // §IV's construct-validity worry, demonstrated end to end: if storage
    // is actually far less reliable than the catalog claims, enough
    // telemetry flips the optimizer's choice for the storage tier.
    //
    // A 5× jump from the believed 5 % is exactly what the default
    // plausibility gate quarantines, so this deliberate regime change
    // needs the gate widened — the operator-facing knob for "yes, the
    // world really did get that much worse".
    let broker =
        BrokerService::new(case_study::catalog()).with_quarantine_policy(QuarantinePolicy {
            max_probability_shift: 0.25,
            ..QuarantinePolicy::default()
        });
    let provider = SimulatedProvider::new(case_study::cloud_id(), "sim").with_ground_truth(
        ComponentKind::Storage,
        GroundTruth {
            // Catastrophically worse than the believed 5 %.
            down_probability: Probability::new(0.25).unwrap(),
            failures_per_year: FailuresPerYear::new(10.0).unwrap(),
        },
    );

    let request = SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(98.0)
        .unwrap()
        .penalty_per_hour(100.0)
        .unwrap()
        .build()
        .unwrap();

    let before = broker.recommend(&request).unwrap();
    let before_uptime = before.clouds()[0]
        .best()
        .evaluation()
        .uptime()
        .availability()
        .value();

    // Pour in a lot of evidence (the catalog prior has 1000 node-years).
    for seed in 0..4 {
        let telemetry = provider
            .harvest_component_telemetry(ComponentKind::Storage, 100, 20.0, seed)
            .unwrap();
        broker
            .ingest_component_telemetry(&case_study::cloud_id(), ComponentKind::Storage, &telemetry)
            .unwrap();
    }

    let after_catalog = broker.catalog_snapshot();
    let belief = after_catalog
        .cloud(&case_study::cloud_id())
        .unwrap()
        .reliability(ComponentKind::Storage)
        .unwrap();
    assert!(
        belief.down_probability().value() > 0.15,
        "belief moved: {}",
        belief.down_probability()
    );

    let after = broker.recommend(&request).unwrap();
    let after_best = after.clouds()[0].best();
    // Storage must still be clustered, and the projected uptime of the
    // recommended option drops (the world got worse).
    assert!(
        after_best.labels()[1].contains("RAID"),
        "{:?}",
        after_best.labels()
    );
    assert!(
        after_best.evaluation().uptime().availability().value() < before_uptime,
        "uptime projection must reflect the skewed telemetry"
    );
}
