//! Integration tests for the extension subsystems: metacloud placement,
//! catalog persistence round-trips through the service, crew-constrained
//! staffing, and block-diagram composition against the simulator.

use uptime_suite::broker::{BrokerService, SolutionRequest};
use uptime_suite::catalog::{case_study, extended, persistence, ComponentKind};
use uptime_suite::core::{Block, ClusterSpec, Probability, SystemSpec};
use uptime_suite::sim::{crews::CrewSimulation, MonteCarloRunner, SimDuration};

fn paper_request() -> SolutionRequest {
    SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(98.0)
        .unwrap()
        .penalty_per_hour(100.0)
        .unwrap()
        .build()
        .unwrap()
}

#[test]
fn metacloud_beats_or_matches_every_single_cloud() {
    let broker = BrokerService::new(extended::hybrid_catalog());
    let request = paper_request();
    let meta = broker.recommend_metacloud(&request).unwrap();
    let per_cloud = broker.recommend(&request).unwrap();
    for cloud in per_cloud.clouds() {
        assert!(
            meta.evaluation().tco().total() <= cloud.best().evaluation().tco().total(),
            "metacloud must dominate {}",
            cloud.cloud()
        );
    }
    // On the hybrid catalog the winner actually mixes providers: reliable
    // singletons on stratus, cheap RAID on softlayer.
    assert!(meta.is_cross_cloud(), "{:?}", meta.clouds_used());
}

#[test]
fn persisted_catalog_yields_identical_recommendations() {
    let dir = std::env::temp_dir().join("uptime-suite-it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("persisted-catalog.json");

    let original = extended::hybrid_catalog();
    persistence::save(&original, &path).unwrap();
    let reloaded = persistence::load(&path).unwrap();
    assert_eq!(reloaded, original);

    let request = paper_request();
    let before = BrokerService::new(original).recommend(&request).unwrap();
    let after = BrokerService::new(reloaded).recommend(&request).unwrap();
    assert_eq!(before, after);
    std::fs::remove_file(&path).ok();
}

#[test]
fn telemetry_updates_survive_persistence() {
    use uptime_suite::broker::provider::GroundTruth;
    use uptime_suite::broker::{CloudProvider, SimulatedProvider};
    use uptime_suite::core::FailuresPerYear;

    let broker = BrokerService::new(case_study::catalog());
    let provider = SimulatedProvider::new(case_study::cloud_id(), "sim").with_ground_truth(
        ComponentKind::Compute,
        GroundTruth {
            down_probability: Probability::new(0.03).unwrap(),
            failures_per_year: FailuresPerYear::new(2.0).unwrap(),
        },
    );
    let telemetry = provider
        .harvest_component_telemetry(ComponentKind::Compute, 40, 25.0, 3)
        .unwrap();
    broker
        .ingest_component_telemetry(&case_study::cloud_id(), ComponentKind::Compute, &telemetry)
        .unwrap();

    let snapshot = broker.catalog_snapshot();
    let json = persistence::to_json(&snapshot).unwrap();
    let restored = persistence::from_json(&json).unwrap();
    let record = restored
        .cloud(&case_study::cloud_id())
        .unwrap()
        .reliability(ComponentKind::Compute)
        .unwrap();
    // Evidence grew beyond the built-in 1000 node-years and the belief
    // moved off the prior 1 %.
    assert!(record.node_years_observed() > 1000.0);
    assert!(record.down_probability().value() > 0.01);
}

#[test]
fn staffing_links_labor_to_uptime() {
    // The same farm, one vs eight repair crews: the FTE line item in C_HA
    // is not just cost — under-staffing costs availability.
    use uptime_suite::core::{FailuresPerYear, Minutes};
    let system = SystemSpec::new(vec![ClusterSpec::builder("farm")
        .total_nodes(8)
        .standby_budget(3)
        .node_down_probability(Probability::new(0.10).unwrap())
        .failures_per_year(FailuresPerYear::new(12.0).unwrap())
        .failover_time(Minutes::new(0.5).unwrap())
        .build()
        .unwrap()])
    .unwrap();
    let horizon = SimDuration::from_minutes(120.0 * 525_600.0);
    let starved = CrewSimulation::new(&system, vec![1], horizon, 5)
        .unwrap()
        .run();
    let staffed = CrewSimulation::new(&system, vec![8], horizon, 5)
        .unwrap()
        .run();
    assert!(staffed.availability() > starved.availability());
    // With ample crews the analytic model is recovered.
    let analytic = system.uptime().availability().value();
    assert!((staffed.availability().value() - analytic).abs() < 0.01);
}

#[test]
fn five_tier_enterprise_chain_end_to_end() {
    // The extended five-tier chain (LB → compute → DB → storage → GW):
    // per-cloud recommendation and metacloud placement over a
    // 2×3×3×4×3 = 216-option space per cloud (648-ish joint tiers).
    let broker = BrokerService::new(extended::hybrid_catalog());
    let request = SolutionRequest::builder()
        .tiers(extended::five_tiers())
        .sla_percent(98.0)
        .unwrap()
        .penalty_per_hour(100.0)
        .unwrap()
        .build()
        .unwrap();

    let per_cloud = broker.recommend(&request).unwrap();
    assert_eq!(per_cloud.clouds().len(), 3);
    for cloud in per_cloud.clouds() {
        assert_eq!(
            cloud.options().len(),
            2 * 3 * 3 * 4 * 3,
            "{}",
            cloud.cloud()
        );
        // The winner never pays more than the no-HA baseline's TCO.
        let baseline = cloud
            .options()
            .iter()
            .find(|o| o.evaluation().cardinality() == 0)
            .expect("all-baseline option exists");
        assert!(cloud.best().evaluation().tco().total() <= baseline.evaluation().tco().total());
    }

    let meta = broker.recommend_metacloud(&request).unwrap();
    assert_eq!(meta.placements().len(), 5);
    assert!(
        meta.evaluation().tco().total() <= per_cloud.best_tco().unwrap(),
        "metacloud dominates"
    );

    // The five-tier system's availability model stays consistent with a
    // Monte-Carlo of the winning architecture.
    let catalog = broker.catalog_snapshot();
    let best_cloud = per_cloud.best_cloud().unwrap();
    let clusters: Vec<_> = extended::five_tiers()
        .iter()
        .zip(best_cloud.best().method_ids())
        .map(|(kind, method)| {
            catalog
                .cluster_spec(best_cloud.cloud(), *kind, method)
                .unwrap()
        })
        .collect();
    let system = SystemSpec::new(clusters).unwrap();
    let estimate = MonteCarloRunner::new(system.clone())
        .trials(16)
        .years_per_trial(15.0)
        .base_seed(33)
        .run()
        .unwrap();
    assert!(
        estimate.agrees_with(system.uptime().availability(), 5.0),
        "analytic {} vs observed {}",
        system.uptime().availability(),
        estimate.mean()
    );
}

#[test]
fn dual_site_block_diagram_agrees_with_simulation() {
    // A parallel pair of identical serial sites: the block diagram's
    // availability must match a Monte-Carlo of an equivalent construction.
    let web = ClusterSpec::singleton("web", Probability::new(0.04).unwrap(), 2.0).unwrap();
    let db = ClusterSpec::singleton("db", Probability::new(0.06).unwrap(), 2.0).unwrap();
    let site = Block::series_of(vec![web.clone(), db.clone()]).unwrap();
    let dual = Block::Parallel(vec![site.clone(), site]);
    let analytic = dual.availability();

    // Simulate the two sites independently and combine: the system is up
    // unless both serial sites are down. Using the complement-product of
    // two independent single-site Monte-Carlo runs.
    let single_site = SystemSpec::new(vec![web, db]).unwrap();
    let estimate = MonteCarloRunner::new(single_site)
        .trials(24)
        .years_per_trial(40.0)
        .base_seed(21)
        .run()
        .unwrap();
    let site_down = 1.0 - estimate.mean().value();
    let simulated_dual = 1.0 - site_down * site_down;
    assert!(
        (analytic.value() - simulated_dual).abs() < 0.002,
        "block {} vs simulated {simulated_dual}",
        analytic
    );
}
