//! Experiment V1 (integration-level): the analytic model of Eqs. 1–4 must
//! agree with the discrete-event simulator across cluster shapes —
//! including shapes with non-trivial failover terms.

use uptime_suite::core::{ClusterSpec, FailuresPerYear, Minutes, Probability, SystemSpec};
use uptime_suite::sim::MonteCarloRunner;

fn p(v: f64) -> Probability {
    Probability::new(v).unwrap()
}

fn run_check(system: SystemSpec, trials: u32, years: f64, seed: u64) {
    let analytic = system.uptime().availability();
    let estimate = MonteCarloRunner::new(system)
        .trials(trials)
        .years_per_trial(years)
        .base_seed(seed)
        .run()
        .unwrap();
    assert!(
        estimate.agrees_with(analytic, 4.5),
        "analytic {} vs observed {} ± {}",
        analytic,
        estimate.mean(),
        estimate.std_error()
    );
}

#[test]
fn paper_option1_no_ha() {
    let system = SystemSpec::builder()
        .cluster(ClusterSpec::singleton("compute", p(0.01), 1.0).unwrap())
        .cluster(ClusterSpec::singleton("storage", p(0.05), 2.0).unwrap())
        .cluster(ClusterSpec::singleton("network", p(0.02), 1.0).unwrap())
        .build()
        .unwrap();
    run_check(system, 24, 30.0, 41);
}

#[test]
fn paper_option5_storage_and_network_ha() {
    let system = SystemSpec::builder()
        .cluster(ClusterSpec::singleton("compute", p(0.01), 1.0).unwrap())
        .cluster(
            ClusterSpec::builder("storage")
                .total_nodes(2)
                .standby_budget(1)
                .node_down_probability(p(0.05))
                .failures_per_year(FailuresPerYear::new(2.0).unwrap())
                .failover_time(Minutes::from_seconds(30.0).unwrap())
                .build()
                .unwrap(),
        )
        .cluster(
            ClusterSpec::builder("network")
                .total_nodes(2)
                .standby_budget(1)
                .node_down_probability(p(0.02))
                .failures_per_year(FailuresPerYear::new(1.0).unwrap())
                .failover_time(Minutes::new(1.0).unwrap())
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    run_check(system, 24, 30.0, 42);
}

#[test]
fn failover_dominated_cluster() {
    // A cluster whose downtime is mostly failover, not breakdown: frequent
    // failures (12/yr), long failover (30 min), tiny P. This stresses
    // Eq. 3 rather than Eq. 2.
    let system = SystemSpec::builder()
        .cluster(
            ClusterSpec::builder("flappy")
                .total_nodes(3)
                .standby_budget(2)
                .node_down_probability(p(0.002))
                .failures_per_year(FailuresPerYear::new(12.0).unwrap())
                .failover_time(Minutes::new(30.0).unwrap())
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    // Analytic F_s = 12 × 30 × 1 / 525600 ≈ 6.85e-4; B_s ≈ 8e-9.
    let analytic = system.uptime().availability();
    assert!((analytic.value() - (1.0 - 12.0 * 30.0 / 525_600.0)).abs() < 1e-5);
    run_check(system, 24, 40.0, 43);
}

#[test]
fn deep_redundancy_five_of_eight() {
    let system = SystemSpec::builder()
        .cluster(
            ClusterSpec::builder("farm")
                .total_nodes(8)
                .standby_budget(3)
                .node_down_probability(p(0.1))
                .failures_per_year(FailuresPerYear::new(6.0).unwrap())
                .failover_time(Minutes::new(0.5).unwrap())
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    run_check(system, 24, 25.0, 44);
}

#[test]
fn five_tier_serial_chain() {
    let mut builder = SystemSpec::builder();
    for (i, (pv, f)) in [
        (0.01, 1.0),
        (0.02, 2.0),
        (0.03, 1.5),
        (0.01, 0.5),
        (0.04, 3.0),
    ]
    .iter()
    .enumerate()
    {
        builder = builder.cluster(ClusterSpec::singleton(format!("tier{i}"), p(*pv), *f).unwrap());
    }
    run_check(builder.build().unwrap(), 20, 25.0, 45);
}

#[test]
fn ignoring_failover_term_overestimates_uptime() {
    // The F_s ablation: for a failover-heavy system, dropping Eq. 3 must
    // overestimate availability relative to the simulator.
    let system = SystemSpec::builder()
        .cluster(
            ClusterSpec::builder("flappy")
                .total_nodes(2)
                .standby_budget(1)
                .node_down_probability(p(0.01))
                .failures_per_year(FailuresPerYear::new(24.0).unwrap())
                .failover_time(Minutes::new(15.0).unwrap())
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let with_failover = system.uptime().availability();
    let without = system.uptime_ignoring_failover();
    // F_s ≈ 24 × 15 / 525600 ≈ 6.8e-4: material.
    assert!(without.value() - with_failover.value() > 5e-4);

    let estimate = MonteCarloRunner::new(system)
        .trials(20)
        .years_per_trial(40.0)
        .base_seed(46)
        .run()
        .unwrap();
    // The full model must agree; the ablated one must not.
    assert!(estimate.agrees_with(with_failover, 4.5));
    assert!(!estimate.agrees_with(without, 4.5));
}
