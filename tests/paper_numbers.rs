//! Regression tests pinning every number the paper reports in its
//! evaluation section (Figs. 3–10), exercised through the full stack
//! (catalog → optimizer → broker).

use uptime_suite::broker::{BrokerService, SolutionRequest};
use uptime_suite::catalog::{case_study, ComponentKind, HaMethodId};
use uptime_suite::optimizer::{exhaustive, Objective, SearchSpace};

fn paper_request() -> SolutionRequest {
    SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(98.0)
        .unwrap()
        .penalty_per_hour(100.0)
        .unwrap()
        .cloud(case_study::cloud_id())
        .as_is(vec![
            HaMethodId::new("vmware-ha-3p1"),
            HaMethodId::new("raid1"),
            HaMethodId::new("dual-gw"),
        ])
        .build()
        .unwrap()
}

/// Figs. 4–9 (and Fig. 3 = option #8): per-option uptime, slippage hours,
/// HA cost, penalty, and TCO.
#[test]
fn per_option_numbers_match_figures() {
    let broker = BrokerService::new(case_study::catalog());
    let rec = broker.recommend(&paper_request()).unwrap();
    let cloud = &rec.clouds()[0];

    // (option #, U_s %, billed hours, C_HA, penalty, TCO)
    let expected: [(usize, f64, f64, f64, f64, f64); 8] = [
        (1, 92.17, 43.0, 0.0, 4300.0, 4300.0),
        (2, 94.01, 30.0, 1000.0, 3000.0, 4000.0),
        (3, 96.78, 9.0, 350.0, 900.0, 1250.0),
        (4, 93.04, 37.0, 2200.0, 3700.0, 5900.0),
        (5, 98.71, 0.0, 1350.0, 0.0, 1350.0),
        (6, 94.91, 23.0, 3200.0, 2300.0, 5500.0),
        (7, 97.70, 3.0, 2550.0, 300.0, 2850.0),
        (8, 99.65, 0.0, 3550.0, 0.0, 3550.0),
    ];
    for (number, uptime, hours, ha, penalty, tco) in expected {
        let option = &cloud.options()[number - 1];
        assert_eq!(option.option_number(), number);
        let e = option.evaluation();
        assert!(
            (e.uptime().availability().as_percent() - uptime).abs() < 0.02,
            "#{number} uptime: got {:.4} want {uptime}",
            e.uptime().availability().as_percent()
        );
        assert_eq!(
            e.tco().billed_slippage_hours(),
            hours,
            "#{number} slippage hours"
        );
        assert!(
            (e.tco().ha_cost().value() - ha).abs() < 0.5,
            "#{number} C_HA"
        );
        assert!(
            (e.tco().penalty().value() - penalty).abs() < 0.5,
            "#{number} penalty"
        );
        assert!((e.tco().total().value() - tco).abs() < 0.5, "#{number} TCO");
    }
}

/// Fig. 10's ranking: #3 < #5 < #7 < #8 < #2 < #1 < #6 < #4 by TCO.
#[test]
fn fig10_tco_ordering() {
    let broker = BrokerService::new(case_study::catalog());
    let rec = broker.recommend(&paper_request()).unwrap();
    let cloud = &rec.clouds()[0];
    let mut by_tco: Vec<(usize, f64)> = cloud
        .options()
        .iter()
        .map(|o| (o.option_number(), o.evaluation().tco().total().value()))
        .collect();
    by_tco.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let order: Vec<usize> = by_tco.iter().map(|(n, _)| *n).collect();
    assert_eq!(order, vec![3, 5, 7, 8, 2, 1, 6, 4]);
}

/// Fig. 10's bottom line: OptCh = #3 at $1250; min-risk = #5 at $1350;
/// as-is = #8 at $3550; savings ≈ 62 %.
#[test]
fn fig10_headlines() {
    let broker = BrokerService::new(case_study::catalog());
    let rec = broker.recommend(&paper_request()).unwrap();
    let cloud = &rec.clouds()[0];
    assert_eq!(cloud.best().option_number(), 3);
    assert_eq!(cloud.best().evaluation().tco().total().value(), 1250.0);
    assert_eq!(cloud.min_risk().unwrap().option_number(), 5);
    assert_eq!(
        cloud.min_risk().unwrap().evaluation().tco().total().value(),
        1350.0
    );
    assert_eq!(cloud.as_is().unwrap().option_number(), 8);
    assert_eq!(
        cloud.as_is().unwrap().evaluation().tco().total().value(),
        3550.0
    );
    let savings = cloud.savings_vs_as_is().unwrap();
    assert!(
        (savings - 0.6197).abs() < 0.001,
        "paper's ≈62 %, got {savings}"
    );
}

/// Only options #5 and #8 avoid the penalty (Fig. 10's "SLA Violation?"
/// column).
#[test]
fn sla_violation_column() {
    let broker = BrokerService::new(case_study::catalog());
    let rec = broker.recommend(&paper_request()).unwrap();
    let cloud = &rec.clouds()[0];
    let no_violation: Vec<usize> = cloud
        .options()
        .iter()
        .filter(|o| o.meets_sla())
        .map(|o| o.option_number())
        .collect();
    assert_eq!(no_violation, vec![5, 8]);
}

/// The factorized fast path reproduces the paper's golden numbers exactly:
/// option #1 (all baseline) shows `U_s` = 92.17 %, 43 billed slippage
/// hours, $4300 TCO; option #3 (RAID-1 only) shows `U_s` = 96.78 % at
/// $1250 and is the streaming argmin.
#[test]
fn fast_path_reproduces_golden_numbers() {
    use uptime_suite::optimizer::{fast, FastEvaluator};

    let space = SearchSpace::from_catalog(
        &case_study::catalog(),
        &case_study::cloud_id(),
        &ComponentKind::paper_tiers(),
    )
    .unwrap();
    let model = case_study::tco_model();
    let engine = FastEvaluator::new(&space, &model);

    // Option #1: no HA anywhere.
    let option1 = engine.evaluate(&[0, 0, 0]);
    assert!(
        (option1.uptime().availability().as_percent() - 92.17).abs() < 0.02,
        "option #1 U_s: {}",
        option1.uptime().availability().as_percent()
    );
    assert_eq!(option1.tco().billed_slippage_hours(), 43.0);
    assert!((option1.tco().total().value() - 4300.0).abs() < 0.5);

    // Option #3: RAID-1 on storage only.
    let option3 = engine.evaluate(&[0, 1, 0]);
    assert!(
        (option3.uptime().availability().as_percent() - 96.78).abs() < 0.02,
        "option #3 U_s: {}",
        option3.uptime().availability().as_percent()
    );
    assert!((option3.tco().total().value() - 1250.0).abs() < 0.5);

    // The streaming search lands on option #3 having visited all 8.
    let outcome = fast::search(&space, &model, Objective::MinTco);
    assert_eq!(outcome.best().unwrap().assignment(), &[0, 1, 0]);
    assert_eq!(outcome.best().unwrap().tco().total().value(), 1250.0);
    assert_eq!(outcome.stats().evaluated, 8);
}

/// §III.C's worked example — the pruned search clips option #8 after #5 —
/// and still lands on the paper's optimum.
#[test]
fn pruned_search_clips_option_8() {
    let space = SearchSpace::from_catalog(
        &case_study::catalog(),
        &case_study::cloud_id(),
        &ComponentKind::paper_tiers(),
    )
    .unwrap();
    let model = case_study::tco_model();
    let outcome = uptime_suite::optimizer::pruned::search(&space, &model, Objective::MinTco);
    assert_eq!(outcome.stats().evaluated, 7);
    assert_eq!(outcome.stats().skipped, 1);
    assert_eq!(outcome.best().unwrap().tco().total().value(), 1250.0);

    let full = exhaustive::search(&space, &model, Objective::MinTco);
    assert_eq!(
        full.best().unwrap().assignment(),
        outcome.best().unwrap().assignment()
    );
}
