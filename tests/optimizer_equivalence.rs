//! Property-based equivalence of the exact search algorithms, plus model
//! invariants, over randomized search spaces.

use proptest::prelude::*;
use uptime_suite::core::{
    ClusterSpec, FailuresPerYear, Minutes, MoneyPerMonth, PenaltyClause, Probability, SlaTarget,
    TcoModel,
};
use uptime_suite::optimizer::{
    branch_bound, exhaustive, greedy, pruned, Candidate, ComponentChoices, Objective, SearchSpace,
};

/// Strategy: one component with a free baseline plus up to 2 HA options.
fn component_strategy(index: usize) -> impl Strategy<Value = ComponentChoices> {
    (
        0.001f64..0.2,  // node down probability
        0.1f64..6.0,    // failures/year
        1usize..=3,     // number of candidates
        0.0f64..20.0,   // failover minutes for HA candidates
        1.0f64..3000.0, // cost scale
    )
        .prop_map(move |(p, f, k, failover, cost)| {
            let mut candidates = vec![Candidate::new(
                "none",
                ClusterSpec::singleton(format!("c{index}"), Probability::new(p).unwrap(), f)
                    .unwrap(),
                MoneyPerMonth::ZERO,
                true,
            )];
            for level in 1..k {
                let cluster = ClusterSpec::builder(format!("c{index}-ha{level}"))
                    .total_nodes(1 + level as u32 * 2)
                    .standby_budget(level as u32)
                    .node_down_probability(Probability::new(p).unwrap())
                    .failures_per_year(FailuresPerYear::new(f).unwrap())
                    .failover_time(Minutes::new(failover).unwrap())
                    .build()
                    .unwrap();
                candidates.push(Candidate::new(
                    format!("ha{level}"),
                    cluster,
                    MoneyPerMonth::new(cost * level as f64).unwrap(),
                    false,
                ));
            }
            ComponentChoices::new(format!("comp{index}"), candidates).unwrap()
        })
}

fn space_strategy() -> impl Strategy<Value = SearchSpace> {
    prop::collection::vec(any::<u8>(), 1..=4).prop_flat_map(|seeds| {
        let comps: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, _)| component_strategy(i))
            .collect();
        comps.prop_map(|v| SearchSpace::new(v).unwrap())
    })
}

fn model_strategy() -> impl Strategy<Value = TcoModel> {
    (80.0f64..99.99, 0.0f64..500.0).prop_map(|(sla, rate)| {
        TcoModel::new(
            SlaTarget::from_percent(sla).unwrap(),
            PenaltyClause::per_hour(rate).unwrap(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exhaustive, superset-pruned, and branch-and-bound always agree on
    /// the minimum TCO.
    #[test]
    fn exact_searches_agree(space in space_strategy(), model in model_strategy()) {
        let full = exhaustive::search(&space, &model, Objective::MinTco);
        let fast = pruned::search(&space, &model, Objective::MinTco);
        let bb = branch_bound::search(&space, &model);
        let best = full.best().unwrap().tco().total();
        prop_assert_eq!(fast.best().unwrap().tco().total(), best);
        prop_assert_eq!(bb.best().unwrap().tco().total(), best);
    }

    /// The pruned search does no more work than exhaustive and accounts
    /// for the entire space.
    #[test]
    fn pruned_covers_space(space in space_strategy(), model in model_strategy()) {
        let fast = pruned::search(&space, &model, Objective::MinTco);
        prop_assert_eq!(
            u128::from(fast.stats().considered()),
            space.assignment_count()
        );
        prop_assert!(u128::from(fast.stats().evaluated) <= space.assignment_count());
    }

    /// Greedy is never better than the exact optimum (sanity of both).
    #[test]
    fn greedy_never_beats_exact(space in space_strategy(), model in model_strategy()) {
        let full = exhaustive::search(&space, &model, Objective::MinTco);
        let heuristic = greedy::search(&space, &model, Objective::MinTco);
        prop_assert!(
            heuristic.best().unwrap().tco().total() >= full.best().unwrap().tco().total()
        );
    }

    /// Every evaluation's TCO is at least its HA cost, and its uptime is a
    /// valid probability.
    #[test]
    fn evaluation_invariants(space in space_strategy(), model in model_strategy()) {
        let full = exhaustive::search(&space, &model, Objective::MinTco);
        for e in full.evaluations() {
            prop_assert!(e.tco().total() >= e.tco().ha_cost());
            let u = e.uptime().availability().value();
            prop_assert!((0.0..=1.0).contains(&u));
            let d = e.uptime().downtime_probability().value();
            prop_assert!((u + d - 1.0).abs() < 1e-12);
        }
    }

    /// The optimal TCO is monotone non-decreasing in the SLA target — a
    /// stricter contract can never be cheaper to serve.
    #[test]
    fn sweep_tco_monotone_in_target(space in space_strategy(), rate in 0.0f64..500.0) {
        use uptime_suite::core::{PenaltyClause, RoundingPolicy};
        use uptime_suite::optimizer::sweep;
        let penalty = PenaltyClause::per_hour(rate).unwrap();
        let targets: Vec<f64> = (0..12).map(|i| 85.0 + f64::from(i) * 1.25).collect();
        let result = sweep::sla_sweep(&space, &penalty, RoundingPolicy::CeilHour, &targets);
        let mut prev = uptime_suite::core::MoneyPerMonth::ZERO;
        for point in result.points() {
            prop_assert!(point.best_tco >= prev, "at {}%", point.sla_percent);
            prev = point.best_tco;
        }
        // Each sweep point's winner matches a direct exhaustive run at
        // that target.
        for point in result.points() {
            let model = TcoModel::new(
                SlaTarget::from_percent(point.sla_percent).unwrap(),
                penalty.clone(),
            );
            let direct = exhaustive::search(&space, &model, Objective::MinTco);
            prop_assert_eq!(
                direct.best().unwrap().tco().total(),
                point.best_tco,
                "at {}%", point.sla_percent
            );
        }
    }

    /// Upgrading one component from baseline to HA never reduces total
    /// C_HA (the monotonicity the pruning correctness rests on).
    #[test]
    fn cost_monotone_in_upgrades(space in space_strategy(), model in model_strategy()) {
        let Some(baseline) = space.baseline_assignment() else {
            return Ok(());
        };
        let base_eval = uptime_suite::optimizer::Evaluation::evaluate(&space, &model, &baseline);
        for (i, comp) in space.components().iter().enumerate() {
            for idx in 0..comp.len() {
                let mut upgraded = baseline.clone();
                upgraded[i] = idx;
                let e = uptime_suite::optimizer::Evaluation::evaluate(&space, &model, &upgraded);
                prop_assert!(e.tco().ha_cost() >= base_eval.tco().ha_cost());
            }
        }
    }
}
