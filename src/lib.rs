//! # uptime-suite
//!
//! Facade over the full reproduction of *"Uptime-Optimized Cloud
//! Architecture as a Brokered Service"* (DSN 2017):
//!
//! * [`core`] — the probabilistic availability + TCO model (Eqs. 1–6).
//! * [`catalog`] — the broker's knowledge base (HA methods, rate cards,
//!   reliability records, cloud profiles).
//! * [`optimizer`] — exhaustive / superset-pruned / branch-and-bound /
//!   heuristic search over HA permutations.
//! * [`sim`] — the discrete-event infrastructure simulator and Monte-Carlo
//!   validation harness.
//! * [`broker`] — the brokered service: simulated providers, telemetry
//!   estimation, recommendations, reports, planning, audit.
//! * [`serve`] — the long-lived serving daemon: epoch-keyed response
//!   caching, single-flight coalescing, backpressured admission control.
//!
//! See the `examples/` directory for runnable walkthroughs, starting with
//! `quickstart.rs`.
//!
//! ```
//! use uptime_suite::core::{ClusterSpec, Probability, SystemSpec};
//!
//! # fn main() -> Result<(), uptime_suite::core::ModelError> {
//! let system = SystemSpec::builder()
//!     .cluster(ClusterSpec::singleton("web", Probability::new(0.02)?, 2.0)?)
//!     .build()?;
//! assert!((system.uptime().availability().value() - 0.98).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use uptime_broker as broker;
pub use uptime_catalog as catalog;
pub use uptime_core as core;
pub use uptime_optimizer as optimizer;
pub use uptime_serve as serve;
pub use uptime_sim as sim;

/// The common imports for working with the suite.
///
/// ```
/// use uptime_suite::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let broker = BrokerService::new(case_study::catalog());
/// let request = SolutionRequest::builder()
///     .tiers(ComponentKind::paper_tiers())
///     .sla_percent(98.0)?
///     .penalty_per_hour(100.0)?
///     .build()?;
/// assert_eq!(
///     broker.recommend(&request)?.best_tco().unwrap().value(),
///     1250.0
/// );
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use uptime_broker::{
        audit_recommendation, BrokerService, CloudProvider, Recommendation, SimulatedProvider,
        SolutionRequest,
    };
    pub use uptime_catalog::{case_study, extended, CatalogStore, CloudId, ComponentKind};
    pub use uptime_core::{
        ClusterSpec, FailuresPerYear, Minutes, MoneyPerMonth, PenaltyClause, Probability,
        SlaTarget, SystemSpec, TcoModel,
    };
    pub use uptime_optimizer::{Objective, SearchSpace};
    pub use uptime_sim::{MonteCarloRunner, SimConfig, Simulation};
}
