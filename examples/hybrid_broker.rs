//! Hybrid-brokerage scenario (the paper's §V future work): three clouds,
//! extended HA methods (OS clustering, SDS, multipathing, BGP dual
//! circuits), and broker telemetry refining the knowledge base before the
//! recommendation is made.
//!
//! Run with: `cargo run --example hybrid_broker`

use uptime_suite::broker::provider::GroundTruth;
use uptime_suite::broker::{
    report, BrokerService, CloudProvider, SimulatedProvider, SolutionRequest,
};
use uptime_suite::catalog::{extended, ComponentKind};
use uptime_suite::core::{FailuresPerYear, Probability};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The broker fronts three clouds with different rate cards and
    // reliability profiles (see uptime-catalog's `extended` module).
    let broker = BrokerService::new(extended::hybrid_catalog());

    // Before recommending, the broker refreshes its beliefs about the
    // cheap cloud's storage tier: the simulated provider's ground truth is
    // worse than the rate-card brochure claims.
    let nimbus = SimulatedProvider::new(extended::nimbus_id(), "Nimbus (simulated)")
        .with_ground_truth(
            ComponentKind::Storage,
            GroundTruth {
                down_probability: Probability::new(0.08)?,
                failures_per_year: FailuresPerYear::new(3.0)?,
            },
        );
    let telemetry = nimbus.harvest_component_telemetry(ComponentKind::Storage, 40, 50.0, 2024)?;
    let estimate = broker.ingest_component_telemetry(
        &extended::nimbus_id(),
        ComponentKind::Storage,
        &telemetry,
    )?;
    println!(
        "Telemetry ingested for nimbus/storage: P̂={:.2}%  f̂={:.2}/yr over {:.0} node-years",
        estimate.down_probability().as_percent(),
        estimate.failures_per_year().value(),
        estimate.node_years(),
    );

    // Now the customer intake: same three-tier architecture, same 98 % SLA
    // with a $100/hour penalty, but considering every cloud.
    let request = SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(98.0)?
        .penalty_per_hour(100.0)?
        .build()?;
    let recommendation = broker.recommend(&request)?;

    println!("\n=== Cross-cloud comparison ===\n");
    print!("{}", report::render_cross_cloud(&recommendation));

    println!("\n=== Per-cloud summaries ===\n");
    for cloud in recommendation.clouds() {
        print!("{}", report::render_fig10_summary(cloud));
        println!();
    }

    // Export the machine-readable recommendation, as a brokered service
    // would return to its caller.
    let json = report::to_json(&recommendation)?;
    println!("JSON recommendation payload: {} bytes", json.len());

    let best_cloud = recommendation.best_cloud().expect("clouds evaluated");
    println!(
        "\nBroker verdict: deploy on `{}` (option #{}, ${:.0}/mo, U_s {:.2}%)",
        best_cloud.cloud(),
        best_cloud.best().option_number(),
        best_cloud.best().evaluation().tco().total().value(),
        best_cloud
            .best()
            .evaluation()
            .uptime()
            .availability()
            .as_percent(),
    );

    // Finally, the paper's §V "larger goal": the metacloud. Let each tier
    // land on whichever provider prices it best.
    let meta = broker.recommend_metacloud(&request)?;
    println!(
        "\n=== Metacloud (cross-provider) deployment — {} assignments searched ===\n",
        meta.assignments_searched()
    );
    for placement in meta.placements() {
        println!(
            "  {:<18} -> {:<10} via {:<22} (${:.0}/mo)",
            placement.component.label(),
            placement.cloud,
            placement.method,
            placement.monthly_cost.value(),
        );
    }
    println!(
        "Metacloud TCO ${:.0}/mo at U_s {:.2}% across {} cloud(s){}",
        meta.evaluation().tco().total().value(),
        meta.evaluation().uptime().availability().as_percent(),
        meta.clouds_used().len(),
        if meta.is_cross_cloud() {
            " — ownership scattered across providers, as §V envisages"
        } else {
            ""
        },
    );
    let single = recommendation.best_tco().expect("evaluated");
    assert!(meta.evaluation().tco().total() <= single);
    println!(
        "(best single cloud was ${:.0}/mo — the metacloud saves ${:.0}/mo)",
        single.value(),
        single.value() - meta.evaluation().tco().total().value(),
    );
    Ok(())
}
