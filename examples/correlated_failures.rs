//! Experiment T1: how badly does the paper's independence assumption
//! (Eq. 2) break under correlated, common-cause failures?
//!
//! Takes the case-study storage pair (RAID-1) and layers rack events that
//! down both mirrors at once, sweeping the event rate. The analytic model
//! never moves — it assumes independence — while observed availability
//! degrades linearly with the correlated-event rate.
//!
//! Run with: `cargo run --release --example correlated_failures`

use uptime_suite::core::{ClusterSpec, FailuresPerYear, Minutes, Probability, SystemSpec};
use uptime_suite::sim::{CommonCause, CorrelatedSimulation, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = SystemSpec::builder()
        .cluster(
            ClusterSpec::builder("storage")
                .total_nodes(2)
                .standby_budget(1)
                .node_down_probability(Probability::new(0.05)?)
                .failures_per_year(FailuresPerYear::new(2.0)?)
                .failover_time(Minutes::from_seconds(30.0)?)
                .build()?,
        )
        .build()?;
    let analytic = system.uptime().availability();
    let horizon = SimDuration::from_minutes(3000.0 * 525_600.0); // 3000 years

    println!(
        "RAID-1 storage pair, analytic U_s = {:.4}% (independence assumed)\n",
        analytic.as_percent()
    );
    println!(
        "{:>14} {:>14} {:>16} {:>12}",
        "rack events/yr", "observed U_s %", "model error (pp)", "breakdowns"
    );
    for rate in [0.0, 1.0, 2.0, 4.0, 8.0] {
        let cc = CommonCause {
            rate_per_year: rate,
            blast_radius: 2,
            mttr_minutes: 240.0,
        };
        let report = CorrelatedSimulation::new(&system, vec![cc], horizon, 42)?.run();
        let observed = report.availability();
        println!(
            "{:>14.1} {:>14.4} {:>16.4} {:>12}",
            rate,
            observed.as_percent(),
            analytic.as_percent() - observed.as_percent(),
            report.clusters()[0].breakdowns,
        );
    }
    println!(
        "\nReading: every correlated event downs both mirrors until the first\n\
         repair (~2 h at MTTR 4 h), adding downtime the binomial model cannot\n\
         see. A broker feeding Eq. 2 with per-node P_i should either verify\n\
         failure independence or inflate P_i to cover common-cause events."
    );
    Ok(())
}
