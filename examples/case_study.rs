//! Full reproduction of the paper's §III client case study: prints every
//! figure (Figs. 3–10) as a table and checks the headline numbers.
//!
//! Run with: `cargo run --example case_study`

use uptime_suite::broker::{report, BrokerService, SolutionRequest};
use uptime_suite::catalog::{case_study, ComponentKind, HaMethodId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let broker = BrokerService::new(case_study::catalog());
    let request = SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(case_study::SLA_PERCENT)?
        .penalty_per_hour(case_study::PENALTY_PER_HOUR)?
        .cloud(case_study::cloud_id())
        // The provider's as-is strategy: ad-hoc HA in every layer (Fig. 3).
        .as_is(vec![
            HaMethodId::new("vmware-ha-3p1"),
            HaMethodId::new("raid1"),
            HaMethodId::new("dual-gw"),
        ])
        .build()?;

    let recommendation = broker.recommend(&request)?;
    let cloud = &recommendation.clouds()[0];
    let model = request.tco_model();

    // Figs. 4–9 (and Fig. 3 = option #8): one table per option.
    println!("=== Per-option tables (paper Figs. 3-9) ===\n");
    for option in cloud.options() {
        println!(
            "{}",
            report::render_option_table(option, &ComponentKind::paper_tiers(), &model)
        );
    }

    // Fig. 10: the summary.
    println!("=== Summary (paper Fig. 10) ===\n");
    print!("{}", report::render_fig10_summary(cloud));

    // Headline checks, mirroring the paper's claims.
    let best = cloud.best();
    assert_eq!(best.option_number(), 3, "OptCh must be option #3");
    assert_eq!(best.evaluation().tco().total().value(), 1250.0);
    let min_risk = cloud.min_risk().expect("options #5/#8 meet the SLA");
    assert_eq!(min_risk.option_number(), 5);
    let savings = cloud.savings_vs_as_is().expect("as-is provided");
    assert!(
        (savings - 0.62).abs() < 0.005,
        "savings ≈ 62 %, got {savings}"
    );
    println!("\nAll headline numbers reproduce the paper. ✔");
    Ok(())
}
