//! Quickstart: model a three-tier system, price its HA options, and ask
//! the broker for the uptime-optimized architecture.
//!
//! Run with: `cargo run --example quickstart`

use uptime_suite::broker::{BrokerService, SolutionRequest};
use uptime_suite::catalog::{case_study, ComponentKind};
use uptime_suite::core::{ClusterSpec, Probability, SystemSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The availability model directly: the paper's base architecture
    //    (no HA anywhere) reaches only 92.17 % uptime.
    let base = SystemSpec::builder()
        .cluster(ClusterSpec::singleton(
            "compute",
            Probability::new(0.01)?,
            1.0,
        )?)
        .cluster(ClusterSpec::singleton(
            "storage",
            Probability::new(0.05)?,
            2.0,
        )?)
        .cluster(ClusterSpec::singleton(
            "network",
            Probability::new(0.02)?,
            1.0,
        )?)
        .build()?;
    let uptime = base.uptime();
    println!(
        "Base architecture uptime: {:.2}% (breakdown {:.4}%, failover {:.6}%)",
        uptime.availability().as_percent(),
        uptime.breakdown_probability().as_percent(),
        uptime.failover_probability().as_percent(),
    );

    // 2. The brokered service: enumerate all 2^3 HA permutations on the
    //    SoftLayer-like catalog against a 98 % SLA at $100/hour.
    let broker = BrokerService::new(case_study::catalog());
    let request = SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(98.0)?
        .penalty_per_hour(100.0)?
        .cloud(case_study::cloud_id())
        .build()?;
    let recommendation = broker.recommend(&request)?;
    let cloud = &recommendation.clouds()[0];

    println!("\nAll {} options:", cloud.options().len());
    for option in cloud.options() {
        println!(
            "  #{}: {:<55} U_s={:.2}%  TCO=${:>5.0}/mo",
            option.option_number(),
            option.labels().join(" / "),
            option.evaluation().uptime().availability().as_percent(),
            option.evaluation().tco().total().value(),
        );
    }

    let best = cloud.best();
    println!(
        "\nRecommendation: option #{} ({}) at ${:.0}/month",
        best.option_number(),
        best.labels().join(" / "),
        best.evaluation().tco().total().value()
    );
    if let Some(min_risk) = cloud.min_risk() {
        println!(
            "Penalty-free alternative: option #{} at ${:.0}/month",
            min_risk.option_number(),
            min_risk.evaluation().tco().total().value()
        );
    }

    // 3. Turn the winner into a provisioning plan.
    let plan = broker.plan(cloud.cloud(), &ComponentKind::paper_tiers(), best)?;
    println!("\nDeployment plan for `{}`:", plan.cloud());
    for step in plan.steps() {
        println!(
            "  provision {} node(s) of {} as {}",
            step.nodes(),
            step.component(),
            step.method_label()
        );
    }
    Ok(())
}
