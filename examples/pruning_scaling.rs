//! Experiment C1 (paper §III.C): how the superset-pruned search and
//! branch-and-bound tame the `O(k^n)` exhaustive enumeration as systems
//! grow.
//!
//! Builds synthetic search spaces with `n` components and `k` HA choices
//! each, and prints evaluations performed by each algorithm plus agreement
//! of the found optimum.
//!
//! Run with: `cargo run --release --example pruning_scaling`

use uptime_suite::core::{
    ClusterSpec, FailuresPerYear, Minutes, MoneyPerMonth, PenaltyClause, Probability, SlaTarget,
    TcoModel,
};
use uptime_suite::optimizer::{
    branch_bound, exhaustive, pruned, Candidate, ComponentChoices, Objective, SearchSpace,
};

/// Builds a synthetic space: each component has a free baseline plus
/// `k − 1` increasingly redundant (and costly) HA methods.
fn synthetic_space(n: usize, k: usize) -> SearchSpace {
    let components = (0..n)
        .map(|i| {
            let p = 0.01 + 0.01 * (i % 5) as f64;
            let mut candidates = vec![Candidate::new(
                "none",
                ClusterSpec::singleton(format!("c{i}"), Probability::new(p).unwrap(), 1.0).unwrap(),
                MoneyPerMonth::ZERO,
                true,
            )];
            for level in 1..k {
                let cluster = ClusterSpec::builder(format!("c{i}-ha{level}"))
                    .total_nodes(1 + level as u32)
                    .standby_budget(level as u32)
                    .node_down_probability(Probability::new(p).unwrap())
                    .failures_per_year(FailuresPerYear::new(1.0).unwrap())
                    .failover_time(Minutes::new(1.0).unwrap())
                    .build()
                    .unwrap();
                candidates.push(Candidate::new(
                    format!("ha{level}"),
                    cluster,
                    MoneyPerMonth::new(200.0 * level as f64 + 50.0 * i as f64).unwrap(),
                    false,
                ));
            }
            ComponentChoices::new(format!("comp{i}"), candidates).unwrap()
        })
        .collect();
    SearchSpace::new(components).unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = TcoModel::new(
        SlaTarget::from_percent(98.0)?,
        PenaltyClause::per_hour(100.0)?,
    );

    println!(
        "{:>3} {:>3} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "n", "k", "space", "exhaustive", "pruned", "B&B", "agree"
    );
    for &k in &[2usize, 3, 4] {
        for &n in &[2usize, 4, 6, 8, 10] {
            // Keep the biggest products tractable for a demo run.
            if (k as u128).pow(n as u32) > 2_000_000 {
                continue;
            }
            let space = synthetic_space(n, k);
            let full = exhaustive::search(&space, &model, Objective::MinTco);
            let fast = pruned::search(&space, &model, Objective::MinTco);
            let bb = branch_bound::search(&space, &model);
            let best = full.best().unwrap().tco().total();
            let agree = fast.best().unwrap().tco().total() == best
                && bb.best().unwrap().tco().total() == best;
            println!(
                "{:>3} {:>3} {:>12} {:>12} {:>12} {:>12} {:>8}",
                n,
                k,
                space.assignment_count(),
                full.stats().evaluated,
                fast.stats().evaluated,
                bb.stats().evaluated,
                if agree { "yes" } else { "NO" },
            );
            assert!(agree, "all exact algorithms must agree");
        }
    }
    println!("\nPruned and branch-and-bound always match the exhaustive optimum. ✔");
    Ok(())
}
