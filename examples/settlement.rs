//! Experiment S1: does Eq. 5's *expected* TCO match what a provider would
//! actually pay out month by month?
//!
//! Simulates a 10-year contract for each case-study option and settles
//! every month on realized downtime, the way the contract would. The
//! penalty function is convex (hinge + hour ceiling), so realized means
//! sit at or above Eq. 5 — the Jensen premium the paper's pricing misses.
//!
//! Run with: `cargo run --release --example settlement`

use uptime_suite::broker::settlement::settle;
use uptime_suite::catalog::{case_study, ComponentKind};
use uptime_suite::core::{MoneyPerMonth, SystemSpec};
use uptime_suite::optimizer::SearchSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = case_study::catalog();
    let space = SearchSpace::from_catalog(
        &catalog,
        &case_study::cloud_id(),
        &ComponentKind::paper_tiers(),
    )?;
    let model = case_study::tco_model();
    let months = 120;

    println!(
        "{:<12} {:>12} {:>14} {:>12} {:>10} {:>12}",
        "option", "Eq.5 $/mo", "realized $/mo", "gap $/mo", "breaches", "p95 penalty"
    );
    for (i, assignment) in space.assignments().enumerate() {
        let clusters: Vec<_> = assignment
            .iter()
            .zip(space.components())
            .map(|(&idx, comp)| comp.candidates()[idx].cluster().clone())
            .collect();
        let ha_cost: MoneyPerMonth = assignment
            .iter()
            .zip(space.components())
            .map(|(&idx, comp)| comp.candidates()[idx].monthly_cost())
            .sum();
        let system = SystemSpec::new(clusters)?;
        let report = settle(&system, &model, ha_cost, months, 7_000 + i as u64)?;
        println!(
            "{:<12} {:>12.0} {:>14.0} {:>12.0} {:>7}/{months} {:>12.0}",
            format!("{assignment:?}"),
            report.expected_tco().value(),
            report.mean_realized_tco().value(),
            report.jensen_gap(),
            report.months_in_breach(),
            report.penalty_percentile(95.0).value(),
        );
    }
    println!(
        "\nReading: positive gaps mean Eq. 5 *under-prices* the contract;\n\
         options sitting just below the SLA (like #3) carry the largest premium,\n\
         because monthly downtime is spiky (multi-day repairs) while the\n\
         expectation spreads it uniformly."
    );
    Ok(())
}
