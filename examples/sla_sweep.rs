//! Experiment SW1: the recommendation as a function of the SLA target —
//! where do the crossovers fall?
//!
//! Sweeps the contractual uptime target from 90 % to 99.5 % on the
//! case-study catalog and prints the winning architecture, its TCO, and
//! the evidence-propagated uptime bounds at the paper's 98 % point.
//!
//! Run with: `cargo run --release --example sla_sweep`

use uptime_suite::broker::{BrokerService, SolutionRequest};
use uptime_suite::catalog::{case_study, ComponentKind};
use uptime_suite::core::confidence::ConfidenceLevel;
use uptime_suite::core::{PenaltyClause, RoundingPolicy};
use uptime_suite::optimizer::{sweep, SearchSpace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = case_study::catalog();
    let space = SearchSpace::from_catalog(
        &catalog,
        &case_study::cloud_id(),
        &ComponentKind::paper_tiers(),
    )?;
    let result = sweep::sla_sweep_range(
        &space,
        &PenaltyClause::per_hour(100.0)?,
        RoundingPolicy::CeilHour,
        90.0,
        99.5,
        20,
    );

    println!(
        "{:>8} {:>16} {:>10} {:>12} {:>6}",
        "SLA %", "winner", "U_s %", "TCO $/mo", "meets"
    );
    for point in result.points() {
        println!(
            "{:>8.2} {:>16} {:>10.2} {:>12.0} {:>6}",
            point.sla_percent,
            format!("{:?}", point.best_assignment),
            point.best_uptime.as_percent(),
            point.best_tco.value(),
            if point.meets_sla { "yes" } else { "no" }
        );
    }
    println!("\nCrossovers:");
    for (a, b) in result.crossovers() {
        println!("  winner changes between {a:.2}% and {b:.2}%");
    }

    // Evidence bounds at the paper's 98 % target.
    let broker = BrokerService::new(catalog);
    let request = SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(98.0)?
        .penalty_per_hour(100.0)?
        .build()?;
    let recommendation = broker.recommend(&request)?;
    let cloud = &recommendation.clouds()[0];
    println!("\nEvidence bounds at the 98 % target (95 % confidence, 1000 node-years):");
    for option in [cloud.best(), cloud.min_risk().expect("option #5 qualifies")] {
        let bounds = broker.uptime_bounds(&request, cloud.cloud(), option, ConfidenceLevel::P95)?;
        println!(
            "  option #{}: U_s {:.2}% in [{:.2}%, {:.2}%], TCO ${:.0}..${:.0}/mo",
            option.option_number(),
            bounds.point.as_percent(),
            bounds.uptime.lower().as_percent(),
            bounds.uptime.upper().as_percent(),
            bounds.tco_best.value(),
            bounds.tco_worst.value(),
        );
    }
    Ok(())
}
