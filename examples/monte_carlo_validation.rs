//! Experiment V1: validate the paper's analytic model (Eqs. 1–4) against
//! the discrete-event simulator, for every one of the case study's eight
//! solution options.
//!
//! The paper never validated its probabilistic model against observed
//! behaviour; this example does, printing analytic vs simulated uptime
//! with confidence intervals.
//!
//! Run with: `cargo run --release --example monte_carlo_validation`

use uptime_suite::broker::audit_recommendation;
use uptime_suite::catalog::{case_study, ComponentKind};
use uptime_suite::core::SystemSpec;
use uptime_suite::optimizer::SearchSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = case_study::catalog();
    let space = SearchSpace::from_catalog(
        &catalog,
        &case_study::cloud_id(),
        &ComponentKind::paper_tiers(),
    )?;

    println!(
        "{:<10} {:>12} {:>12} {:>16} {:>8}",
        "Option", "analytic %", "simulated %", "95% CI", "pass"
    );

    let mut all_pass = true;
    for (i, assignment) in space.assignments().enumerate() {
        let clusters: Vec<_> = assignment
            .iter()
            .zip(space.components())
            .map(|(&idx, comp)| comp.candidates()[idx].cluster().clone())
            .collect();
        let system = SystemSpec::new(clusters)?;

        // 24 trials × 25 years each; 4σ tolerance.
        let audit = audit_recommendation(&system, 24, 25.0, 4.0, 100 + i as u64)?;
        let (lo, hi) = audit.estimate().ci95();
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>7.3}-{:<8.3} {:>8}",
            format!("{:?}", assignment),
            audit.analytic().as_percent(),
            audit.estimate().mean().as_percent(),
            lo.as_percent(),
            hi.as_percent(),
            if audit.passes() { "ok" } else { "FAIL" },
        );
        all_pass &= audit.passes();
    }

    if all_pass {
        println!("\nAnalytic model matches simulation for all 8 options. ✔");
    } else {
        println!("\nWARNING: at least one option diverged from the model.");
        std::process::exit(1);
    }
    Ok(())
}
